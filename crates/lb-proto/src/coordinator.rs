//! The mechanism centre as an explicit state machine.
//!
//! The coordinator drives one round through four phases:
//!
//! ```text
//! CollectingBids → Executing → Settling → Done
//! ```
//!
//! It owns the verification plane: after allocating, it runs the
//! discrete-event execution simulation ([`lb_sim::driver::simulate_round`])
//! at the nodes' *actual* execution values and keeps only the *estimates*
//! for payment — the coordinator never reads a node's private state.
//!
//! **Fault handling.** A machine whose bid never arrives can be *excluded*
//! by [`Coordinator::close_bidding`]: the round proceeds over the
//! respondents only (the excluded machine gets no jobs and no payment —
//! exactly the `L_{-i}` world its bonus is benchmarked against). A machine
//! whose completion acknowledgement is lost does not block settlement:
//! [`Coordinator::close_execution`] settles from the coordinator's own
//! measurements, which is all the payment needs.

use crate::journal::{
    encode_record, ExclusionReason, Journal, JournalError, JournalRecord, LedgerChain,
};
use crate::message::{Message, RoundId};
use crate::trace::{Anomaly, AnomalyStats};
use lb_core::{Allocation, CoreError, TwoF64};
use lb_mechanism::{MechanismError, VerifiedMechanism};
use lb_sim::driver::{simulate_round, SimulationConfig};
use lb_telemetry::{
    noop_collector, Collector, EventKind, Field, Phase, SpanId, Subsystem, TelemetryEvent,
    TraceContext,
};
use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// Phase of the coordinator's round state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordinatorPhase {
    /// Waiting for all bids.
    CollectingBids,
    /// Jobs executing; waiting for all completion acknowledgements.
    Executing,
    /// Payments computed and sent; waiting for the round to close.
    Settling,
    /// Round complete.
    Done,
}

/// Typed errors from coordinator operations.
///
/// Out-of-order or replayed *calls* (as opposed to messages, which graceful
/// mode absorbs as anomalies) used to abort the process via `assert!` /
/// `expect`; after crash recovery such calls are reachable from ordinary
/// driver races, so they degrade to [`ProtocolError::PhaseViolation`]
/// instead.
#[derive(Debug)]
pub enum ProtocolError {
    /// An operation was invoked in a phase it is not valid in.
    PhaseViolation {
        /// The operation attempted.
        op: &'static str,
        /// The phase it requires.
        expected: CoordinatorPhase,
        /// The phase the coordinator is actually in.
        actual: CoordinatorPhase,
    },
    /// Round state the operation depends on is missing (e.g. settling with
    /// no committed allocation).
    MissingState {
        /// What was missing.
        what: &'static str,
    },
    /// A journal record contradicts the round it is being replayed into.
    ReplayMismatch {
        /// What disagreed.
        what: &'static str,
    },
    /// The round is too large for the wire format: machine indices and node
    /// counts travel as `u32`, so a round is capped at `u32::MAX` nodes.
    /// Validated up front by [`Coordinator::try_new`] — an oversized round
    /// surfaces here instead of panicking mid-phase (or worse, attempting a
    /// multi-gigabyte state allocation first).
    TooManyNodes {
        /// The offending node count.
        n: usize,
    },
    /// The sharded round asked for more shards than the `u32` wire format
    /// can index: shard ids travel as `u32` in `ShardSum` / `ShardEstimates`
    /// / `ShardProfile` frames. Reachable only through an absurd shard
    /// count, but it surfaces as a typed error instead of a mid-round panic
    /// — the same contract as [`ProtocolError::TooManyNodes`].
    TooManyShards {
        /// The offending shard index (zero-based).
        shard: usize,
    },
    /// A shard worker thread panicked. The root aborts the round with this
    /// typed error instead of propagating the panic: the journal is left
    /// truncated at a record boundary (every append is atomic), so the
    /// round replays exactly like any other crash-interrupted round.
    ShardPanicked {
        /// The shard whose worker died.
        shard: usize,
    },
    /// The durable journal failed (including injected crashes).
    Journal(JournalError),
    /// A mechanism or simulation error.
    Mechanism(MechanismError),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::PhaseViolation {
                op,
                expected,
                actual,
            } => write!(
                f,
                "{op} requires phase {expected:?}, but phase is {actual:?}"
            ),
            Self::MissingState { what } => write!(f, "missing round state: {what}"),
            Self::ReplayMismatch { what } => write!(f, "journal replay mismatch: {what}"),
            Self::TooManyNodes { n } => {
                write!(f, "round of {n} nodes exceeds the u32 wire-format limit")
            }
            Self::TooManyShards { shard } => {
                write!(f, "shard index {shard} exceeds the u32 wire-format limit")
            }
            Self::ShardPanicked { shard } => {
                write!(f, "shard {shard} worker panicked; round aborted")
            }
            Self::Journal(e) => write!(f, "journal: {e}"),
            Self::Mechanism(e) => write!(f, "mechanism: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<MechanismError> for ProtocolError {
    fn from(e: MechanismError) -> Self {
        Self::Mechanism(e)
    }
}

impl From<CoreError> for ProtocolError {
    fn from(e: CoreError) -> Self {
        Self::Mechanism(MechanismError::Core(e))
    }
}

impl From<JournalError> for ProtocolError {
    fn from(e: JournalError) -> Self {
        Self::Journal(e)
    }
}

impl ProtocolError {
    /// Collapses into a [`MechanismError`] for drivers whose public result
    /// type predates the protocol-level error: mechanism errors pass
    /// through untouched (so `NeedTwoAgents` stays matchable), everything
    /// else is folded into an `Infeasible` core error carrying the message.
    #[must_use]
    pub fn into_mechanism(self) -> MechanismError {
        match self {
            Self::Mechanism(e) => e,
            other => MechanismError::Core(CoreError::Infeasible {
                reason: other.to_string(),
            }),
        }
    }

    /// Whether this is an injected journal crash — the signal the durable
    /// drivers recover from.
    #[must_use]
    pub fn is_crash(&self) -> bool {
        matches!(self, Self::Journal(JournalError::Crashed { .. }))
    }
}

/// The mechanism centre for one round over `n` nodes.
pub struct Coordinator<'m> {
    mechanism: &'m dyn VerifiedMechanism,
    total_rate: f64,
    round: RoundId,
    sim_config: SimulationConfig,
    phase: CoordinatorPhase,
    bids: Vec<Option<f64>>,
    excluded: Vec<bool>,
    done: Vec<bool>,
    allocation: Option<Allocation>,
    estimated_exec: Option<Vec<f64>>,
    payments: Option<Vec<f64>>,
    strict: bool,
    anomalies: AnomalyStats,
    /// Durable journal, when attached. Shared with the driver (which keeps
    /// its own handle for crash injection and recovery), hence `Rc`.
    journal: Option<Rc<RefCell<dyn Journal>>>,
    /// Whether this round's `RoundOpened` record is already in the journal
    /// (written lazily on the first append, or inherited via replay).
    journal_opened: bool,
    /// Tamper-evidence hash chain over the journal's framed bytes. Rebuilt
    /// lazily from the journal's current content on the first append (so it
    /// covers records inherited from earlier rounds and generations), then
    /// maintained incrementally; `None` until then.
    ledger: RefCell<Option<LedgerChain>>,
    /// Whether `RoundSealed` has been journalled: the round will never emit
    /// again, so a replayed settle fan-out is a no-op.
    sealed: bool,
    /// Whether this round's `LedgerSealed` record is already durable (written
    /// by [`Coordinator::seal`], or inherited via replay). Tracked separately
    /// from `sealed` so a crash *between* the two seal records does not make
    /// the recovered process journal `LedgerSealed` twice.
    ledger_sealed: bool,
    collector: Arc<dyn Collector>,
    /// Logical clock for telemetry, in seconds. The coordinator has no clock
    /// of its own; drivers call [`Coordinator::set_now`] before each handle
    /// or close call (sim time in the deterministic runtimes, a monotonic
    /// offset in the threaded one).
    now: Cell<f64>,
    round_span: Cell<SpanId>,
    phase_span: Cell<SpanId>,
    spans_started: Cell<bool>,
    /// Trace context of the round, set by [`Coordinator::with_trace`]. When
    /// present (and sampled, and a collector is attached) every outbound
    /// frame carries it on the wire via [`Coordinator::wire_context`].
    trace: Cell<Option<TraceContext>>,
    /// The span id outbound frames are parented on: the currently open
    /// phase span, retained across settlement so Payment frames sent at
    /// round close still carry the trace identity.
    wire_span: Cell<SpanId>,
}

impl std::fmt::Debug for Coordinator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("round", &self.round)
            .field("phase", &self.phase)
            .field("excluded", &self.excluded)
            .finish()
    }
}

impl<'m> Coordinator<'m> {
    /// Creates a coordinator for a round over `n` nodes.
    ///
    /// # Panics
    /// Panics if `n == 0` or `n` exceeds the `u32` wire-format limit; use
    /// [`Coordinator::try_new`] to get a typed error instead.
    #[must_use]
    pub fn new(
        mechanism: &'m dyn VerifiedMechanism,
        n: usize,
        total_rate: f64,
        round: RoundId,
        sim_config: SimulationConfig,
    ) -> Self {
        match Self::try_new(mechanism, n, total_rate, round, sim_config) {
            Ok(c) => c,
            Err(e) => panic!("Coordinator: {e}"),
        }
    }

    /// [`Coordinator::new`] with the size preconditions surfaced as typed
    /// errors. Machine indices and node counts travel as `u32` on the wire
    /// and in the journal, so the count is validated *before* any per-node
    /// state is allocated — an oversized `n` answers with
    /// [`ProtocolError::TooManyNodes`] instead of attempting a huge
    /// allocation and then aborting mid-round at the first journal append.
    ///
    /// # Errors
    /// Returns [`ProtocolError::MissingState`] when `n == 0` and
    /// [`ProtocolError::TooManyNodes`] when `n > u32::MAX`.
    pub fn try_new(
        mechanism: &'m dyn VerifiedMechanism,
        n: usize,
        total_rate: f64,
        round: RoundId,
        sim_config: SimulationConfig,
    ) -> Result<Self, ProtocolError> {
        if n == 0 {
            return Err(ProtocolError::MissingState {
                what: "at least one node",
            });
        }
        if u32::try_from(n).is_err() {
            return Err(ProtocolError::TooManyNodes { n });
        }
        Ok(Self {
            mechanism,
            total_rate,
            round,
            sim_config,
            phase: CoordinatorPhase::CollectingBids,
            bids: vec![None; n],
            excluded: vec![false; n],
            done: vec![false; n],
            allocation: None,
            estimated_exec: None,
            payments: None,
            strict: false,
            anomalies: AnomalyStats::default(),
            journal: None,
            journal_opened: false,
            ledger: RefCell::new(None),
            sealed: false,
            ledger_sealed: false,
            collector: noop_collector(),
            now: Cell::new(0.0),
            round_span: Cell::new(SpanId::NULL),
            phase_span: Cell::new(SpanId::NULL),
            spans_started: Cell::new(false),
            trace: Cell::new(None),
            wire_span: Cell::new(SpanId::NULL),
        })
    }

    /// Narrows a machine index to the `u32` wire width. Infallible in
    /// practice — [`Coordinator::try_new`] rejects rounds wider than
    /// `u32::MAX` — but kept as a typed error so no hot path carries a
    /// reachable panic.
    pub(crate) fn machine_u32(i: usize) -> Result<u32, ProtocolError> {
        u32::try_from(i).map_err(|_| ProtocolError::TooManyNodes { n: i })
    }

    /// Attaches a wire-propagated trace context. Outbound frames then carry
    /// it (with the current phase span as parent) when the context is
    /// sampled and a collector is attached — see
    /// [`Coordinator::wire_context`].
    #[must_use]
    pub fn with_trace(self, ctx: TraceContext) -> Self {
        self.trace.set(Some(ctx));
        self
    }

    /// The trace context outbound frames should carry right now: the round's
    /// context re-parented on the most recent phase span. `None` when no
    /// context was attached, the round is unsampled, or telemetry is off —
    /// in which case frames stay byte-identical to the untraced wire format.
    #[must_use]
    pub fn wire_context(&self) -> Option<TraceContext> {
        if !self.collector.enabled() {
            return None;
        }
        let ctx = self.trace.get()?;
        if !ctx.sampled {
            return None;
        }
        Some(ctx.with_span(self.wire_span.get().0))
    }

    /// The currently open phase span ([`SpanId::NULL`] when none is open) —
    /// drivers use it to decide whether an inbound frame's context still
    /// parents on a live span or must degrade to an instant.
    pub(crate) fn phase_span(&self) -> SpanId {
        self.phase_span.get()
    }

    /// Opens the round/phase spans now instead of lazily on the first
    /// handled message, so frames sent *before* any bid arrives (the initial
    /// bid requests, early retransmissions) already carry the
    /// `phase.collect_bids` span in their wire context. Idempotent; a no-op
    /// without an enabled collector.
    pub(crate) fn begin_round_telemetry(&self) {
        self.ensure_round_span();
    }

    /// Attaches a telemetry collector. The coordinator then emits a `round`
    /// span with nested `phase.*` spans, an `anomaly` instant per absorbed
    /// irregularity and an `exclude` instant per exclusion, all timestamped
    /// with the clock fed through [`Coordinator::set_now`]. The default is
    /// the free noop collector.
    #[must_use]
    pub fn with_collector(mut self, collector: Arc<dyn Collector>) -> Self {
        self.collector = collector;
        self
    }

    /// Attaches a write-ahead journal. Every durable state transition is
    /// appended before the corresponding frames are handed back to the
    /// driver, and the allocation/payment/seal commit points `fsync` — see
    /// the `journal` module docs for the record grammar.
    #[must_use]
    pub fn with_journal(mut self, journal: Rc<RefCell<dyn Journal>>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Re-attaches a journal whose records were already replayed into this
    /// coordinator: appends continue where the journal left off, without
    /// re-writing `RoundOpened`.
    pub(crate) fn attach_replayed_journal(&mut self, journal: Rc<RefCell<dyn Journal>>) {
        self.journal = Some(journal);
        self.journal_opened = true;
    }

    /// Appends one record, lazily preceding it with this round's
    /// `RoundOpened`.
    fn journal_append(&mut self, record: JournalRecord) -> Result<(), ProtocolError> {
        let Some(journal) = self.journal.clone() else {
            return Ok(());
        };
        self.ensure_ledger(&journal)?;
        let mut journal = journal.borrow_mut();
        if !self.journal_opened {
            let opened = JournalRecord::RoundOpened {
                round: self.round,
                n: u32::try_from(self.bids.len())
                    .map_err(|_| ProtocolError::TooManyNodes { n: self.bids.len() })?,
                total_rate: self.total_rate,
            };
            journal.append(&opened)?;
            self.journal_opened = true;
            self.ledger_absorb(&opened);
        }
        journal.append(&record)?;
        self.ledger_absorb(&record);
        Ok(())
    }

    /// Positions the ledger chain over the journal's current bytes, once.
    /// Lazy so that a journal inherited from earlier rounds or a previous
    /// process generation is folded in before this round's first append.
    fn ensure_ledger(&self, journal: &Rc<RefCell<dyn Journal>>) -> Result<(), ProtocolError> {
        if self.ledger.borrow().is_some() {
            return Ok(());
        }
        let bytes = journal.borrow().bytes()?;
        *self.ledger.borrow_mut() = Some(LedgerChain::replay(&bytes));
        Ok(())
    }

    /// Folds a just-appended record's frame into the ledger chain. Called
    /// only after the backend accepted the append — a torn (crashed) write
    /// never advances the chain; the next generation rebuilds it from the
    /// surviving bytes.
    fn ledger_absorb(&self, record: &JournalRecord) {
        if let Ok(frame) = encode_record(record) {
            if let Some(chain) = self.ledger.borrow_mut().as_mut() {
                chain.absorb_frame(&frame);
            }
        }
    }

    /// The current head of the tamper-evidence ledger chain, covering every
    /// framed byte in the attached journal. `None` without a journal (or if
    /// the journal's bytes cannot be read). This is the digest `seal` writes
    /// into [`JournalRecord::LedgerSealed`] and the value the `/health`
    /// endpoint publishes as the external trust anchor.
    #[must_use]
    pub fn ledger_head(&self) -> Option<u64> {
        let journal = self.journal.clone()?;
        self.ensure_ledger(&journal).ok()?;
        self.ledger.borrow().as_ref().map(LedgerChain::head)
    }

    /// Flushes the journal at a commit point (fsync for file backends).
    fn journal_commit(&mut self) -> Result<(), ProtocolError> {
        if let Some(journal) = self.journal.clone() {
            journal.borrow_mut().commit()?;
        }
        Ok(())
    }

    /// Advances the coordinator's logical telemetry clock (seconds). Call
    /// before delivering a message or closing a phase so emitted events carry
    /// the driver's time; never moves backwards on its own.
    pub fn set_now(&self, at: f64) {
        self.now.set(at);
    }

    /// The attached telemetry collector (the noop collector by default).
    #[must_use]
    pub fn collector(&self) -> &Arc<dyn Collector> {
        &self.collector
    }

    /// Opens the `round` span (and the collect-bids phase span) on first
    /// use. Lazy so that un-instrumented coordinators never allocate ids.
    /// `pub(crate)` so the shard runtime can open the spans before its
    /// workers capture the phase span as their parent.
    pub(crate) fn ensure_round_span(&self) {
        if self.spans_started.get() || !self.collector.enabled() {
            return;
        }
        self.spans_started.set(true);
        let at = self.now.get();
        let mut fields = vec![
            Field::u64("round", self.round.0),
            Field::u64("n", self.bids.len() as u64),
        ];
        if let Some(ctx) = self.trace.get() {
            fields.push(Field::u64("trace_hi", (ctx.trace_id >> 64) as u64));
            fields.push(Field::u64("trace_lo", ctx.trace_id as u64));
        }
        let round = self
            .collector
            .span_start(at, "round", Subsystem::Coordinator, fields);
        self.round_span.set(round);
        let phase = self.collector.span_start_in(
            at,
            Phase::CollectBids.span_name(),
            Subsystem::Coordinator,
            round,
            Vec::new(),
        );
        self.phase_span.set(phase);
        self.wire_span.set(phase);
    }

    /// Ends the current phase span and, unless `next` is `None`, opens the
    /// next one under the round span.
    fn switch_phase_span(&self, next: Option<Phase>, fields: Vec<Field>) {
        if !self.collector.enabled() || !self.spans_started.get() {
            return;
        }
        let at = self.now.get();
        let current = self.phase_span.get();
        if !current.is_null() {
            self.collector.span_end(at, current);
        }
        match next {
            Some(phase) => {
                let span = self.collector.span_start_in(
                    at,
                    phase.span_name(),
                    Subsystem::Coordinator,
                    self.round_span.get(),
                    fields,
                );
                self.phase_span.set(span);
                self.wire_span.set(span);
            }
            // The wire span is deliberately retained: frames sent while no
            // phase is open (Payment, after settle) still carry the identity
            // of the last phase of their round.
            None => self.phase_span.set(SpanId::NULL),
        }
    }

    /// Closes any telemetry spans still open — call when abandoning a round
    /// midway (e.g. a session aborting on `NeedTwoAgents`) so the recording
    /// still replays cleanly. A settled round has already closed its spans;
    /// calling this again is a no-op.
    pub fn end_telemetry(&self) {
        if !self.spans_started.get() {
            return;
        }
        let at = self.now.get();
        let phase = self.phase_span.get();
        if !phase.is_null() {
            self.collector.span_end(at, phase);
            self.phase_span.set(SpanId::NULL);
        }
        let round = self.round_span.get();
        if !round.is_null() {
            self.collector.span_end(at, round);
            self.round_span.set(SpanId::NULL);
        }
    }

    /// Sets strict mode. A strict coordinator panics on protocol violations
    /// (wrong round, duplicate bid, out-of-phase or misrouted messages) —
    /// useful in tests and the fault-free runtimes where any such message is
    /// a bug. The default is graceful: violations are absorbed and counted in
    /// [`Coordinator::anomalies`], so a byzantine or chaotic network cannot
    /// crash the mechanism centre.
    #[must_use]
    pub fn with_strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }

    /// Current phase.
    #[must_use]
    pub fn phase(&self) -> CoordinatorPhase {
        self.phase
    }

    /// Machines excluded from the current round (bid never arrived).
    #[must_use]
    pub fn excluded(&self) -> &[bool] {
        &self.excluded
    }

    /// Anomalies absorbed so far (graceful mode counts instead of panicking).
    #[must_use]
    pub fn anomalies(&self) -> &AnomalyStats {
        &self.anomalies
    }

    /// Machines still expected to bid: not excluded and no bid recorded.
    /// Only meaningful during the collection phase; the retransmission
    /// runtime re-requests exactly this set.
    #[must_use]
    pub fn missing_bids(&self) -> Vec<u32> {
        // Pairing with a u32 counter keeps this hot path panic-free: try_new
        // guarantees every index fits, so the zip never truncates.
        (0u32..)
            .zip(&self.bids)
            .filter(|&(i, bid)| bid.is_none() && !self.excluded[i as usize])
            .map(|(i, _)| i)
            .collect()
    }

    /// Excludes `machine` up front, before any timeout — used by sessions to
    /// quarantine a machine for the round. Its bids will be absorbed as
    /// stale.
    ///
    /// # Errors
    /// Returns [`ProtocolError::PhaseViolation`] outside the collection
    /// phase, or a journal error from the attached journal.
    ///
    /// # Panics
    /// Panics if `machine` is out of range (a driver bug, not round state).
    pub fn exclude(&mut self, machine: usize) -> Result<(), ProtocolError> {
        if self.phase != CoordinatorPhase::CollectingBids {
            return Err(ProtocolError::PhaseViolation {
                op: "exclude",
                expected: CoordinatorPhase::CollectingBids,
                actual: self.phase,
            });
        }
        assert!(
            machine < self.excluded.len(),
            "coordinator: machine out of range"
        );
        self.ensure_round_span();
        if self.excluded[machine] {
            // Already excluded (e.g. re-applied after recovery): idempotent.
            return Ok(());
        }
        self.journal_append(JournalRecord::ExclusionDecided {
            machine: Self::machine_u32(machine)?,
            reason: ExclusionReason::Quarantine,
        })?;
        self.excluded[machine] = true;
        self.collector.instant(
            self.now.get(),
            "exclude",
            Subsystem::Coordinator,
            vec![
                Field::u64("machine", machine as u64),
                Field::str("reason", "quarantine"),
            ],
        );
        Ok(())
    }

    /// Records an anomaly in the stats and as an `anomaly` telemetry
    /// instant.
    fn note_anomaly(&mut self, anomaly: Anomaly) {
        self.anomalies.record(anomaly);
        self.collector.instant(
            self.now.get(),
            "anomaly",
            Subsystem::Coordinator,
            vec![Field::str("kind", anomaly.name())],
        );
    }

    /// Records an anomaly and returns the empty reply set; panics instead
    /// when strict.
    fn reject(&mut self, anomaly: Anomaly, context: &str) -> Vec<(u32, Message)> {
        self.note_anomaly(anomaly);
        assert!(!self.strict, "{context}");
        Vec::new()
    }

    /// Opening messages: one bid request per node.
    #[must_use]
    pub fn open(&self) -> Vec<Message> {
        self.ensure_round_span();
        (0..self.bids.len())
            .map(|_| Message::RequestBid { round: self.round })
            .collect()
    }

    fn respondents(&self) -> Vec<usize> {
        (0..self.bids.len())
            .filter(|&i| self.bids[i].is_some() && !self.excluded[i])
            .collect()
    }

    fn all_bids_in(&self) -> bool {
        (0..self.bids.len()).all(|i| self.bids[i].is_some() || self.excluded[i])
    }

    fn all_done(&self) -> bool {
        self.respondents().iter().all(|&i| self.done[i])
    }

    /// Handles one node message; returns messages to send, addressed by the
    /// returned `(node, message)` pairs.
    ///
    /// `actual_exec_values` is the *world state* the execution simulation
    /// runs against; the coordinator only ever uses its measurements of it.
    ///
    /// # Errors
    /// Propagates mechanism/simulation errors (as
    /// [`ProtocolError::Mechanism`]) and journal failures.
    ///
    /// # Panics
    /// In strict mode only ([`Coordinator::with_strict`]), panics on protocol
    /// violations: wrong round, out-of-range machine, coordinator-originated
    /// messages, duplicate bids, out-of-phase messages. A graceful
    /// coordinator absorbs these and counts them as anomalies.
    pub fn handle(
        &mut self,
        message: &Message,
        actual_exec_values: &[f64],
    ) -> Result<Vec<(u32, Message)>, ProtocolError> {
        self.ensure_round_span();
        if message.round() != self.round {
            return Ok(self.reject(Anomaly::StaleRound, "coordinator: wrong round"));
        }
        match *message {
            Message::Bid { machine, value, .. } => {
                let idx = machine as usize;
                if idx >= self.bids.len() {
                    return Ok(
                        self.reject(Anomaly::Unsolicited, "coordinator: machine out of range")
                    );
                }
                if self.excluded[idx] {
                    // A bid that arrives after exclusion is stale: absorbed
                    // in whatever phase it straggles in, even under strict
                    // mode (losing a race against the timeout is the
                    // network's fault, not a protocol violation).
                    self.note_anomaly(Anomaly::StaleAfterExclusion);
                    return Ok(Vec::new());
                }
                if self.phase != CoordinatorPhase::CollectingBids {
                    return Ok(self.reject(Anomaly::WrongPhase, "bid outside collection phase"));
                }
                if self.bids[idx].is_some() {
                    let context = format!("coordinator: duplicate bid from {machine}");
                    return Ok(self.reject(Anomaly::DuplicateBid, &context));
                }
                self.journal_append(JournalRecord::BidAccepted { machine, value })?;
                self.bids[idx] = Some(value);
                if self.all_bids_in() {
                    self.begin_execution(actual_exec_values)
                } else {
                    Ok(Vec::new())
                }
            }
            Message::ExecutionDone { machine, .. } => {
                if self.phase != CoordinatorPhase::Executing {
                    return Ok(
                        self.reject(Anomaly::WrongPhase, "completion outside execution phase")
                    );
                }
                let idx = machine as usize;
                if idx >= self.done.len() {
                    return Ok(
                        self.reject(Anomaly::Unsolicited, "coordinator: machine out of range")
                    );
                }
                if self.excluded[idx] {
                    // An excluded machine has nothing to complete; its ack
                    // carries no standing in the round.
                    self.note_anomaly(Anomaly::Unsolicited);
                    return Ok(Vec::new());
                }
                if self.done[idx] {
                    // A duplicated ack is idempotent: settlement depends on
                    // the set of completed machines, not the ack count.
                    self.note_anomaly(Anomaly::DuplicateAck);
                    return Ok(Vec::new());
                }
                self.journal_append(JournalRecord::ExecutionObserved { machine })?;
                self.done[idx] = true;
                if self.all_done() {
                    self.settle()
                } else {
                    Ok(Vec::new())
                }
            }
            Message::RequestBid { .. }
            | Message::Assign { .. }
            | Message::Payment { .. }
            | Message::ShardSum { .. }
            | Message::ShardEstimates { .. }
            | Message::ShardProfile { .. } => Ok(self.reject(
                Anomaly::Misrouted,
                "coordinator received coordinator-originated message",
            )),
        }
    }

    /// Bid timeout: excludes every machine whose bid has not arrived and
    /// proceeds with the respondents. Returns the `Assign` messages.
    ///
    /// # Errors
    /// Returns [`MechanismError::NeedTwoAgents`] (wrapped in
    /// [`ProtocolError::Mechanism`]) when fewer than two bids arrived (the
    /// mechanism cannot run), [`ProtocolError::PhaseViolation`] outside the
    /// bid-collection phase, or downstream errors.
    pub fn close_bidding(
        &mut self,
        actual_exec_values: &[f64],
    ) -> Result<Vec<(u32, Message)>, ProtocolError> {
        if self.phase != CoordinatorPhase::CollectingBids {
            return Err(ProtocolError::PhaseViolation {
                op: "close_bidding",
                expected: CoordinatorPhase::CollectingBids,
                actual: self.phase,
            });
        }
        self.ensure_round_span();
        self.exclude_missing()?;
        if self.respondents().len() < 2 {
            return Err(MechanismError::NeedTwoAgents.into());
        }
        self.begin_execution(actual_exec_values)
    }

    /// Journals and applies a timeout exclusion for every machine whose bid
    /// has not arrived. Shared by [`Coordinator::close_bidding`] and the
    /// sharded close.
    fn exclude_missing(&mut self) -> Result<(), ProtocolError> {
        for i in 0..self.bids.len() {
            if self.bids[i].is_none() && !self.excluded[i] {
                self.journal_append(JournalRecord::ExclusionDecided {
                    machine: Self::machine_u32(i)?,
                    reason: ExclusionReason::Timeout,
                })?;
                self.excluded[i] = true;
                self.collector.instant(
                    self.now.get(),
                    "exclude",
                    Subsystem::Coordinator,
                    vec![
                        Field::u64("machine", i as u64),
                        Field::str("reason", "timeout"),
                    ],
                );
            }
        }
        Ok(())
    }

    /// Execution timeout: settles from the coordinator's own measurements
    /// even though some completion acknowledgements are missing.
    ///
    /// # Errors
    /// Propagates mechanism errors; returns
    /// [`ProtocolError::PhaseViolation`] outside the execution phase.
    pub fn close_execution(&mut self) -> Result<Vec<(u32, Message)>, ProtocolError> {
        if self.phase != CoordinatorPhase::Executing {
            return Err(ProtocolError::PhaseViolation {
                op: "close_execution",
                expected: CoordinatorPhase::Executing,
                actual: self.phase,
            });
        }
        self.settle()
    }

    // ------------------------------------------------------------------
    // Sharded (hierarchical) round API.
    //
    // [`Coordinator::handle`] scans all n bid slots after every accepted
    // bid to decide whether to allocate — O(n) per message, O(n²) per
    // round, which is what capped single-coordinator rounds near ~10⁴
    // machines. The shard runtime (`crate::shard`) instead ingests whole
    // batches of decoded frames through [`Coordinator::ingest`] and drives
    // the phase transitions explicitly: close bidding once, allocate once
    // against the merged per-shard harmonic sum, settle once. Journal
    // grammar, anomaly accounting, exclusion semantics and telemetry are
    // identical to the message-driven path — only the *trigger* moves from
    // per-message scans to explicit bulk calls.
    // ------------------------------------------------------------------

    /// Absorbs one node message *without* triggering a phase transition:
    /// exactly [`Coordinator::handle`]'s acceptance and anomaly semantics
    /// (stale round, unsolicited, stale-after-exclusion, wrong phase,
    /// duplicate), minus the all-bids-in / all-done scans and the resulting
    /// allocation or settle. The sharded runtime calls this once per
    /// upward-forwarded frame and decides the transitions itself.
    ///
    /// # Errors
    /// Propagates journal failures (including injected crashes).
    ///
    /// # Panics
    /// In strict mode only, panics on protocol violations, exactly as
    /// [`Coordinator::handle`].
    pub fn ingest(&mut self, message: &Message) -> Result<(), ProtocolError> {
        self.ensure_round_span();
        if message.round() != self.round {
            self.reject(Anomaly::StaleRound, "coordinator: wrong round");
            return Ok(());
        }
        match *message {
            Message::Bid { machine, value, .. } => {
                let idx = machine as usize;
                if idx >= self.bids.len() {
                    self.reject(Anomaly::Unsolicited, "coordinator: machine out of range");
                    return Ok(());
                }
                if self.excluded[idx] {
                    self.note_anomaly(Anomaly::StaleAfterExclusion);
                    return Ok(());
                }
                if self.phase != CoordinatorPhase::CollectingBids {
                    self.reject(Anomaly::WrongPhase, "bid outside collection phase");
                    return Ok(());
                }
                if self.bids[idx].is_some() {
                    let context = format!("coordinator: duplicate bid from {machine}");
                    self.reject(Anomaly::DuplicateBid, &context);
                    return Ok(());
                }
                self.journal_append(JournalRecord::BidAccepted { machine, value })?;
                self.bids[idx] = Some(value);
            }
            Message::ExecutionDone { machine, .. } => {
                if self.phase != CoordinatorPhase::Executing {
                    self.reject(Anomaly::WrongPhase, "completion outside execution phase");
                    return Ok(());
                }
                let idx = machine as usize;
                if idx >= self.done.len() {
                    self.reject(Anomaly::Unsolicited, "coordinator: machine out of range");
                    return Ok(());
                }
                if self.excluded[idx] {
                    self.note_anomaly(Anomaly::Unsolicited);
                    return Ok(());
                }
                if self.done[idx] {
                    self.note_anomaly(Anomaly::DuplicateAck);
                    return Ok(());
                }
                self.journal_append(JournalRecord::ExecutionObserved { machine })?;
                self.done[idx] = true;
            }
            Message::RequestBid { .. }
            | Message::Assign { .. }
            | Message::Payment { .. }
            | Message::ShardSum { .. }
            | Message::ShardEstimates { .. }
            | Message::ShardProfile { .. } => {
                // Shard control frames are consumed by the shard runtime
                // itself; reaching the round state machine means a routing
                // bug, same as any coordinator-originated message.
                self.reject(
                    Anomaly::Misrouted,
                    "coordinator received coordinator-originated message",
                );
            }
        }
        Ok(())
    }

    /// Sharded bid-timeout: journals a timeout exclusion for every machine
    /// whose bid has not arrived, exactly as [`Coordinator::close_bidding`],
    /// but stays in the collection phase and returns the respondent set
    /// instead of allocating — the shard runtime allocates separately via
    /// [`Coordinator::begin_allocation_sharded`] once the per-shard harmonic
    /// partials are merged.
    ///
    /// # Errors
    /// Returns [`MechanismError::NeedTwoAgents`] (as
    /// [`ProtocolError::Mechanism`]) with fewer than two respondents,
    /// [`ProtocolError::PhaseViolation`] outside bid collection, or journal
    /// errors.
    pub fn close_bidding_sharded(&mut self) -> Result<Vec<usize>, ProtocolError> {
        if self.phase != CoordinatorPhase::CollectingBids {
            return Err(ProtocolError::PhaseViolation {
                op: "close_bidding_sharded",
                expected: CoordinatorPhase::CollectingBids,
                actual: self.phase,
            });
        }
        self.ensure_round_span();
        self.exclude_missing()?;
        let respondents = self.respondents();
        if respondents.len() < 2 {
            return Err(MechanismError::NeedTwoAgents.into());
        }
        Ok(respondents)
    }

    /// Computes the allocation from the respondent bids against the merged
    /// per-shard harmonic sum `s` and returns the *full-width* rate vector
    /// (excluded machines at 0). Opens the allocate phase span. The round
    /// stays in the collection phase until
    /// [`Coordinator::commit_allocation_sharded`] journals the commit — the
    /// shard runtime runs the distributed verification simulation between
    /// the two calls.
    ///
    /// # Errors
    /// Returns [`MechanismError::NeedTwoAgents`] with fewer than two
    /// respondents, [`ProtocolError::PhaseViolation`] outside bid
    /// collection, or mechanism errors.
    pub fn begin_allocation_sharded(&mut self, s: TwoF64) -> Result<Vec<f64>, ProtocolError> {
        if self.phase != CoordinatorPhase::CollectingBids {
            return Err(ProtocolError::PhaseViolation {
                op: "begin_allocation_sharded",
                expected: CoordinatorPhase::CollectingBids,
                actual: self.phase,
            });
        }
        self.ensure_round_span();
        let respondents = self.respondents();
        if respondents.len() < 2 {
            return Err(MechanismError::NeedTwoAgents.into());
        }
        self.switch_phase_span(
            Some(Phase::Allocate),
            vec![Field::u64("respondents", respondents.len() as u64)],
        );
        let sub_bids: Vec<f64> = respondents
            .iter()
            .map(|&i| {
                self.bids[i].ok_or(ProtocolError::MissingState {
                    what: "respondent bid",
                })
            })
            .collect::<Result<_, _>>()?;
        let sub_alloc = self
            .mechanism
            .allocate_with_sum(&sub_bids, self.total_rate, s)?;
        let mut rates = vec![0.0; self.bids.len()];
        for (k, &i) in respondents.iter().enumerate() {
            rates[i] = sub_alloc.rate(k);
        }
        Ok(rates)
    }

    /// Commits a sharded allocation: emits the `verify` instant (the
    /// distributed verification simulation the shards ran between
    /// [`Coordinator::begin_allocation_sharded`] and this call), journals
    /// `AllocationCommitted`, advances to the execution phase and returns
    /// the `Assign` fan-out — bit-identical journal and telemetry grammar to
    /// the single-coordinator path. `rates` and `estimates` are full-width.
    ///
    /// # Errors
    /// Returns [`ProtocolError::PhaseViolation`] outside bid collection,
    /// arity errors for mis-sized vectors, and journal/mechanism errors.
    pub fn commit_allocation_sharded(
        &mut self,
        rates: Vec<f64>,
        estimates: Vec<f64>,
    ) -> Result<Vec<(u32, Message)>, ProtocolError> {
        if self.phase != CoordinatorPhase::CollectingBids {
            return Err(ProtocolError::PhaseViolation {
                op: "commit_allocation_sharded",
                expected: CoordinatorPhase::CollectingBids,
                actual: self.phase,
            });
        }
        let n = self.bids.len();
        if rates.len() != n || estimates.len() != n {
            return Err(CoreError::LengthMismatch {
                expected: n,
                actual: rates.len().min(estimates.len()),
            }
            .into());
        }
        self.collector.instant(
            self.now.get(),
            "verify",
            Subsystem::Coordinator,
            vec![
                Field::u64("machines", self.respondents().len() as u64),
                Field::f64("horizon", self.sim_config.horizon),
            ],
        );
        self.commit_allocation(rates, estimates)
    }

    /// Sharded settle: computes payments against the merged per-shard
    /// harmonic sum `s` (via the mechanism's
    /// [`VerifiedMechanism::payments_with_sum`]) and returns the Payment
    /// fan-out. Journal grammar, settlement gauges and phase transitions are
    /// identical to the message-driven settle.
    ///
    /// # Errors
    /// Returns [`ProtocolError::PhaseViolation`] outside the execution
    /// phase, or mechanism/journal errors.
    pub fn settle_sharded(&mut self, s: TwoF64) -> Result<Vec<(u32, Message)>, ProtocolError> {
        if self.phase != CoordinatorPhase::Executing {
            return Err(ProtocolError::PhaseViolation {
                op: "settle_sharded",
                expected: CoordinatorPhase::Executing,
                actual: self.phase,
            });
        }
        self.settle_impl(Some(s))
    }

    /// The bid slots (`None` until a machine's bid is accepted). The shard
    /// runtime reads these to recompute per-shard harmonic partials
    /// deterministically after a crash recovery.
    pub(crate) fn bid_slots(&self) -> &[Option<f64>] {
        &self.bids
    }

    /// Per-machine completion flags.
    pub(crate) fn done_flags(&self) -> &[bool] {
        &self.done
    }

    fn begin_execution(
        &mut self,
        actual_exec_values: &[f64],
    ) -> Result<Vec<(u32, Message)>, ProtocolError> {
        let respondents = self.respondents();
        if respondents.len() < 2 {
            // Reachable when machines were excluded up front (quarantine)
            // and every remaining machine bid: the mechanism needs at least
            // two participants to run.
            return Err(MechanismError::NeedTwoAgents.into());
        }
        self.switch_phase_span(
            Some(Phase::Allocate),
            vec![Field::u64("respondents", respondents.len() as u64)],
        );
        let sub_bids: Vec<f64> = respondents
            .iter()
            .map(|&i| {
                self.bids[i].ok_or(ProtocolError::MissingState {
                    what: "respondent bid",
                })
            })
            .collect::<Result<_, _>>()?;
        let sub_exec: Vec<f64> = respondents.iter().map(|&i| actual_exec_values[i]).collect();
        let sub_alloc = self.mechanism.allocate(&sub_bids, self.total_rate)?;

        // Execution + verification over the participating machines. The
        // verification simulation runs on its own internal clock, so it is
        // summarised here as an instant rather than nested spans.
        let report = simulate_round(&sub_bids, &sub_exec, self.total_rate, &self.sim_config)?;
        self.collector.instant(
            self.now.get(),
            "verify",
            Subsystem::Coordinator,
            vec![
                Field::u64("machines", respondents.len() as u64),
                Field::f64("horizon", self.sim_config.horizon),
            ],
        );

        // Scatter into full-width vectors (excluded machines: rate 0, no
        // verification evidence).
        let n = self.bids.len();
        let mut rates = vec![0.0; n];
        let mut estimates = vec![0.0; n];
        for (k, &i) in respondents.iter().enumerate() {
            rates[i] = sub_alloc.rate(k);
            estimates[i] = report.estimated_exec_values[k];
        }
        self.commit_allocation(rates, estimates)
    }

    /// The shared allocation commit tail: journal `AllocationCommitted`,
    /// commit, install the full-width allocation/estimates, advance to the
    /// execution phase and build the `Assign` fan-out. `rates` and
    /// `estimates` are full-width (excluded machines at 0).
    fn commit_allocation(
        &mut self,
        rates: Vec<f64>,
        estimates: Vec<f64>,
    ) -> Result<Vec<(u32, Message)>, ProtocolError> {
        let assigns = self
            .respondents()
            .into_iter()
            .map(|i| {
                Ok((
                    Self::machine_u32(i)?,
                    Message::Assign {
                        round: self.round,
                        rate: rates[i],
                    },
                ))
            })
            .collect::<Result<Vec<_>, ProtocolError>>()?;
        // Commit point: the allocation must be durable before any Assign
        // frame can reach a node.
        self.journal_append(JournalRecord::AllocationCommitted {
            rates: rates.clone(),
            estimated_exec: estimates.clone(),
        })?;
        self.journal_commit()?;
        self.allocation = Some(Allocation::new(rates, self.total_rate)?);
        self.estimated_exec = Some(estimates);
        self.phase = CoordinatorPhase::Executing;
        self.switch_phase_span(Some(Phase::Execute), Vec::new());
        Ok(assigns)
    }

    /// Settles the round: computes every respondent's payment and emits the
    /// Payment frames.
    ///
    /// The whole phase is O(n): the mechanism's payment rule obtains all
    /// leave-one-out latencies `L_{-i}` from one `lb_core` batch kernel
    /// call, so threaded, chaos and session rounds all settle in linear
    /// time — the former per-agent rebuild made this the quadratic hot spot
    /// that capped rounds near ~10³ machines.
    fn settle(&mut self) -> Result<Vec<(u32, Message)>, ProtocolError> {
        self.settle_impl(None)
    }

    /// Settle body, parameterised by an optional pre-aggregated harmonic sum
    /// (`Some` on the sharded path, `None` on the classic path, which lets
    /// the mechanism re-reduce the respondent bids itself).
    fn settle_impl(&mut self, s: Option<TwoF64>) -> Result<Vec<(u32, Message)>, ProtocolError> {
        let respondents = self.respondents();
        self.switch_phase_span(
            Some(Phase::Settle),
            vec![Field::u64(
                "completed",
                respondents.iter().filter(|&&i| self.done[i]).count() as u64,
            )],
        );
        let sub_bids: Vec<f64> = respondents
            .iter()
            .map(|&i| {
                self.bids[i].ok_or(ProtocolError::MissingState {
                    what: "respondent bid",
                })
            })
            .collect::<Result<_, _>>()?;
        let allocation = self
            .allocation
            .as_ref()
            .ok_or(ProtocolError::MissingState { what: "allocation" })?;
        let estimates = self
            .estimated_exec
            .as_ref()
            .ok_or(ProtocolError::MissingState {
                what: "execution estimates",
            })?;
        let full_rates: Vec<f64> = (0..self.bids.len()).map(|i| allocation.rate(i)).collect();
        let sub_rates: Vec<f64> = respondents.iter().map(|&i| full_rates[i]).collect();
        let sub_alloc = Allocation::new(sub_rates, self.total_rate)?;
        let sub_estimates: Vec<f64> = respondents.iter().map(|&i| estimates[i]).collect();

        let sub_payments = match s {
            Some(s) => self.mechanism.payments_with_sum(
                &sub_bids,
                &sub_alloc,
                &sub_estimates,
                self.total_rate,
                s,
            )?,
            None => {
                self.mechanism
                    .payments(&sub_bids, &sub_alloc, &sub_estimates, self.total_rate)?
            }
        };
        let mut payments = vec![0.0; self.bids.len()];
        for (k, &i) in respondents.iter().enumerate() {
            payments[i] = sub_payments[k];
        }
        // Commit point: the payment ledger must be durable before the settle
        // fan-out leaves — on replay payments come from this record, never a
        // recomputation, which is what makes settlement exactly-once.
        self.journal_append(JournalRecord::PaymentsCommitted {
            payments: payments.clone(),
        })?;
        self.journal_commit()?;
        let out = respondents
            .iter()
            .map(|&i| {
                Ok((
                    Self::machine_u32(i)?,
                    Message::Payment {
                        round: self.round,
                        amount: payments[i],
                    },
                ))
            })
            .collect::<Result<Vec<_>, ProtocolError>>()?;
        self.payments = Some(payments);
        self.emit_settlement_gauges();
        self.phase = CoordinatorPhase::Done;
        self.switch_phase_span(None, Vec::new());
        self.end_telemetry();
        Ok(out)
    }

    /// Emits the end-of-round settlement gauges: per-machine bid, allocated
    /// rate, execution estimate, exclusion flag and payment, then the
    /// round-scope `round.index` / `round.total_rate` gauges, with
    /// `round.payment.total` strictly last — streaming monitors (lb-audit's
    /// `InvariantMonitor`) treat it as the end-of-round trigger and check the
    /// whole observation when it arrives. Per-machine names are dynamic, so
    /// they bypass the `&'static str` conveniences. A no-op without an
    /// enabled collector (observation inertness) or before settlement state
    /// exists. Called from `settle`, and again from [`Coordinator::resume`]
    /// when a recovered round is already settled, so monitors attached to
    /// the new process generation still observe the round.
    fn emit_settlement_gauges(&self) {
        if !self.collector.enabled() {
            return;
        }
        let (Some(allocation), Some(estimates), Some(payments)) = (
            self.allocation.as_ref(),
            self.estimated_exec.as_ref(),
            self.payments.as_ref(),
        ) else {
            return;
        };
        let at = self.now.get();
        let gauge = |name: String, value: f64| {
            self.collector.record(TelemetryEvent {
                at,
                name: Cow::Owned(name),
                cat: Subsystem::Coordinator,
                kind: EventKind::Gauge { value },
                fields: Vec::new(),
            });
        };
        for (i, &p) in payments.iter().enumerate() {
            gauge(format!("bid.m{i}"), self.bids[i].unwrap_or(0.0));
            gauge(format!("alloc.rate.m{i}"), allocation.rate(i));
            gauge(format!("exec.est.m{i}"), estimates[i]);
            gauge(
                format!("excluded.m{i}"),
                if self.excluded[i] { 1.0 } else { 0.0 },
            );
            gauge(format!("payment.m{i}"), p);
        }
        #[allow(clippy::cast_precision_loss)]
        self.collector.gauge(
            at,
            "round.index",
            Subsystem::Coordinator,
            self.round.0 as f64,
        );
        self.collector.gauge(
            at,
            "round.total_rate",
            Subsystem::Coordinator,
            self.total_rate,
        );
        self.collector.gauge(
            at,
            "round.payment.total",
            Subsystem::Coordinator,
            payments.iter().sum(),
        );
    }

    /// Seals the round: journals `RoundSealed` and commits, marking that
    /// the settle fan-out has been handed to the network. After sealing, a
    /// recovered coordinator will not re-emit Payment frames. Idempotent;
    /// meaningful only with a journal attached (a plain coordinator just
    /// sets the flag).
    ///
    /// # Errors
    /// Returns [`ProtocolError::PhaseViolation`] before settlement, or a
    /// journal error.
    pub fn seal(&mut self) -> Result<(), ProtocolError> {
        if self.sealed {
            return Ok(());
        }
        if self.phase != CoordinatorPhase::Done {
            return Err(ProtocolError::PhaseViolation {
                op: "seal",
                expected: CoordinatorPhase::Done,
                actual: self.phase,
            });
        }
        if self.journal.is_some() && !self.ledger_sealed {
            // Tamper-evidence seal first: its digest covers every framed
            // byte written so far (this round's records included), then the
            // seal record itself joins the chain for the next round. Skipped
            // when a replayed journal already carries this round's
            // `LedgerSealed` (the crash hit between the two seal records).
            let digest = self.ledger_head().ok_or(ProtocolError::MissingState {
                what: "ledger chain head",
            })?;
            self.journal_append(JournalRecord::LedgerSealed { digest })?;
            self.ledger_sealed = true;
        }
        self.journal_append(JournalRecord::RoundSealed)?;
        self.journal_commit()?;
        self.sealed = true;
        Ok(())
    }

    /// Whether `RoundSealed` has been journalled.
    #[must_use]
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// This coordinator's round id.
    #[must_use]
    pub fn round(&self) -> RoundId {
        self.round
    }

    /// Applies one replayed journal record to the in-memory round state.
    /// Used by recovery; never re-journals (the record is already durable).
    pub(crate) fn apply_record(&mut self, record: &JournalRecord) -> Result<(), ProtocolError> {
        let check_machine = |machine: u32, n: usize| -> Result<usize, ProtocolError> {
            let idx = machine as usize;
            if idx >= n {
                return Err(ProtocolError::ReplayMismatch {
                    what: "machine index out of range",
                });
            }
            Ok(idx)
        };
        let n = self.bids.len();
        match record {
            JournalRecord::RoundOpened {
                round,
                n: opened_n,
                total_rate,
            } => {
                if *round != self.round
                    || *opened_n as usize != n
                    || total_rate.to_bits() != self.total_rate.to_bits()
                {
                    return Err(ProtocolError::ReplayMismatch {
                        what: "RoundOpened does not match the coordinator's round",
                    });
                }
            }
            JournalRecord::BidAccepted { machine, value } => {
                let idx = check_machine(*machine, n)?;
                self.bids[idx] = Some(*value);
            }
            JournalRecord::ExclusionDecided { machine, .. } => {
                let idx = check_machine(*machine, n)?;
                self.excluded[idx] = true;
            }
            JournalRecord::AllocationCommitted {
                rates,
                estimated_exec,
            } => {
                if rates.len() != n || estimated_exec.len() != n {
                    return Err(ProtocolError::ReplayMismatch {
                        what: "AllocationCommitted width",
                    });
                }
                self.allocation = Some(Allocation::new(rates.clone(), self.total_rate)?);
                self.estimated_exec = Some(estimated_exec.clone());
                self.phase = CoordinatorPhase::Executing;
            }
            JournalRecord::ExecutionObserved { machine } => {
                let idx = check_machine(*machine, n)?;
                self.done[idx] = true;
            }
            JournalRecord::PaymentsCommitted { payments } => {
                if payments.len() != n {
                    return Err(ProtocolError::ReplayMismatch {
                        what: "PaymentsCommitted width",
                    });
                }
                // Exactly-once settle: the durable ledger *is* the payment —
                // it is restored, never recomputed.
                self.payments = Some(payments.clone());
                self.phase = CoordinatorPhase::Done;
            }
            JournalRecord::RoundSealed => {
                if self.phase != CoordinatorPhase::Done {
                    return Err(ProtocolError::ReplayMismatch {
                        what: "RoundSealed before PaymentsCommitted",
                    });
                }
                self.sealed = true;
            }
            JournalRecord::LedgerSealed { .. } => {
                // Tamper-evidence seal: carries no round state beyond the
                // fact that it was written (so `seal` won't write it again).
                // Its digest is checked offline by `lb_audit::verify_ledger`,
                // not during recovery (recovery trusts the CRC framing; an
                // auditor does not have to).
                self.ledger_sealed = true;
            }
        }
        Ok(())
    }

    /// Messages a recovered coordinator must (re-)send to move the round
    /// forward, derived from the replayed phase:
    ///
    /// * collecting, some bids missing — re-request exactly the missing bids
    ///   (nodes that already bid will be absorbed as duplicates);
    /// * collecting, all bids in — the crash hit between the last bid and
    ///   the allocation commit: run the allocation now (deterministic, so
    ///   bit-identical to what the dead process would have computed);
    /// * executing — re-send `Assign` to respondents that have not acked
    ///   (acked ones are done; re-acks would be absorbed as duplicates), or
    ///   settle immediately if every ack was already journalled;
    /// * settled but unsealed — re-send the Payment fan-out from the
    ///   durable ledger (idempotent at the nodes);
    /// * sealed — nothing: the round is over.
    ///
    /// # Errors
    /// Propagates mechanism/journal errors from the allocation or settle
    /// steps.
    pub fn resume(
        &mut self,
        actual_exec_values: &[f64],
    ) -> Result<Vec<(u32, Message)>, ProtocolError> {
        match self.phase {
            CoordinatorPhase::CollectingBids => {
                if self.all_bids_in() {
                    self.begin_execution(actual_exec_values)
                } else {
                    Ok(self
                        .missing_bids()
                        .into_iter()
                        .map(|m| (m, Message::RequestBid { round: self.round }))
                        .collect())
                }
            }
            CoordinatorPhase::Executing => {
                if self.all_done() {
                    return self.settle();
                }
                let allocation = self
                    .allocation
                    .as_ref()
                    .ok_or(ProtocolError::MissingState { what: "allocation" })?;
                self.respondents()
                    .into_iter()
                    .filter(|&i| !self.done[i])
                    .map(|i| {
                        Ok((
                            Self::machine_u32(i)?,
                            Message::Assign {
                                round: self.round,
                                rate: allocation.rate(i),
                            },
                        ))
                    })
                    .collect()
            }
            CoordinatorPhase::Settling | CoordinatorPhase::Done => {
                if self.sealed {
                    return Ok(Vec::new());
                }
                // The dead generation emitted its settlement gauges into a
                // collector that died with it; re-emit here so a monitor
                // attached to this generation observes the recovered round.
                self.ensure_round_span();
                self.emit_settlement_gauges();
                let payments = self.payments.as_ref().ok_or(ProtocolError::MissingState {
                    what: "payment ledger",
                })?;
                self.respondents()
                    .into_iter()
                    .map(|i| {
                        Ok((
                            Self::machine_u32(i)?,
                            Message::Payment {
                                round: self.round,
                                amount: payments[i],
                            },
                        ))
                    })
                    .collect()
            }
        }
    }

    /// The allocation, once computed (full width; excluded machines at 0).
    #[must_use]
    pub fn allocation(&self) -> Option<&Allocation> {
        self.allocation.as_ref()
    }

    /// The verification estimates, once measured (0 for excluded machines).
    #[must_use]
    pub fn estimated_exec_values(&self) -> Option<&[f64]> {
        self.estimated_exec.as_deref()
    }

    /// The payments, once settled (0 for excluded machines).
    #[must_use]
    pub fn payments(&self) -> Option<&[f64]> {
        self.payments.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_mechanism::CompensationBonusMechanism;
    use lb_sim::server::ServiceModel;

    fn config() -> SimulationConfig {
        SimulationConfig {
            horizon: 300.0,
            seed: 9,
            model: ServiceModel::StationaryDeterministic,
            workload: Default::default(),
            warmup: 0.0,
            estimator: lb_sim::estimator::EstimatorConfig::default(),
        }
    }

    #[test]
    fn full_round_state_machine() {
        let mech = CompensationBonusMechanism::paper();
        let trues = [1.0, 2.0];
        let mut c = Coordinator::new(&mech, 2, 3.0, RoundId(0), config());
        assert_eq!(c.phase(), CoordinatorPhase::CollectingBids);
        assert_eq!(c.open().len(), 2);

        let none = c
            .handle(
                &Message::Bid {
                    round: RoundId(0),
                    machine: 0,
                    value: 1.0,
                },
                &trues,
            )
            .unwrap();
        assert!(none.is_empty());
        let assigns = c
            .handle(
                &Message::Bid {
                    round: RoundId(0),
                    machine: 1,
                    value: 2.0,
                },
                &trues,
            )
            .unwrap();
        assert_eq!(assigns.len(), 2);
        assert_eq!(c.phase(), CoordinatorPhase::Executing);
        assert!(c.allocation().is_some());

        let none = c
            .handle(
                &Message::ExecutionDone {
                    round: RoundId(0),
                    machine: 1,
                },
                &trues,
            )
            .unwrap();
        assert!(none.is_empty());
        let payments = c
            .handle(
                &Message::ExecutionDone {
                    round: RoundId(0),
                    machine: 0,
                },
                &trues,
            )
            .unwrap();
        assert_eq!(payments.len(), 2);
        assert_eq!(c.phase(), CoordinatorPhase::Done);
        assert!(c.payments().is_some());
        // Verification recovered the true execution values exactly
        // (deterministic service model).
        let est = c.estimated_exec_values().unwrap();
        assert!((est[0] - 1.0).abs() < 1e-9 && (est[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn close_bidding_excludes_silent_machines() {
        let mech = CompensationBonusMechanism::paper();
        let trues = [1.0, 2.0, 4.0];
        let mut c = Coordinator::new(&mech, 3, 3.0, RoundId(0), config());
        c.handle(
            &Message::Bid {
                round: RoundId(0),
                machine: 0,
                value: 1.0,
            },
            &trues,
        )
        .unwrap();
        c.handle(
            &Message::Bid {
                round: RoundId(0),
                machine: 2,
                value: 4.0,
            },
            &trues,
        )
        .unwrap();
        // Machine 1 never bids; timeout.
        let assigns = c.close_bidding(&trues).unwrap();
        assert_eq!(assigns.len(), 2, "assigns only to respondents");
        assert_eq!(c.excluded(), &[false, true, false]);
        let alloc = c.allocation().unwrap();
        assert_eq!(alloc.rate(1), 0.0);
        assert!((alloc.total_rate() - 3.0).abs() < 1e-9);

        // A stale bid from machine 1 after exclusion is ignored.
        let out = c
            .handle(
                &Message::Bid {
                    round: RoundId(0),
                    machine: 1,
                    value: 2.0,
                },
                &trues,
            )
            .unwrap();
        assert!(out.is_empty());
        assert_eq!(c.anomalies().stale_after_exclusion, 1);
    }

    #[test]
    fn close_bidding_needs_two_respondents() {
        let mech = CompensationBonusMechanism::paper();
        let trues = [1.0, 2.0, 4.0];
        let mut c = Coordinator::new(&mech, 3, 3.0, RoundId(0), config());
        c.handle(
            &Message::Bid {
                round: RoundId(0),
                machine: 0,
                value: 1.0,
            },
            &trues,
        )
        .unwrap();
        assert!(matches!(
            c.close_bidding(&trues),
            Err(ProtocolError::Mechanism(MechanismError::NeedTwoAgents))
        ));
    }

    #[test]
    fn close_execution_settles_without_all_acks() {
        let mech = CompensationBonusMechanism::paper();
        let trues = [1.0, 2.0];
        let mut c = Coordinator::new(&mech, 2, 3.0, RoundId(0), config());
        c.handle(
            &Message::Bid {
                round: RoundId(0),
                machine: 0,
                value: 1.0,
            },
            &trues,
        )
        .unwrap();
        c.handle(
            &Message::Bid {
                round: RoundId(0),
                machine: 1,
                value: 2.0,
            },
            &trues,
        )
        .unwrap();
        c.handle(
            &Message::ExecutionDone {
                round: RoundId(0),
                machine: 0,
            },
            &trues,
        )
        .unwrap();
        // Machine 1's ack is lost; settle from measurements.
        let payments = c.close_execution().unwrap();
        assert_eq!(payments.len(), 2);
        assert_eq!(c.phase(), CoordinatorPhase::Done);
    }

    #[test]
    #[should_panic(expected = "duplicate bid")]
    fn strict_duplicate_bid_panics() {
        let mech = CompensationBonusMechanism::paper();
        let trues = [1.0, 2.0];
        let mut c = Coordinator::new(&mech, 2, 3.0, RoundId(0), config()).with_strict(true);
        let bid = Message::Bid {
            round: RoundId(0),
            machine: 0,
            value: 1.0,
        };
        c.handle(&bid, &trues).unwrap();
        c.handle(&bid, &trues).unwrap();
    }

    #[test]
    #[should_panic(expected = "wrong round")]
    fn strict_wrong_round_panics() {
        let mech = CompensationBonusMechanism::paper();
        let mut c = Coordinator::new(&mech, 1, 3.0, RoundId(0), config()).with_strict(true);
        c.handle(
            &Message::Bid {
                round: RoundId(1),
                machine: 0,
                value: 1.0,
            },
            &[1.0],
        )
        .unwrap();
    }

    #[test]
    fn graceful_coordinator_absorbs_violations_as_anomalies() {
        let mech = CompensationBonusMechanism::paper();
        let trues = [1.0, 2.0];
        let mut c = Coordinator::new(&mech, 2, 3.0, RoundId(0), config());
        let bid0 = Message::Bid {
            round: RoundId(0),
            machine: 0,
            value: 1.0,
        };

        // Wrong round, duplicate, out-of-range, misrouted, early ack: all
        // absorbed without output and without state damage.
        assert!(c
            .handle(
                &Message::Bid {
                    round: RoundId(7),
                    machine: 0,
                    value: 9.0
                },
                &trues
            )
            .unwrap()
            .is_empty());
        c.handle(&bid0, &trues).unwrap();
        assert!(c.handle(&bid0, &trues).unwrap().is_empty());
        assert!(c
            .handle(
                &Message::Bid {
                    round: RoundId(0),
                    machine: 9,
                    value: 1.0
                },
                &trues
            )
            .unwrap()
            .is_empty());
        assert!(c
            .handle(&Message::RequestBid { round: RoundId(0) }, &trues)
            .unwrap()
            .is_empty());
        assert!(c
            .handle(
                &Message::ExecutionDone {
                    round: RoundId(0),
                    machine: 0
                },
                &trues
            )
            .unwrap()
            .is_empty());

        let a = *c.anomalies();
        assert_eq!(a.stale_rounds, 1);
        assert_eq!(a.duplicate_bids, 1);
        assert_eq!(a.unsolicited, 1);
        assert_eq!(a.misrouted, 1);
        assert_eq!(a.wrong_phase, 1);
        assert_eq!(a.total(), 5);

        // The round still completes normally afterwards.
        let assigns = c
            .handle(
                &Message::Bid {
                    round: RoundId(0),
                    machine: 1,
                    value: 2.0,
                },
                &trues,
            )
            .unwrap();
        assert_eq!(assigns.len(), 2);
        assert_eq!(c.phase(), CoordinatorPhase::Executing);

        // Duplicate acks are idempotent.
        c.handle(
            &Message::ExecutionDone {
                round: RoundId(0),
                machine: 0,
            },
            &trues,
        )
        .unwrap();
        assert!(c
            .handle(
                &Message::ExecutionDone {
                    round: RoundId(0),
                    machine: 0
                },
                &trues
            )
            .unwrap()
            .is_empty());
        assert_eq!(c.anomalies().duplicate_acks, 1);
        let payments = c
            .handle(
                &Message::ExecutionDone {
                    round: RoundId(0),
                    machine: 1,
                },
                &trues,
            )
            .unwrap();
        assert_eq!(payments.len(), 2);
        assert_eq!(c.phase(), CoordinatorPhase::Done);
    }

    #[test]
    fn instrumented_round_emits_clean_phase_spans_and_anomalies() {
        use lb_telemetry::{replay_spans, EventKind, RingCollector};
        let mech = CompensationBonusMechanism::paper();
        let trues = [1.0, 2.0];
        let ring = Arc::new(RingCollector::new(256));
        let mut c =
            Coordinator::new(&mech, 2, 3.0, RoundId(3), config()).with_collector(ring.clone());

        c.set_now(0.0);
        let _ = c.open();
        c.set_now(0.1);
        c.handle(
            &Message::Bid {
                round: RoundId(3),
                machine: 0,
                value: 1.0,
            },
            &trues,
        )
        .unwrap();
        // A duplicate bid mid-round surfaces as an anomaly instant.
        c.set_now(0.15);
        c.handle(
            &Message::Bid {
                round: RoundId(3),
                machine: 0,
                value: 1.0,
            },
            &trues,
        )
        .unwrap();
        c.set_now(0.2);
        c.handle(
            &Message::Bid {
                round: RoundId(3),
                machine: 1,
                value: 2.0,
            },
            &trues,
        )
        .unwrap();
        c.set_now(0.4);
        c.handle(
            &Message::ExecutionDone {
                round: RoundId(3),
                machine: 0,
            },
            &trues,
        )
        .unwrap();
        c.set_now(0.5);
        c.handle(
            &Message::ExecutionDone {
                round: RoundId(3),
                machine: 1,
            },
            &trues,
        )
        .unwrap();

        let events = ring.snapshot();
        let spans = replay_spans(&events).expect("recording replays cleanly");
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        for expected in [
            "round",
            "phase.collect_bids",
            "phase.allocate",
            "phase.execute",
            "phase.settle",
        ] {
            assert!(
                names.contains(&expected),
                "missing span {expected}: {names:?}"
            );
        }
        let round_span = spans.iter().find(|s| s.name == "round").unwrap();
        assert_eq!(round_span.depth, 0);
        assert!((round_span.start, round_span.end) == (0.0, 0.5));
        for s in spans.iter().filter(|s| s.name.starts_with("phase.")) {
            assert_eq!(
                s.parent,
                Some(round_span.id),
                "{} nests under round",
                s.name
            );
        }

        let anomalies: Vec<_> = events
            .iter()
            .filter(|e| e.name == "anomaly" && matches!(e.kind, EventKind::Instant))
            .collect();
        assert_eq!(anomalies.len(), 1);
        assert_eq!(
            anomalies[0].field("kind"),
            Some(&lb_telemetry::FieldValue::Str("duplicate_bid".into()))
        );
        assert_eq!(anomalies[0].at, 0.15);
    }

    #[test]
    fn abandoned_round_closes_spans_via_end_telemetry() {
        use lb_telemetry::{replay_spans, RingCollector};
        let mech = CompensationBonusMechanism::paper();
        let trues = [1.0, 2.0, 4.0];
        let ring = Arc::new(RingCollector::new(64));
        let mut c =
            Coordinator::new(&mech, 3, 3.0, RoundId(0), config()).with_collector(ring.clone());
        c.set_now(0.0);
        c.handle(
            &Message::Bid {
                round: RoundId(0),
                machine: 0,
                value: 1.0,
            },
            &trues,
        )
        .unwrap();
        c.set_now(1.0);
        assert!(
            c.close_bidding(&trues).is_err(),
            "one respondent cannot run"
        );
        // The driver abandons the round; telemetry must still balance.
        c.end_telemetry();
        let spans = replay_spans(&ring.snapshot()).expect("abandoned round still replays");
        assert!(spans.iter().any(|s| s.name == "round"));
    }

    #[test]
    fn wire_context_tracks_phase_spans_and_survives_settlement() {
        use lb_telemetry::{replay_spans, RingCollector};
        let mech = CompensationBonusMechanism::paper();
        let trues = [1.0, 2.0];
        let ring = Arc::new(RingCollector::new(256));
        let trace = TraceContext::root(99, 5, true);
        let mut c = Coordinator::new(&mech, 2, 3.0, RoundId(5), config())
            .with_collector(ring.clone())
            .with_trace(trace);

        c.set_now(0.0);
        let _ = c.open();
        let collect_ctx = c.wire_context().expect("sampled round with collector");
        assert_eq!(collect_ctx.trace_id, trace.trace_id);
        assert!(collect_ctx.sampled);

        for (machine, value) in [(0u32, 1.0), (1, 2.0)] {
            c.handle(
                &Message::Bid {
                    round: RoundId(5),
                    machine,
                    value,
                },
                &trues,
            )
            .unwrap();
        }
        let exec_ctx = c.wire_context().expect("still traced");
        assert_ne!(
            exec_ctx.span_id, collect_ctx.span_id,
            "a new phase re-parents the wire context"
        );

        for machine in [0u32, 1] {
            c.handle(
                &Message::ExecutionDone {
                    round: RoundId(5),
                    machine,
                },
                &trues,
            )
            .unwrap();
        }
        assert_eq!(c.phase(), CoordinatorPhase::Done);
        let settle_ctx = c.wire_context().expect("retained after settlement");

        let spans = replay_spans(&ring.snapshot()).expect("clean recording");
        let name_of = |id: u64| spans.iter().find(|s| s.id.0 == id).map(|s| s.name.as_str());
        assert_eq!(name_of(collect_ctx.span_id), Some("phase.collect_bids"));
        assert_eq!(name_of(exec_ctx.span_id), Some("phase.execute"));
        assert_eq!(
            name_of(settle_ctx.span_id),
            Some("phase.settle"),
            "Payment frames carry the settle span even after spans close"
        );

        // The round span advertises the trace id for offline stitching.
        let events = ring.snapshot();
        let start = events
            .iter()
            .find(|e| {
                e.name == "round" && matches!(e.kind, lb_telemetry::EventKind::SpanStart { .. })
            })
            .unwrap();
        assert_eq!(
            start.field("trace_lo"),
            Some(&lb_telemetry::FieldValue::U64(trace.trace_id as u64))
        );
    }

    #[test]
    fn wire_context_is_absent_when_unsampled_or_untraced() {
        let mech = CompensationBonusMechanism::paper();
        use lb_telemetry::RingCollector;
        let ring = Arc::new(RingCollector::new(64));

        // Traced but unsampled: nothing goes on the wire.
        let c = Coordinator::new(&mech, 2, 3.0, RoundId(0), config())
            .with_collector(ring.clone())
            .with_trace(TraceContext::root(1, 0, false));
        let _ = c.open();
        assert_eq!(c.wire_context(), None);

        // Sampled but no collector: telemetry off means tracing off.
        let c = Coordinator::new(&mech, 2, 3.0, RoundId(0), config())
            .with_trace(TraceContext::root(1, 0, true));
        let _ = c.open();
        assert_eq!(c.wire_context(), None);

        // Untraced: plain instrumented rounds carry nothing extra.
        let c = Coordinator::new(&mech, 2, 3.0, RoundId(0), config()).with_collector(ring);
        let _ = c.open();
        assert_eq!(c.wire_context(), None);
    }

    #[test]
    fn settlement_emits_per_machine_gauges() {
        use lb_telemetry::{EventKind, RingCollector};
        let mech = CompensationBonusMechanism::paper();
        let trues = [1.0, 2.0];
        let ring = Arc::new(RingCollector::new(256));
        let mut c =
            Coordinator::new(&mech, 2, 3.0, RoundId(0), config()).with_collector(ring.clone());
        for (machine, value) in [(0u32, 1.0), (1, 2.0)] {
            c.handle(
                &Message::Bid {
                    round: RoundId(0),
                    machine,
                    value,
                },
                &trues,
            )
            .unwrap();
        }
        for machine in [0u32, 1] {
            c.handle(
                &Message::ExecutionDone {
                    round: RoundId(0),
                    machine,
                },
                &trues,
            )
            .unwrap();
        }
        let events = ring.snapshot();
        let gauge = |name: &str| {
            events.iter().find_map(|e| match e.kind {
                EventKind::Gauge { value } if e.name == name => Some(value),
                _ => None,
            })
        };
        let alloc = c.allocation().unwrap();
        let payments = c.payments().unwrap();
        assert_eq!(gauge("alloc.rate.m0"), Some(alloc.rate(0)));
        assert_eq!(gauge("alloc.rate.m1"), Some(alloc.rate(1)));
        assert_eq!(gauge("payment.m0"), Some(payments[0]));
        assert_eq!(gauge("payment.m1"), Some(payments[1]));
        assert_eq!(
            gauge("round.payment.total"),
            Some(payments.iter().sum::<f64>())
        );
    }

    #[test]
    fn missing_bids_tracks_outstanding_machines() {
        let mech = CompensationBonusMechanism::paper();
        let trues = [1.0, 2.0, 4.0];
        let mut c = Coordinator::new(&mech, 3, 3.0, RoundId(0), config());
        assert_eq!(c.missing_bids(), vec![0, 1, 2]);
        c.handle(
            &Message::Bid {
                round: RoundId(0),
                machine: 1,
                value: 2.0,
            },
            &trues,
        )
        .unwrap();
        assert_eq!(c.missing_bids(), vec![0, 2]);
        c.exclude(0).unwrap();
        assert_eq!(c.missing_bids(), vec![2]);
    }

    #[test]
    fn upfront_exclusion_quarantines_a_machine() {
        let mech = CompensationBonusMechanism::paper();
        let trues = [1.0, 2.0, 4.0];
        let mut c = Coordinator::new(&mech, 3, 3.0, RoundId(0), config());
        c.exclude(1).unwrap();
        c.handle(
            &Message::Bid {
                round: RoundId(0),
                machine: 0,
                value: 1.0,
            },
            &trues,
        )
        .unwrap();
        // The quarantined machine's bid is absorbed as stale.
        assert!(c
            .handle(
                &Message::Bid {
                    round: RoundId(0),
                    machine: 1,
                    value: 2.0
                },
                &trues
            )
            .unwrap()
            .is_empty());
        let assigns = c
            .handle(
                &Message::Bid {
                    round: RoundId(0),
                    machine: 2,
                    value: 4.0,
                },
                &trues,
            )
            .unwrap();
        assert_eq!(assigns.len(), 2, "round runs over the two active machines");
        assert_eq!(c.excluded(), &[false, true, false]);
    }

    #[test]
    fn quarantine_below_two_participants_errors() {
        let mech = CompensationBonusMechanism::paper();
        let trues = [1.0, 2.0, 4.0];
        let mut c = Coordinator::new(&mech, 3, 3.0, RoundId(0), config());
        c.exclude(1).unwrap();
        c.exclude(2).unwrap();
        let out = c.handle(
            &Message::Bid {
                round: RoundId(0),
                machine: 0,
                value: 1.0,
            },
            &trues,
        );
        assert!(matches!(
            out,
            Err(ProtocolError::Mechanism(MechanismError::NeedTwoAgents))
        ));
    }

    #[test]
    fn try_new_rejects_empty_rounds_with_a_typed_error() {
        let mech = CompensationBonusMechanism::paper();
        assert!(matches!(
            Coordinator::try_new(&mech, 0, 3.0, RoundId(0), config()),
            Err(ProtocolError::MissingState { .. })
        ));
    }

    #[cfg(target_pointer_width = "64")]
    #[test]
    fn try_new_rejects_oversized_rounds_before_allocating() {
        // Regression: `u32::try_from(n).expect(...)` used to panic deep in
        // journal_append / fan-out paths. The count is now validated up
        // front — and *before* the per-node vectors are allocated, so this
        // test is cheap despite asking for 2^32 nodes.
        let mech = CompensationBonusMechanism::paper();
        let n = usize::try_from(u64::from(u32::MAX) + 1).unwrap();
        match Coordinator::try_new(&mech, n, 3.0, RoundId(0), config()) {
            Err(ProtocolError::TooManyNodes { n: got }) => assert_eq!(got, n),
            other => panic!("expected TooManyNodes, got {other:?}", other = other.err()),
        }
    }

    #[test]
    fn sharded_transitions_reproduce_the_message_driven_round_bitwise() {
        use lb_core::inv_sum_dd;
        let mech = CompensationBonusMechanism::paper();
        let trues = [1.0, 2.0, 4.0, 8.0];
        let bids = [1.0, 2.0, 4.0, 8.0];

        // Reference: the classic per-message round.
        let mut classic = Coordinator::new(&mech, 4, 3.0, RoundId(0), config());
        let mut last = Vec::new();
        for (machine, value) in bids.iter().copied().enumerate() {
            last = classic
                .handle(
                    &Message::Bid {
                        round: RoundId(0),
                        machine: u32::try_from(machine).unwrap(),
                        value,
                    },
                    &trues,
                )
                .unwrap();
        }
        assert_eq!(classic.phase(), CoordinatorPhase::Executing);
        let classic_assigns = last.clone();
        for machine in 0..4u32 {
            last = classic
                .handle(
                    &Message::ExecutionDone {
                        round: RoundId(0),
                        machine,
                    },
                    &trues,
                )
                .unwrap();
        }
        let classic_payments = last;

        // Sharded: ingest the same bids, then drive the transitions
        // explicitly with the externally merged harmonic sum.
        let mut sharded = Coordinator::new(&mech, 4, 3.0, RoundId(0), config());
        for (machine, value) in bids.iter().copied().enumerate() {
            sharded
                .ingest(&Message::Bid {
                    round: RoundId(0),
                    machine: u32::try_from(machine).unwrap(),
                    value,
                })
                .unwrap();
        }
        let respondents = sharded.close_bidding_sharded().unwrap();
        assert_eq!(respondents, vec![0, 1, 2, 3]);
        assert_eq!(sharded.phase(), CoordinatorPhase::CollectingBids);
        let s = inv_sum_dd(&bids);
        let rates = sharded.begin_allocation_sharded(s).unwrap();
        // The shards would simulate here; this test reuses the classic
        // round's verification plane for a like-for-like comparison.
        let report = lb_sim::driver::simulate_round(&bids, &trues, 3.0, &config()).unwrap();
        let assigns = sharded
            .commit_allocation_sharded(rates, report.estimated_exec_values)
            .unwrap();
        assert_eq!(assigns, classic_assigns);
        for machine in 0..4u32 {
            sharded
                .ingest(&Message::ExecutionDone {
                    round: RoundId(0),
                    machine,
                })
                .unwrap();
        }
        let payments = sharded.settle_sharded(s).unwrap();
        assert_eq!(payments, classic_payments);

        let (ca, sa) = (classic.allocation().unwrap(), sharded.allocation().unwrap());
        for i in 0..4 {
            assert_eq!(ca.rate(i).to_bits(), sa.rate(i).to_bits());
        }
        assert_eq!(
            classic.estimated_exec_values().unwrap(),
            sharded.estimated_exec_values().unwrap()
        );
        assert_eq!(classic.payments().unwrap(), sharded.payments().unwrap());
    }

    #[test]
    fn sharded_transitions_enforce_their_phase_preconditions() {
        use lb_core::inv_sum_dd;
        let mech = CompensationBonusMechanism::paper();
        let mut c = Coordinator::new(&mech, 2, 3.0, RoundId(0), config());
        let s = inv_sum_dd(&[1.0, 2.0]);
        assert!(matches!(
            c.settle_sharded(s),
            Err(ProtocolError::PhaseViolation { .. })
        ));
        // No bids at all: closing must fail, and not change phase.
        assert!(matches!(
            c.close_bidding_sharded(),
            Err(ProtocolError::Mechanism(MechanismError::NeedTwoAgents))
        ));
        assert!(matches!(
            c.commit_allocation_sharded(vec![1.0], vec![1.0]),
            Err(ProtocolError::Mechanism(_))
        ));
    }
}
