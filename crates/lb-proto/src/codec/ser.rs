//! Serializer: Rust values → compact binary.

use super::error::CodecError;
use bytes::{BufMut, Bytes, BytesMut};
use serde::ser::{self, Serialize};

/// Encodes a value into its wire representation.
///
/// # Errors
/// Returns [`CodecError`] when the value cannot be represented (e.g. a
/// sequence of unknown length) or a `Serialize` impl raises a custom error.
pub fn encode<T: Serialize + ?Sized>(value: &T) -> Result<Bytes, CodecError> {
    let mut encoder = Encoder::new();
    value.serialize(&mut encoder)?;
    Ok(encoder.into_bytes())
}

/// Streaming encoder over a growable byte buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// Creates an empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buf: BytesMut::with_capacity(64),
        }
    }

    /// Finalises the encoder into an immutable byte buffer.
    #[must_use]
    pub fn into_bytes(self) -> Bytes {
        self.buf.freeze()
    }

    fn put_len(&mut self, len: usize) {
        self.buf.put_u64_le(len as u64);
    }
}

impl ser::Serializer for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), CodecError> {
        self.buf.put_u8(u8::from(v));
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), CodecError> {
        self.buf.put_i8(v);
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), CodecError> {
        self.buf.put_i16_le(v);
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), CodecError> {
        self.buf.put_i32_le(v);
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), CodecError> {
        self.buf.put_i64_le(v);
        Ok(())
    }
    fn serialize_i128(self, v: i128) -> Result<(), CodecError> {
        self.buf.put_i128_le(v);
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), CodecError> {
        self.buf.put_u8(v);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), CodecError> {
        self.buf.put_u16_le(v);
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), CodecError> {
        self.buf.put_u32_le(v);
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), CodecError> {
        self.buf.put_u64_le(v);
        Ok(())
    }
    fn serialize_u128(self, v: u128) -> Result<(), CodecError> {
        self.buf.put_u128_le(v);
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), CodecError> {
        self.buf.put_f32_le(v);
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), CodecError> {
        self.buf.put_f64_le(v);
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), CodecError> {
        self.buf.put_u32_le(v as u32);
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), CodecError> {
        self.put_len(v.len());
        self.buf.put_slice(v.as_bytes());
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), CodecError> {
        self.put_len(v.len());
        self.buf.put_slice(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<(), CodecError> {
        self.buf.put_u8(0);
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CodecError> {
        self.buf.put_u8(1);
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), CodecError> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CodecError> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CodecError> {
        self.buf.put_u32_le(variant_index);
        Ok(())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        self.buf.put_u32_le(variant_index);
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, CodecError> {
        let len = len.ok_or(CodecError::UnknownLength)?;
        self.put_len(len);
        Ok(self)
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple, CodecError> {
        Ok(self)
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct, CodecError> {
        Ok(self)
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant, CodecError> {
        self.buf.put_u32_le(variant_index);
        Ok(self)
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, CodecError> {
        let len = len.ok_or(CodecError::UnknownLength)?;
        self.put_len(len);
        Ok(self)
    }
    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStruct, CodecError> {
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant, CodecError> {
        self.buf.put_u32_le(variant_index);
        Ok(self)
    }
    fn is_human_readable(&self) -> bool {
        false
    }
}

impl ser::SerializeSeq for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}
impl ser::SerializeTuple for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}
impl ser::SerializeTupleStruct for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}
impl ser::SerializeTupleVariant for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}
impl ser::SerializeMap for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CodecError> {
        key.serialize(&mut **self)
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}
impl ser::SerializeStruct for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}
impl ser::SerializeStructVariant for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_are_little_endian() {
        assert_eq!(encode(&0x0102_0304u32).unwrap().as_ref(), &[4, 3, 2, 1]);
        assert_eq!(encode(&0x01u8).unwrap().as_ref(), &[1]);
    }

    #[test]
    fn strings_are_length_prefixed() {
        let bytes = encode("ab").unwrap();
        assert_eq!(bytes.as_ref(), &[2, 0, 0, 0, 0, 0, 0, 0, b'a', b'b']);
    }

    #[test]
    fn options_use_one_byte_tags() {
        assert_eq!(encode(&Option::<u8>::None).unwrap().as_ref(), &[0]);
        assert_eq!(encode(&Some(7u8)).unwrap().as_ref(), &[1, 7]);
    }

    #[test]
    fn unit_encodes_to_nothing() {
        assert!(encode(&()).unwrap().is_empty());
    }
}
