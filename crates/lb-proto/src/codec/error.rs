//! Codec error type.

use std::fmt;

/// Errors produced while encoding or decoding wire messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value was fully decoded.
    UnexpectedEof {
        /// Bytes needed to continue.
        needed: usize,
        /// Bytes remaining.
        available: usize,
    },
    /// The input contained extra bytes after the value.
    TrailingBytes(usize),
    /// A byte string was not valid UTF-8 where a string was expected.
    InvalidUtf8,
    /// A tag byte (bool/option) held an invalid value.
    InvalidTag(u8),
    /// A `char` was encoded as an invalid scalar value.
    InvalidChar(u32),
    /// An enum variant index was out of range for the target enum.
    InvalidVariant(u32),
    /// A length prefix exceeded the remaining input (corruption guard).
    LengthOverflow(u64),
    /// A frame exceeded the configured maximum frame size (hostile or
    /// corrupted header; bounds allocation before any buffering happens).
    FrameTooLarge {
        /// Length announced by the frame header.
        len: u64,
        /// Maximum frame size the reader/writer accepts.
        max: u64,
    },
    /// The format is not self-describing: `deserialize_any` is unsupported.
    NotSelfDescribing,
    /// Sequences must know their length up front to be encoded.
    UnknownLength,
    /// Custom error raised by a `Serialize`/`Deserialize` implementation.
    Custom(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedEof { needed, available } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} bytes, {available} available"
                )
            }
            Self::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            Self::InvalidUtf8 => write!(f, "invalid UTF-8 in string"),
            Self::InvalidTag(t) => write!(f, "invalid tag byte {t}"),
            Self::InvalidChar(c) => write!(f, "invalid char scalar {c:#x}"),
            Self::InvalidVariant(v) => write!(f, "invalid enum variant index {v}"),
            Self::LengthOverflow(n) => write!(f, "length prefix {n} exceeds remaining input"),
            Self::FrameTooLarge { len, max } => {
                write!(
                    f,
                    "frame of {len} bytes exceeds the maximum frame size {max}"
                )
            }
            Self::NotSelfDescribing => {
                write!(
                    f,
                    "format is not self-describing (deserialize_any unsupported)"
                )
            }
            Self::UnknownLength => write!(f, "sequence length must be known up front"),
            Self::Custom(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl serde::ser::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Self::Custom(msg.to_string())
    }
}

impl serde::de::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Self::Custom(msg.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(CodecError::UnexpectedEof {
            needed: 4,
            available: 1
        }
        .to_string()
        .contains('4'));
        assert!(CodecError::TrailingBytes(3).to_string().contains('3'));
        assert!(CodecError::InvalidUtf8.to_string().contains("UTF-8"));
        assert!(CodecError::InvalidTag(9).to_string().contains('9'));
        assert!(CodecError::InvalidVariant(2).to_string().contains('2'));
        assert!(CodecError::NotSelfDescribing
            .to_string()
            .contains("self-describing"));
        let e = CodecError::FrameTooLarge {
            len: 5_000_000,
            max: 1_048_576,
        };
        assert!(e.to_string().contains("5000000"));
        assert!(e.to_string().contains("1048576"));
        assert!(<CodecError as serde::ser::Error>::custom("boom")
            .to_string()
            .contains("boom"));
    }
}
