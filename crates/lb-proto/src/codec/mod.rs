//! Compact binary wire format (serde-based).
//!
//! A non-self-describing, little-endian binary encoding in the spirit of
//! bincode, implemented from scratch on top of [`bytes`]:
//!
//! * fixed-width little-endian integers and floats,
//! * `u64` length prefixes for strings, byte arrays, sequences and maps,
//! * `u32` variant indices for enums,
//! * one-byte tags for `Option` and `bool`.
//!
//! Because the format is not self-describing, decoding requires the exact
//! type that was encoded — which is the right trade-off for a protocol whose
//! two endpoints share one message vocabulary. Round-trip property tests
//! (including proptest-generated payloads) live in the crate's test suite.

mod de;
mod error;
mod ser;

pub use de::{decode, Decoder};
pub use error::CodecError;
pub use ser::{encode, Encoder};

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn roundtrip<T: Serialize + for<'de> Deserialize<'de> + PartialEq + std::fmt::Debug>(
        value: &T,
    ) {
        let bytes = encode(value).expect("encode");
        let back: T = decode(&bytes).expect("decode");
        assert_eq!(&back, value);
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Plain {
        a: u8,
        b: i64,
        c: f64,
        d: String,
        e: bool,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Various {
        Unit,
        Newtype(u32),
        Tuple(i16, String),
        Struct { x: f32, y: Vec<u8> },
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Nested {
        inner: Vec<Various>,
        map: BTreeMap<String, f64>,
        opt: Option<Box<Nested>>,
        tuple: (u8, u16, u32),
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&0u8);
        roundtrip(&u64::MAX);
        roundtrip(&i64::MIN);
        roundtrip(&-1i8);
        roundtrip(&3.141_592_653_589_793f64);
        roundtrip(&f64::NEG_INFINITY);
        roundtrip(&true);
        roundtrip(&'λ');
        roundtrip(&"hello world".to_string());
        roundtrip(&u128::MAX);
        roundtrip(&i128::MIN);
    }

    #[test]
    fn struct_roundtrip() {
        roundtrip(&Plain {
            a: 7,
            b: -42,
            c: 2.5,
            d: "bid".into(),
            e: false,
        });
    }

    #[test]
    fn enum_variants_roundtrip() {
        roundtrip(&Various::Unit);
        roundtrip(&Various::Newtype(99));
        roundtrip(&Various::Tuple(-3, "x".into()));
        roundtrip(&Various::Struct {
            x: 1.5,
            y: vec![1, 2, 3],
        });
    }

    #[test]
    fn collections_roundtrip() {
        roundtrip(&vec![1.0f64, 2.0, 3.0]);
        roundtrip(&Vec::<u8>::new());
        let mut map = BTreeMap::new();
        map.insert("a".to_string(), 1u32);
        map.insert("b".to_string(), 2);
        roundtrip(&map);
        roundtrip(&Some(5u8));
        roundtrip(&Option::<u8>::None);
        roundtrip(&(1u8, -2i32, "three".to_string()));
    }

    #[test]
    fn deeply_nested_roundtrip() {
        let leaf = Nested {
            inner: vec![Various::Unit, Various::Newtype(1)],
            map: BTreeMap::new(),
            opt: None,
            tuple: (1, 2, 3),
        };
        let mut map = BTreeMap::new();
        map.insert("k".to_string(), -0.5);
        let root = Nested {
            inner: vec![Various::Struct { x: 0.0, y: vec![] }],
            map,
            opt: Some(Box::new(leaf)),
            tuple: (9, 8, 7),
        };
        roundtrip(&root);
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let bytes = encode(&Plain {
            a: 1,
            b: 2,
            c: 3.0,
            d: "abcd".into(),
            e: true,
        })
        .unwrap();
        for cut in 0..bytes.len() {
            let err = decode::<Plain>(&bytes[..cut]);
            assert!(err.is_err(), "cut at {cut} decoded successfully");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode(&5u32).unwrap().to_vec();
        bytes.push(0);
        assert!(matches!(
            decode::<u32>(&bytes),
            Err(CodecError::TrailingBytes(1))
        ));
    }

    #[test]
    fn unknown_variant_is_rejected() {
        // Encode a variant index beyond the enum's arity.
        let bytes = encode(&17u32).unwrap();
        assert!(decode::<Various>(&bytes).is_err());
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert!(decode::<String>(&bytes).is_err());
    }

    #[test]
    fn invalid_bool_and_option_tags_are_rejected() {
        assert!(decode::<bool>(&[2]).is_err());
        assert!(decode::<Option<u8>>(&[7]).is_err());
    }

    fn arb_message() -> impl Strategy<Value = crate::message::Message> {
        use crate::message::{Message, RoundId};
        let round = any::<u64>().prop_map(RoundId);
        prop_oneof![
            round
                .clone()
                .prop_map(|round| Message::RequestBid { round }),
            (round.clone(), any::<u32>(), -1e12f64..1e12).prop_map(|(round, machine, value)| {
                Message::Bid {
                    round,
                    machine,
                    value,
                }
            }),
            (round.clone(), -1e12f64..1e12)
                .prop_map(|(round, rate)| Message::Assign { round, rate }),
            (round.clone(), any::<u32>())
                .prop_map(|(round, machine)| Message::ExecutionDone { round, machine }),
            (round, -1e12f64..1e12).prop_map(|(round, amount)| Message::Payment { round, amount }),
        ]
    }

    proptest! {
        /// Every protocol message, with arbitrary field values, survives the
        /// wire format bit-exactly.
        #[test]
        fn prop_roundtrip_protocol_messages(msg in arb_message()) {
            roundtrip(&msg);
        }

        #[test]
        fn prop_roundtrip_plain(
            a in any::<u8>(), b in any::<i64>(), c in any::<f64>(),
            d in ".*", e in any::<bool>(),
        ) {
            prop_assume!(!c.is_nan());
            roundtrip(&Plain { a, b, c, d, e });
        }

        #[test]
        fn prop_roundtrip_vectors(v in proptest::collection::vec(any::<f64>(), 0..64)) {
            prop_assume!(v.iter().all(|x| !x.is_nan()));
            roundtrip(&v);
        }

        #[test]
        fn prop_roundtrip_nested_options(v in proptest::collection::vec(
            proptest::option::of(any::<i32>()), 0..32))
        {
            roundtrip(&v);
        }

        #[test]
        fn prop_random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Decoding arbitrary garbage must fail gracefully, never panic.
            let _ = decode::<Plain>(&data);
            let _ = decode::<Various>(&data);
            let _ = decode::<Vec<String>>(&data);
        }
    }
}
