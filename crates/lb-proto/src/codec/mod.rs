//! Compact binary wire format (serde-based).
//!
//! A non-self-describing, little-endian binary encoding in the spirit of
//! bincode, implemented from scratch on top of [`bytes`]:
//!
//! * fixed-width little-endian integers and floats,
//! * `u64` length prefixes for strings, byte arrays, sequences and maps,
//! * `u32` variant indices for enums,
//! * one-byte tags for `Option` and `bool`.
//!
//! Because the format is not self-describing, decoding requires the exact
//! type that was encoded — which is the right trade-off for a protocol whose
//! two endpoints share one message vocabulary. Round-trip property tests
//! (including proptest-generated payloads) live in the crate's test suite.
//!
//! # Trace-context trailer
//!
//! [`encode_with_context`] / [`decode_with_context`] carry an optional
//! [`TraceContext`] as a fixed-size trailer *after* the encoded message,
//! inside the same frame payload. The trailer is self-delimiting (magic +
//! version + fixed length), so a receiver that knows about it can peel it
//! off, while the message encoding itself is byte-identical to the plain
//! [`encode`] output — frames written without a trailer decode unchanged,
//! which keeps old recordings and uninstrumented runs bit-compatible.

mod de;
mod error;
mod ser;

use bytes::{BufMut, Bytes, BytesMut};
use lb_telemetry::{TraceContext, TRAILER_LEN};
use serde::{Deserialize, Serialize};

pub use de::{decode, Decoder};
pub use error::CodecError;
pub use ser::{encode, Encoder};

/// Encodes `value`, appending `ctx` as a fixed-size trace trailer when
/// present. With `ctx == None` the output is byte-identical to [`encode`],
/// so uninstrumented traffic never changes on the wire.
///
/// # Errors
/// Propagates codec errors from the message encoding.
pub fn encode_with_context<T: Serialize + ?Sized>(
    value: &T,
    ctx: Option<&TraceContext>,
) -> Result<Bytes, CodecError> {
    let body = encode(value)?;
    match ctx {
        None => Ok(body),
        Some(ctx) => {
            let mut buf = BytesMut::with_capacity(body.len() + TRAILER_LEN);
            buf.put_slice(&body);
            buf.put_slice(&ctx.to_trailer());
            Ok(buf.freeze())
        }
    }
}

/// Decodes a value that may carry a trace-context trailer.
///
/// Exactly-consumed input decodes as `(value, None)`; input whose leftover
/// is one well-formed trailer decodes as `(value, Some(ctx))`. Any other
/// leftover — wrong length, bad magic, unknown version, reserved flag bits —
/// is rejected as [`CodecError::TrailingBytes`], exactly as the plain
/// [`decode`] would reject it.
///
/// # Errors
/// Returns [`CodecError`] for truncated, corrupt or unexplained trailing
/// input.
pub fn decode_with_context<'a, T: Deserialize<'a>>(
    bytes: &'a [u8],
) -> Result<(T, Option<TraceContext>), CodecError> {
    let mut decoder = Decoder::new(bytes);
    let value = T::deserialize(&mut decoder)?;
    let rest = decoder.remaining();
    if rest == 0 {
        return Ok((value, None));
    }
    if rest == TRAILER_LEN {
        if let Some(ctx) = TraceContext::from_trailer(&bytes[bytes.len() - rest..]) {
            return Ok((value, Some(ctx)));
        }
    }
    Err(CodecError::TrailingBytes(rest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn roundtrip<T: Serialize + for<'de> Deserialize<'de> + PartialEq + std::fmt::Debug>(
        value: &T,
    ) {
        let bytes = encode(value).expect("encode");
        let back: T = decode(&bytes).expect("decode");
        assert_eq!(&back, value);
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Plain {
        a: u8,
        b: i64,
        c: f64,
        d: String,
        e: bool,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Various {
        Unit,
        Newtype(u32),
        Tuple(i16, String),
        Struct { x: f32, y: Vec<u8> },
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Nested {
        inner: Vec<Various>,
        map: BTreeMap<String, f64>,
        opt: Option<Box<Nested>>,
        tuple: (u8, u16, u32),
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&0u8);
        roundtrip(&u64::MAX);
        roundtrip(&i64::MIN);
        roundtrip(&-1i8);
        roundtrip(&3.141_592_653_589_793f64);
        roundtrip(&f64::NEG_INFINITY);
        roundtrip(&true);
        roundtrip(&'λ');
        roundtrip(&"hello world".to_string());
        roundtrip(&u128::MAX);
        roundtrip(&i128::MIN);
    }

    #[test]
    fn struct_roundtrip() {
        roundtrip(&Plain {
            a: 7,
            b: -42,
            c: 2.5,
            d: "bid".into(),
            e: false,
        });
    }

    #[test]
    fn enum_variants_roundtrip() {
        roundtrip(&Various::Unit);
        roundtrip(&Various::Newtype(99));
        roundtrip(&Various::Tuple(-3, "x".into()));
        roundtrip(&Various::Struct {
            x: 1.5,
            y: vec![1, 2, 3],
        });
    }

    #[test]
    fn collections_roundtrip() {
        roundtrip(&vec![1.0f64, 2.0, 3.0]);
        roundtrip(&Vec::<u8>::new());
        let mut map = BTreeMap::new();
        map.insert("a".to_string(), 1u32);
        map.insert("b".to_string(), 2);
        roundtrip(&map);
        roundtrip(&Some(5u8));
        roundtrip(&Option::<u8>::None);
        roundtrip(&(1u8, -2i32, "three".to_string()));
    }

    #[test]
    fn deeply_nested_roundtrip() {
        let leaf = Nested {
            inner: vec![Various::Unit, Various::Newtype(1)],
            map: BTreeMap::new(),
            opt: None,
            tuple: (1, 2, 3),
        };
        let mut map = BTreeMap::new();
        map.insert("k".to_string(), -0.5);
        let root = Nested {
            inner: vec![Various::Struct { x: 0.0, y: vec![] }],
            map,
            opt: Some(Box::new(leaf)),
            tuple: (9, 8, 7),
        };
        roundtrip(&root);
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let bytes = encode(&Plain {
            a: 1,
            b: 2,
            c: 3.0,
            d: "abcd".into(),
            e: true,
        })
        .unwrap();
        for cut in 0..bytes.len() {
            let err = decode::<Plain>(&bytes[..cut]);
            assert!(err.is_err(), "cut at {cut} decoded successfully");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode(&5u32).unwrap().to_vec();
        bytes.push(0);
        assert!(matches!(
            decode::<u32>(&bytes),
            Err(CodecError::TrailingBytes(1))
        ));
    }

    #[test]
    fn unknown_variant_is_rejected() {
        // Encode a variant index beyond the enum's arity.
        let bytes = encode(&17u32).unwrap();
        assert!(decode::<Various>(&bytes).is_err());
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert!(decode::<String>(&bytes).is_err());
    }

    #[test]
    fn invalid_bool_and_option_tags_are_rejected() {
        assert!(decode::<bool>(&[2]).is_err());
        assert!(decode::<Option<u8>>(&[7]).is_err());
    }

    #[test]
    fn context_trailer_roundtrips() {
        let msg = crate::message::Message::Bid {
            round: crate::message::RoundId(7),
            machine: 3,
            value: 1.5,
        };
        let ctx = TraceContext::root(42, 7, true).with_span(99);
        let bytes = encode_with_context(&msg, Some(&ctx)).unwrap();
        let (back, got): (crate::message::Message, _) = decode_with_context(&bytes).unwrap();
        assert_eq!(back, msg);
        assert_eq!(got, Some(ctx));
    }

    #[test]
    fn absent_context_is_byte_identical_to_plain_encode() {
        let msg = crate::message::Message::RequestBid {
            round: crate::message::RoundId(3),
        };
        let plain = encode(&msg).unwrap();
        let traced = encode_with_context(&msg, None).unwrap();
        assert_eq!(plain, traced);
        let (back, ctx): (crate::message::Message, _) = decode_with_context(&plain).unwrap();
        assert_eq!(back, msg);
        assert_eq!(ctx, None, "trailer-free frames decode without a context");
    }

    #[test]
    fn trailered_bytes_are_rejected_by_the_plain_decoder() {
        // A context-unaware decoder sees the trailer as unexplained input:
        // backward compatibility is one-directional by design (old frames
        // always decode; new frames need a context-aware receiver).
        let msg = crate::message::Message::RequestBid {
            round: crate::message::RoundId(3),
        };
        let ctx = TraceContext::root(1, 0, false);
        let bytes = encode_with_context(&msg, Some(&ctx)).unwrap();
        assert!(matches!(
            decode::<crate::message::Message>(&bytes),
            Err(CodecError::TrailingBytes(n)) if n == TRAILER_LEN
        ));
    }

    #[test]
    fn corrupted_trailer_is_rejected_not_misread() {
        let msg = crate::message::Message::RequestBid {
            round: crate::message::RoundId(3),
        };
        let ctx = TraceContext::root(5, 2, true);
        let good = encode_with_context(&msg, Some(&ctx)).unwrap();
        let body_len = good.len() - TRAILER_LEN;
        // Damage the magic, the version byte and the flags byte in turn.
        for offset in [body_len, body_len + 2, good.len() - 1] {
            let mut bad = good.to_vec();
            bad[offset] ^= 0xFF;
            assert!(
                matches!(
                    decode_with_context::<crate::message::Message>(&bad),
                    Err(CodecError::TrailingBytes(n)) if n == TRAILER_LEN
                ),
                "corruption at {offset} was not rejected"
            );
        }
        // Truncating the trailer leaves unexplained bytes, not a context.
        let truncated = &good[..good.len() - 1];
        assert!(matches!(
            decode_with_context::<crate::message::Message>(truncated),
            Err(CodecError::TrailingBytes(n)) if n == TRAILER_LEN - 1
        ));
    }

    fn arb_message() -> impl Strategy<Value = crate::message::Message> {
        use crate::message::{Message, RoundId};
        let round = any::<u64>().prop_map(RoundId);
        prop_oneof![
            round
                .clone()
                .prop_map(|round| Message::RequestBid { round }),
            (round.clone(), any::<u32>(), -1e12f64..1e12).prop_map(|(round, machine, value)| {
                Message::Bid {
                    round,
                    machine,
                    value,
                }
            }),
            (round.clone(), -1e12f64..1e12)
                .prop_map(|(round, rate)| Message::Assign { round, rate }),
            (round.clone(), any::<u32>())
                .prop_map(|(round, machine)| Message::ExecutionDone { round, machine }),
            (round.clone(), -1e12f64..1e12)
                .prop_map(|(round, amount)| Message::Payment { round, amount }),
            (round.clone(), any::<u32>(), -1e12f64..1e12, -1e-6f64..1e-6).prop_map(
                |(round, shard, sum_hi, sum_lo)| Message::ShardSum {
                    round,
                    shard,
                    sum_hi,
                    sum_lo,
                },
            ),
            (
                round,
                any::<u32>(),
                proptest::collection::vec(1e-12f64..1e12, 0..32)
            )
                .prop_map(|(round, shard, estimates)| Message::ShardEstimates {
                    round,
                    shard,
                    estimates,
                }),
        ]
    }

    proptest! {
        /// Every protocol message, with arbitrary field values, survives the
        /// wire format bit-exactly.
        #[test]
        fn prop_roundtrip_protocol_messages(msg in arb_message()) {
            roundtrip(&msg);
        }

        #[test]
        fn prop_roundtrip_plain(
            a in any::<u8>(), b in any::<i64>(), c in any::<f64>(),
            d in ".*", e in any::<bool>(),
        ) {
            prop_assume!(!c.is_nan());
            roundtrip(&Plain { a, b, c, d, e });
        }

        #[test]
        fn prop_roundtrip_vectors(v in proptest::collection::vec(any::<f64>(), 0..64)) {
            prop_assume!(v.iter().all(|x| !x.is_nan()));
            roundtrip(&v);
        }

        #[test]
        fn prop_roundtrip_nested_options(v in proptest::collection::vec(
            proptest::option::of(any::<i32>()), 0..32))
        {
            roundtrip(&v);
        }

        #[test]
        fn prop_random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Decoding arbitrary garbage must fail gracefully, never panic.
            let _ = decode::<Plain>(&data);
            let _ = decode::<Various>(&data);
            let _ = decode::<Vec<String>>(&data);
        }
    }
}
