//! Deserializer: compact binary → Rust values.

use super::error::CodecError;
use serde::de::{self, Deserialize, DeserializeSeed, IntoDeserializer, Visitor};

/// Decodes a value from its wire representation, requiring the input to be
/// consumed exactly.
///
/// # Errors
/// Returns [`CodecError`] for truncated, corrupt or trailing input.
pub fn decode<'a, T: Deserialize<'a>>(bytes: &'a [u8]) -> Result<T, CodecError> {
    let mut decoder = Decoder::new(bytes);
    let value = T::deserialize(&mut decoder)?;
    if decoder.remaining() != 0 {
        return Err(CodecError::TrailingBytes(decoder.remaining()));
    }
    Ok(value)
}

/// Streaming decoder over a borrowed byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    input: &'a [u8],
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `input`.
    #[must_use]
    pub fn new(input: &'a [u8]) -> Self {
        Self { input }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.input.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.input.len() < n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                available: self.input.len(),
            });
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        let slice = self.take(N)?;
        let mut arr = [0u8; N];
        arr.copy_from_slice(slice);
        Ok(arr)
    }

    fn read_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take_array::<1>()?[0])
    }
    fn read_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }
    fn read_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    fn read_len(&mut self) -> Result<usize, CodecError> {
        let len = self.read_u64()?;
        // Corruption guard: a sequence of `len` elements needs at least one
        // byte each (zero-sized elements occur only in fixed positions), so
        // any length beyond the remaining input is corrupt. Rejecting here —
        // before any collection is reserved — bounds allocation by the input
        // size. The guard used to fire only past 2^32, letting a corrupt
        // 4-byte-range length drive a multi-GB `Vec::with_capacity`.
        if len > self.input.len() as u64 {
            return Err(CodecError::LengthOverflow(len));
        }
        usize::try_from(len).map_err(|_| CodecError::LengthOverflow(len))
    }
}

macro_rules! de_fixed {
    ($fn_name:ident, $visit:ident, $ty:ty) => {
        fn $fn_name<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
            let arr = self.take_array::<{ std::mem::size_of::<$ty>() }>()?;
            visitor.$visit(<$ty>::from_le_bytes(arr))
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Decoder<'de> {
    type Error = CodecError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::NotSelfDescribing)
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.read_u8()? {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            t => Err(CodecError::InvalidTag(t)),
        }
    }

    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_i8(self.read_u8()? as i8)
    }
    de_fixed!(deserialize_i16, visit_i16, i16);
    de_fixed!(deserialize_i32, visit_i32, i32);
    de_fixed!(deserialize_i64, visit_i64, i64);
    de_fixed!(deserialize_i128, visit_i128, i128);

    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_u8(self.read_u8()?)
    }
    de_fixed!(deserialize_u16, visit_u16, u16);
    de_fixed!(deserialize_u32, visit_u32, u32);
    de_fixed!(deserialize_u64, visit_u64, u64);
    de_fixed!(deserialize_u128, visit_u128, u128);
    de_fixed!(deserialize_f32, visit_f32, f32);
    de_fixed!(deserialize_f64, visit_f64, f64);

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let scalar = self.read_u32()?;
        let c = char::from_u32(scalar).ok_or(CodecError::InvalidChar(scalar))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.read_len()?;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes).map_err(|_| CodecError::InvalidUtf8)?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.read_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.read_u8()? {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            t => Err(CodecError::InvalidTag(t)),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.read_len()?;
        visitor.visit_seq(CountedSeq {
            decoder: self,
            remaining: len,
        })
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(CountedSeq {
            decoder: self,
            remaining: len,
        })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.read_len()?;
        visitor.visit_map(CountedMap {
            decoder: self,
            remaining: len,
        })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_enum(EnumAccess { decoder: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::NotSelfDescribing)
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::NotSelfDescribing)
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct CountedSeq<'a, 'de> {
    decoder: &'a mut Decoder<'de>,
    remaining: usize,
}

impl<'de> de::SeqAccess<'de> for CountedSeq<'_, 'de> {
    type Error = CodecError;
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.decoder).map(Some)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct CountedMap<'a, 'de> {
    decoder: &'a mut Decoder<'de>,
    remaining: usize,
}

impl<'de> de::MapAccess<'de> for CountedMap<'_, 'de> {
    type Error = CodecError;
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.decoder).map(Some)
    }
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, CodecError> {
        seed.deserialize(&mut *self.decoder)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'a, 'de> {
    decoder: &'a mut Decoder<'de>,
}

impl<'a, 'de> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
    type Error = CodecError;
    type Variant = VariantAccess<'a, 'de>;
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), CodecError> {
        let index = self.decoder.read_u32()?;
        let value = seed.deserialize(index.into_deserializer())?;
        Ok((
            value,
            VariantAccess {
                decoder: self.decoder,
            },
        ))
    }
}

struct VariantAccess<'a, 'de> {
    decoder: &'a mut Decoder<'de>,
}

impl<'de> de::VariantAccess<'de> for VariantAccess<'_, 'de> {
    type Error = CodecError;
    fn unit_variant(self) -> Result<(), CodecError> {
        Ok(())
    }
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, CodecError> {
        seed.deserialize(self.decoder)
    }
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.decoder, len, visitor)
    }
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.decoder, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_decode() {
        assert_eq!(decode::<u32>(&[4, 3, 2, 1]).unwrap(), 0x0102_0304);
        assert_eq!(decode::<bool>(&[1]).unwrap(), true);
        assert_eq!(decode::<Option<u8>>(&[0]).unwrap(), None);
    }

    #[test]
    fn eof_reports_need() {
        let err = decode::<u32>(&[1, 2]).unwrap_err();
        assert_eq!(
            err,
            CodecError::UnexpectedEof {
                needed: 4,
                available: 2
            }
        );
    }

    #[test]
    fn deserialize_any_is_rejected() {
        // serde_json::Value-like self-describing decoding is not supported;
        // simulate via a unit type that calls deserialize_any.
        struct Any;
        impl<'de> Deserialize<'de> for Any {
            fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = Any;
                    fn expecting(&self, f: &mut std::fmt::Formatter) -> std::fmt::Result {
                        f.write_str("anything")
                    }
                }
                d.deserialize_any(V)
            }
        }
        assert!(matches!(
            decode::<Any>(&[]),
            Err(CodecError::NotSelfDescribing)
        ));
    }

    #[test]
    fn huge_length_prefix_is_caught() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode::<Vec<u8>>(&bytes).is_err());
    }

    #[test]
    fn corrupt_sub_4gib_length_prefix_is_caught() {
        // Regression for the `codec` fuzz-oracle class: the guard used to
        // fire only for lengths past 2^32, so a corrupt prefix like 3e9 (or
        // even 1000 against a 2-byte tail) passed the length check and was
        // handed to the seq visitor as a trusted size hint. Any length
        // beyond the remaining bytes is corrupt and must be rejected before
        // a visitor can act on it.
        for corrupt_len in [10u64, 1_000, 3_000_000_000] {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&corrupt_len.to_le_bytes());
            bytes.extend_from_slice(&[0u8; 2]);
            assert_eq!(
                decode::<Vec<u8>>(&bytes).unwrap_err(),
                CodecError::LengthOverflow(corrupt_len),
                "len {corrupt_len}"
            );
        }
    }

    #[test]
    fn exact_length_prefix_still_decodes() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&3u64.to_le_bytes());
        bytes.extend_from_slice(&[7, 8, 9]);
        assert_eq!(decode::<Vec<u8>>(&bytes).unwrap(), vec![7, 8, 9]);
    }
}
