//! Chaos runtime: seeded probabilistic fault injection with retransmission.
//!
//! The declarative fault path ([`crate::faults`]) loses *named* messages and
//! excludes on first loss. This module stresses the mechanism the way a real
//! deployment would be stressed: every frame independently risks being
//! dropped, duplicated, corrupted, or delay-jittered, driven by a seeded
//! [`lb_stats::Xoshiro256StarStar`] stream so any failure reproduces from its
//! seed alone. On top of the hostile link the coordinator runs a
//! *retransmission protocol*: missing bids are re-requested with bounded
//! retries and exponential backoff in simulated time, and only a machine
//! that stays silent through every retry is excluded (the `L_{-i}`
//! counterfactual of the paper). The coordinator itself is run in graceful
//! mode, so duplicated, stale, or misrouted frames are absorbed and counted
//! as [`Anomaly`] events rather than panicking.
//!
//! The incentive properties are seed-independent: whatever the fault
//! schedule, allocation over the respondents sums to `R`, settled payments
//! satisfy Def. 3.3 (`C_i + B_i`, re-checkable by [`crate::audit`]), and a
//! truthful machine that participates never realises negative utility — the
//! soak tests at the bottom of this file assert exactly that over a hundred
//! seeds.

use crate::coordinator::{Coordinator, CoordinatorPhase, ProtocolError};
use crate::faults::FaultPlan;
use crate::journal::{CrashingJournal, Journal};
use crate::message::{Message, RoundId};
use crate::network::{Endpoint, FrameFate, MessageStats, NetPoll, SimNetwork};
use crate::node::{NodeAgent, NodeSpec};
use crate::recovery::{recover_round, RoundContext};
use crate::runtime::{ProtocolConfig, ProtocolOutcome};
use crate::trace::{Anomaly, AnomalyStats, RoundTrace, TraceEntry};
use lb_mechanism::{MechanismError, VerifiedMechanism};
use lb_sim::events::EventQueue;
use lb_sim::time::SimTime;
use lb_stats::{Rng, Xoshiro256StarStar};
use lb_telemetry::{noop_collector, Collector, Field, SpanId, Subsystem, TraceContext};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

fn codec_err(e: crate::codec::CodecError) -> MechanismError {
    MechanismError::Core(lb_core::CoreError::Infeasible {
        reason: e.to_string(),
    })
}

/// Configuration of the chaos injector and the retransmission protocol.
///
/// Probabilities apply independently per frame; `plan` layers the
/// declarative faults of [`FaultPlan`] on top (a frame is lost if either
/// source says so), which makes the old path a special case of this one.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed of the chaos RNG. Round `r` uses the non-overlapping stream
    /// `r` of this seed, so multi-round sessions are reproducible and
    /// per-round faults are independent.
    pub seed: u64,
    /// Probability that a frame is lost in transit.
    pub drop_prob: f64,
    /// Probability that a frame is delivered twice.
    pub duplicate_prob: f64,
    /// Probability that a frame arrives corrupted (always detected — the
    /// link model is CRC-checked, so corruption costs a frame but never
    /// smuggles bad data into the mechanism).
    pub corrupt_prob: f64,
    /// Maximum extra per-frame delay, uniform in `[0, jitter]` seconds.
    pub jitter: f64,
    /// Declarative faults applied in addition to the probabilistic ones.
    pub plan: FaultPlan,
    /// How many times a missing bid is re-requested before exclusion.
    pub bid_retries: u32,
    /// Sim-time before the first bid-retry timer fires. Must comfortably
    /// exceed one round trip or the coordinator re-requests bids that are
    /// merely in flight.
    pub retry_timeout: f64,
    /// Exponential backoff factor between successive retries (≥ 1).
    pub backoff: f64,
    /// Sim-time after which execution settles without the missing acks.
    pub exec_timeout: f64,
}

impl ChaosConfig {
    /// A fault-free configuration: all probabilities zero, retries armed.
    /// With this configuration the chaos runtime reproduces
    /// [`crate::runtime::run_protocol_round`] bit for bit.
    #[must_use]
    pub fn reliable(seed: u64) -> Self {
        Self {
            seed,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            corrupt_prob: 0.0,
            jitter: 0.0,
            plan: FaultPlan::none(),
            bid_retries: 3,
            retry_timeout: 0.05,
            backoff: 2.0,
            exec_timeout: 1.0,
        }
    }

    /// A hostile configuration: 15% loss, 10% duplication, 10% corruption
    /// and 5 ms jitter per frame — the soak-test default.
    #[must_use]
    pub fn heavy(seed: u64) -> Self {
        Self {
            drop_prob: 0.15,
            duplicate_prob: 0.10,
            corrupt_prob: 0.10,
            jitter: 0.005,
            ..Self::reliable(seed)
        }
    }

    fn validate(&self) {
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("duplicate_prob", self.duplicate_prob),
            ("corrupt_prob", self.corrupt_prob),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "ChaosConfig: {name} must be in [0, 1], got {p}"
            );
        }
        assert!(
            self.jitter.is_finite() && self.jitter >= 0.0,
            "ChaosConfig: invalid jitter"
        );
        assert!(
            self.retry_timeout.is_finite() && self.retry_timeout > 0.0,
            "ChaosConfig: retry_timeout must be positive"
        );
        assert!(
            self.backoff.is_finite() && self.backoff >= 1.0,
            "ChaosConfig: backoff must be >= 1"
        );
        assert!(
            self.exec_timeout.is_finite() && self.exec_timeout > 0.0,
            "ChaosConfig: exec_timeout must be positive"
        );
    }
}

/// Per-round fate oracle: one seeded RNG stream deciding every frame's fate.
struct ChaosInjector {
    rng: Xoshiro256StarStar,
    drop_prob: f64,
    duplicate_prob: f64,
    corrupt_prob: f64,
    jitter: f64,
    plan: FaultPlan,
    /// Shared with the owning [`ChaosRuntime`] so `lose_bid_attempts`
    /// counts transmissions across the whole session ("the first `k`
    /// ever"), letting a transient fault heal in a later round.
    bid_attempts: Rc<RefCell<Vec<u32>>>,
}

impl ChaosInjector {
    fn new(config: &ChaosConfig, round: RoundId, bid_attempts: Rc<RefCell<Vec<u32>>>) -> Self {
        Self {
            // Stream `round` of the base seed: reproducible, and provably
            // non-overlapping with every other round's stream.
            rng: Xoshiro256StarStar::seed_from_u64(config.seed).stream(round.0),
            drop_prob: config.drop_prob,
            duplicate_prob: config.duplicate_prob,
            corrupt_prob: config.corrupt_prob,
            jitter: config.jitter,
            plan: config.plan.clone(),
            bid_attempts,
        }
    }

    fn fate(&mut self, from: Endpoint, to: Endpoint, message: &Message) -> FrameFate {
        // Exactly five draws per frame regardless of the outcome, so one
        // frame's fate never shifts the random stream seen by the next.
        let drop = self.rng.next_bool(self.drop_prob);
        let duplicate = self.rng.next_bool(self.duplicate_prob);
        let corrupt = self.rng.next_bool(self.corrupt_prob);
        let extra_delay = self.rng.next_range(0.0, self.jitter);
        let duplicate_extra_delay = self.rng.next_range(0.0, self.jitter);
        let declared =
            self.plan
                .drops_counted(from, to, message, &mut self.bid_attempts.borrow_mut());
        FrameFate {
            drop: drop || declared,
            duplicate,
            corrupt,
            extra_delay,
            duplicate_extra_delay,
        }
    }
}

/// Link-level fault counters for one round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosNetStats {
    /// Frames lost in transit (probabilistic or declarative).
    pub dropped: u64,
    /// Duplicate copies injected.
    pub duplicated: u64,
    /// Frames delivered with detected corruption.
    pub corrupted: u64,
}

/// Everything one chaotic round produced.
#[derive(Debug, Clone)]
pub struct ChaosRoundReport {
    /// The protocol outcome (full width; excluded machines at rate 0,
    /// payment 0).
    pub outcome: ProtocolOutcome,
    /// Which machines ended the round excluded (quarantined up front or
    /// silent through every retry).
    pub excluded: Vec<bool>,
    /// Number of bid re-requests sent (one per missing machine per retry).
    pub retries: u64,
    /// Anomalies absorbed by the coordinator and the runtime combined.
    pub anomalies: AnomalyStats,
    /// The coordinator's-eye trace of the round: accepted inbound frames at
    /// delivery time, outbound frames at send time.
    pub trace: RoundTrace,
    /// Link-level fault counters for the round.
    pub faults: ChaosNetStats,
}

/// What it took to push one round through its crash schedule
/// ([`ChaosRuntime::run_round_durable`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRecoveryStats {
    /// Injected crashes consumed while completing the round.
    pub crashes: u64,
    /// Journal records replayed across all recoveries of the round.
    pub records_replayed: u64,
    /// Torn-tail bytes truncated across all recoveries of the round.
    pub truncated_bytes: u64,
}

/// Timers the chaos runtime interleaves with frame arrivals.
#[derive(Debug, Clone, Copy)]
enum ChaosTimer {
    /// Re-request missing bids (or give up and exclude) for `round`.
    BidTimeout { round: RoundId, attempt: u32 },
    /// Settle `round` from measurements even though acks are missing.
    ExecTimeout { round: RoundId },
}

/// A persistent chaotic transport plus the retransmission driver.
///
/// The network (and its clock) lives across rounds, so late frames from a
/// previous round can straggle into the next one — where the graceful
/// coordinator absorbs them as [`Anomaly::StaleRound`]. Construct once,
/// then call [`ChaosRuntime::run_round`] per round; multi-round sessions
/// with health tracking live in [`crate::session::run_chaos_session`].
pub struct ChaosRuntime {
    network: SimNetwork,
    timers: EventQueue<ChaosTimer>,
    chaos: ChaosConfig,
    protocol: ProtocolConfig,
    n: usize,
    /// Session-cumulative bid-transmission counts for the declarative
    /// `lose_bid_attempts` faults (shared with the per-round injector).
    bid_attempts: Rc<RefCell<Vec<u32>>>,
    collector: Arc<dyn Collector>,
}

impl std::fmt::Debug for ChaosRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosRuntime")
            .field("n", &self.n)
            .field("chaos", &self.chaos)
            .field("pending", &self.network.pending())
            .finish()
    }
}

impl ChaosRuntime {
    /// Creates a chaos runtime for `n` machines.
    ///
    /// # Panics
    /// Panics if `n == 0` or the chaos configuration is invalid.
    #[must_use]
    pub fn new(n: usize, protocol: ProtocolConfig, chaos: ChaosConfig) -> Self {
        assert!(n > 0, "ChaosRuntime: need at least one node");
        chaos.validate();
        Self {
            network: SimNetwork::with_constant_latency(protocol.link_latency),
            timers: EventQueue::new(),
            chaos,
            protocol,
            n,
            bid_attempts: Rc::new(RefCell::new(vec![0; n])),
            collector: noop_collector(),
        }
    }

    /// The current unified simulated time of the runtime (network clock and
    /// timer clock in lockstep) — the timestamp source for session-level
    /// telemetry.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.network.now().max(self.timers.now())
    }

    /// Attaches a telemetry collector. It is forwarded to the underlying
    /// network (frame-level `net.*` events) and to every round's coordinator
    /// (`round`/`phase.*` spans, anomaly and exclusion instants); the runtime
    /// itself adds `chaos.retransmit` instants, `chaos.backoff` delay samples
    /// and link-level anomaly instants. All events carry simulated time.
    pub fn set_collector(&mut self, collector: Arc<dyn Collector>) {
        self.network.set_collector(Arc::clone(&collector));
        self.collector = collector;
    }

    /// Runs one round over the chaotic network.
    ///
    /// `active[i] == false` quarantines machine `i` for this round: it is
    /// excluded up front and receives no bid request. Each round derives its
    /// simulation seed as `base seed + round` (matching
    /// [`crate::session::run_session`]) and its chaos stream as stream
    /// `round` of the chaos seed.
    ///
    /// # Errors
    /// Propagates mechanism errors — notably
    /// [`MechanismError::NeedTwoAgents`] when fewer than two machines'
    /// bids survive every retry.
    ///
    /// # Panics
    /// Panics if `specs` or `active` have the wrong length.
    pub fn run_round<M: VerifiedMechanism>(
        &mut self,
        mechanism: &M,
        specs: &[NodeSpec],
        round: RoundId,
        active: &[bool],
    ) -> Result<ChaosRoundReport, MechanismError> {
        let n = self.n;
        assert_eq!(specs.len(), n, "run_round: specs length mismatch");
        assert_eq!(active.len(), n, "run_round: active length mismatch");

        let mut sim = self.protocol.simulation;
        sim.seed = sim.seed.wrapping_add(round.0);
        let mut coordinator = Coordinator::new(mechanism, n, self.protocol.total_rate, round, sim)
            .with_collector(Arc::clone(&self.collector));
        if self.collector.enabled() {
            // One deterministic trace per round, derived from the chaos seed
            // so a replay of the same seed reproduces identical trace ids.
            // Head-based sampling happens one level up (the session swaps in
            // a noop collector for unsampled rounds), so an instrumented
            // round here is always sampled.
            coordinator =
                coordinator.with_trace(TraceContext::root(self.chaos.seed, round.0, true));
        }
        coordinator.set_now(self.network.now().max(self.timers.now()).seconds());
        let result = (|| {
            for (i, &is_active) in active.iter().enumerate() {
                if !is_active {
                    coordinator.exclude(i)?;
                }
            }
            self.drive_round(
                mechanism,
                specs,
                round,
                &mut coordinator,
                active,
                None,
                false,
            )
        })();
        if result.is_err() {
            // A failed round (e.g. NeedTwoAgents) abandons the coordinator
            // mid-phase; close its spans so the recording replays cleanly.
            coordinator.end_telemetry();
        }
        result.map_err(ProtocolError::into_mechanism)
    }

    /// Runs one round against a crash-injecting journal, recovering and
    /// resuming after every injected crash until the round completes.
    ///
    /// Each continuation replays the journal's valid prefix into a fresh
    /// coordinator ([`recover_round`]), re-derives the in-flight fan-out
    /// from the reconstructed state ([`Coordinator::resume`]) and rejoins
    /// the normal event loop. The network and timer queues live in the
    /// runtime and deliberately survive the crash: frames sent before the
    /// crash still arrive afterwards, and the recovered coordinator must
    /// absorb the resulting duplicates as anomalies. The returned report's
    /// message/fault counters cover the final continuation only (earlier
    /// continuations died with the crashed process); allocations, payments
    /// and exclusions are reconstructed state and therefore bit-identical
    /// to an uninterrupted run.
    ///
    /// # Errors
    /// Propagates non-crash protocol errors (crashes themselves are
    /// consumed by the retry loop).
    ///
    /// # Panics
    /// Panics if `specs` or `active` have the wrong length.
    pub fn run_round_durable<M: VerifiedMechanism>(
        &mut self,
        mechanism: &M,
        specs: &[NodeSpec],
        round: RoundId,
        active: &[bool],
        journal: &Rc<RefCell<CrashingJournal>>,
    ) -> Result<(ChaosRoundReport, RoundRecoveryStats), ProtocolError> {
        let n = self.n;
        assert_eq!(specs.len(), n, "run_round_durable: specs length mismatch");
        assert_eq!(active.len(), n, "run_round_durable: active length mismatch");

        let mut sim = self.protocol.simulation;
        sim.seed = sim.seed.wrapping_add(round.0);
        let ctx = RoundContext {
            n,
            total_rate: self.protocol.total_rate,
            round,
            sim,
        };
        let actual_exec: Vec<f64> = specs.iter().map(|s| s.exec_value).collect();
        let mut stats = RoundRecoveryStats::default();

        loop {
            let now = self.network.now().max(self.timers.now()).seconds();
            let (mut coordinator, recovery) = recover_round(
                mechanism,
                Rc::clone(journal) as Rc<RefCell<dyn Journal>>,
                &ctx,
                Arc::clone(&self.collector),
                now,
            )?;
            stats.records_replayed += recovery.records_replayed;
            if self.collector.enabled() {
                coordinator =
                    coordinator.with_trace(TraceContext::root(self.chaos.seed, round.0, true));
            }
            coordinator.set_now(now);
            let attempt = (|coordinator: &mut Coordinator<'_>| {
                let opening = if recovery.records_replayed > 0 {
                    Some(coordinator.resume(&actual_exec)?)
                } else {
                    None
                };
                if coordinator.phase() == CoordinatorPhase::CollectingBids {
                    // First attempt, or a crash before allocation: the
                    // quarantine decisions are (re-)applied idempotently.
                    for (i, &is_active) in active.iter().enumerate() {
                        if !is_active {
                            coordinator.exclude(i)?;
                        }
                    }
                }
                self.drive_round(mechanism, specs, round, coordinator, active, opening, true)
            })(&mut coordinator);
            if attempt.is_err() {
                coordinator.end_telemetry();
            }
            match attempt {
                Ok(report) => return Ok((report, stats)),
                Err(e) if e.is_crash() => {
                    stats.crashes += 1;
                    let replay = journal.borrow_mut().revive()?;
                    stats.truncated_bytes += replay.truncated_tail as u64;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The event loop of one round, split out of [`ChaosRuntime::run_round`]
    /// so every `?` exit funnels through one place that can close the
    /// coordinator's telemetry spans.
    ///
    /// `opening` overrides the initial fan-out: `None` opens a fresh round
    /// (bid requests to the active machines), `Some(msgs)` re-sends the
    /// fan-out a recovered coordinator derived from its replayed state
    /// ([`Coordinator::resume`]). With `seal` the round is sealed in the
    /// journal once settled and drained.
    #[allow(clippy::too_many_arguments)]
    fn drive_round<M: VerifiedMechanism>(
        &mut self,
        mechanism: &M,
        specs: &[NodeSpec],
        round: RoundId,
        coordinator: &mut Coordinator<'_>,
        active: &[bool],
        opening: Option<Vec<(u32, Message)>>,
        seal: bool,
    ) -> Result<ChaosRoundReport, ProtocolError> {
        let n = self.n;
        let mut nodes: Vec<NodeAgent> = specs
            .iter()
            .enumerate()
            .map(|(i, &spec)| NodeAgent::new(u32::try_from(i).expect("fits u32"), spec))
            .collect();
        let actual_exec: Vec<f64> = specs.iter().map(|s| s.exec_value).collect();

        // Fresh per-round injector: fresh RNG stream, but session-cumulative
        // bid-attempt counts.
        let mut injector = ChaosInjector::new(&self.chaos, round, Rc::clone(&self.bid_attempts));
        self.network
            .set_fate_fn(move |from, to, m| injector.fate(from, to, m));

        // Counter snapshots so the report carries per-round deltas.
        let stats0 = self.network.stats();
        let dropped0 = self.network.dropped();
        let duplicated0 = self.network.duplicated();
        let corrupted0 = self.network.corrupted();

        let mut trace = RoundTrace::default();
        let mut runtime_anomalies = AnomalyStats::default();
        let mut retries: u64 = 0;
        let mut exec_timer_armed = false;
        let mut now: SimTime = self.network.now().max(self.timers.now());

        // Open: bid requests to the active machines only (fresh round), or
        // the fan-out a recovered coordinator re-derived from its journal.
        // Open the round's telemetry spans first so these frames already
        // carry the current phase span in their trace context.
        coordinator.begin_round_telemetry();
        match opening {
            None => {
                let wire = coordinator.wire_context();
                for (i, &is_active) in active.iter().enumerate() {
                    if !is_active {
                        continue;
                    }
                    let msg = Message::RequestBid { round };
                    let to = u32::try_from(i).expect("fits u32");
                    trace.entries.push(TraceEntry {
                        at: now.seconds(),
                        from: Endpoint::Coordinator,
                        to: Endpoint::Node(to),
                        message: msg.clone(),
                    });
                    self.network
                        .send_traced(
                            Endpoint::Coordinator,
                            Endpoint::Node(to),
                            &msg,
                            wire.as_ref(),
                        )
                        .map_err(codec_err)?;
                }
            }
            Some(outgoing) => {
                let wire = coordinator.wire_context();
                self.send_from_coordinator(outgoing, now, &mut trace, wire.as_ref())?;
            }
        }
        if coordinator.phase() == CoordinatorPhase::CollectingBids {
            self.timers.schedule(
                now + self.chaos.retry_timeout,
                ChaosTimer::BidTimeout { round, attempt: 0 },
            );
        }

        loop {
            if coordinator.phase() == CoordinatorPhase::Done && self.network.pending() == 0 {
                break;
            }
            let next_frame = self.network.next_arrival_time();
            let next_timer = self.timers.peek_time();
            let take_frame = match (next_frame, next_timer) {
                (Some(f), Some(t)) => f <= t,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => {
                    // Defensive: no pending events but the round is stuck.
                    // Fall back to the declarative runtime's drain-timeout
                    // rules so the round always terminates.
                    coordinator.set_now(now.seconds());
                    match coordinator.phase() {
                        CoordinatorPhase::Done => break,
                        CoordinatorPhase::CollectingBids => {
                            let outgoing = coordinator.close_bidding(&actual_exec)?;
                            let wire = coordinator.wire_context();
                            self.send_from_coordinator(outgoing, now, &mut trace, wire.as_ref())?;
                        }
                        CoordinatorPhase::Executing => {
                            let outgoing = coordinator.close_execution()?;
                            let wire = coordinator.wire_context();
                            self.send_from_coordinator(outgoing, now, &mut trace, wire.as_ref())?;
                        }
                        CoordinatorPhase::Settling => unreachable!("settling is instantaneous"),
                    }
                    if !exec_timer_armed && coordinator.phase() == CoordinatorPhase::Executing {
                        exec_timer_armed = true;
                        self.timers.schedule(
                            now + self.chaos.exec_timeout,
                            ChaosTimer::ExecTimeout { round },
                        );
                    }
                    continue;
                }
            };

            if take_frame {
                match self
                    .network
                    .poll()
                    .map_err(codec_err)?
                    .expect("arrival pending")
                {
                    NetPoll::Corrupt { at, .. } => {
                        now = now.max(at);
                        self.note_link_anomaly(now, &mut runtime_anomalies, Anomaly::CorruptFrame);
                    }
                    NetPoll::Frame(delivery) => {
                        now = now.max(delivery.at);
                        match delivery.to {
                            Endpoint::Node(i) => {
                                let idx = i as usize;
                                if idx >= n || delivery.message.machine().is_some() {
                                    // Addressed nowhere, or a node-originated
                                    // message bounced back to a node.
                                    self.note_link_anomaly(
                                        now,
                                        &mut runtime_anomalies,
                                        Anomaly::Misrouted,
                                    );
                                } else if delivery.message.round() != round {
                                    // Straggler from a previous round.
                                    self.note_link_anomaly(
                                        now,
                                        &mut runtime_anomalies,
                                        Anomaly::StaleRound,
                                    );
                                } else {
                                    // Continue the trace the frame carried.
                                    // Chaos can deliver a context whose span
                                    // already closed (a duplicate straggling
                                    // past a phase transition); those degrade
                                    // to instants so the recording still
                                    // replays cleanly.
                                    let ctx = delivery
                                        .ctx
                                        .filter(|c| c.sampled && self.collector.enabled());
                                    let span = ctx.map_or(SpanId::NULL, |c| {
                                        let at = now.seconds();
                                        let fields = vec![Field::u64("machine", u64::from(i))];
                                        let name = match delivery.message {
                                            Message::RequestBid { .. } => "node.bid",
                                            Message::Assign { .. } => "node.execute",
                                            Message::Payment { .. } => {
                                                self.collector.instant(
                                                    at,
                                                    "node.payment",
                                                    Subsystem::Node,
                                                    fields,
                                                );
                                                return SpanId::NULL;
                                            }
                                            _ => return SpanId::NULL,
                                        };
                                        let parent = SpanId(c.span_id);
                                        if parent.is_null() || parent != coordinator.phase_span() {
                                            self.collector.instant(
                                                at,
                                                name,
                                                Subsystem::Node,
                                                fields,
                                            );
                                            return SpanId::NULL;
                                        }
                                        self.collector.span_start_in(
                                            at,
                                            name,
                                            Subsystem::Node,
                                            parent,
                                            fields,
                                        )
                                    });
                                    let reply = nodes[idx].handle(&delivery.message);
                                    if !span.is_null() {
                                        self.collector.span_end(now.seconds(), span);
                                    }
                                    if let Some(reply) = reply {
                                        let child = ctx
                                            .filter(|_| !span.is_null())
                                            .map(|c| c.with_span(span.0));
                                        self.network
                                            .send_traced(
                                                Endpoint::Node(i),
                                                Endpoint::Coordinator,
                                                &reply,
                                                child.as_ref(),
                                            )
                                            .map_err(codec_err)?;
                                    }
                                }
                            }
                            Endpoint::Coordinator => {
                                coordinator.set_now(now.seconds());
                                let before = coordinator.anomalies().total();
                                let outgoing =
                                    coordinator.handle(&delivery.message, &actual_exec)?;
                                if coordinator.anomalies().total() == before {
                                    // Accepted: it enters the audit trail.
                                    trace.entries.push(TraceEntry {
                                        at: delivery.at.seconds(),
                                        from: delivery.from,
                                        to: delivery.to,
                                        message: delivery.message.clone(),
                                    });
                                }
                                let wire = coordinator.wire_context();
                                self.send_from_coordinator(
                                    outgoing,
                                    now,
                                    &mut trace,
                                    wire.as_ref(),
                                )?;
                            }
                        }
                    }
                }
            } else {
                let (at, timer) = self.timers.pop().expect("timer pending");
                // Keep the two clocks in lockstep: safe because the timer
                // was chosen only when no earlier frame is pending.
                self.network.advance_to(at);
                now = now.max(at);
                coordinator.set_now(now.seconds());
                match timer {
                    ChaosTimer::BidTimeout { round: r, attempt } if r == round => {
                        if coordinator.phase() == CoordinatorPhase::CollectingBids {
                            let missing = coordinator.missing_bids();
                            if missing.is_empty() || attempt >= self.chaos.bid_retries {
                                // Retries exhausted: fall back to exclusion.
                                let outgoing = coordinator.close_bidding(&actual_exec)?;
                                let wire = coordinator.wire_context();
                                self.send_from_coordinator(
                                    outgoing,
                                    now,
                                    &mut trace,
                                    wire.as_ref(),
                                )?;
                            } else {
                                // Retransmissions carry the same
                                // `phase.collect_bids` context as the
                                // originals: they are part of the same trace.
                                let wire = coordinator.wire_context();
                                for &i in &missing {
                                    retries += 1;
                                    if self.collector.enabled() {
                                        self.collector.instant(
                                            now.seconds(),
                                            "chaos.retransmit",
                                            Subsystem::Chaos,
                                            vec![
                                                Field::u64("machine", u64::from(i)),
                                                Field::u64("attempt", u64::from(attempt)),
                                            ],
                                        );
                                    }
                                    let msg = Message::RequestBid { round };
                                    trace.entries.push(TraceEntry {
                                        at: now.seconds(),
                                        from: Endpoint::Coordinator,
                                        to: Endpoint::Node(i),
                                        message: msg.clone(),
                                    });
                                    self.network
                                        .send_traced(
                                            Endpoint::Coordinator,
                                            Endpoint::Node(i),
                                            &msg,
                                            wire.as_ref(),
                                        )
                                        .map_err(codec_err)?;
                                }
                                let delay = self.chaos.retry_timeout
                                    * self
                                        .chaos
                                        .backoff
                                        .powi(i32::try_from(attempt + 1).unwrap_or(i32::MAX));
                                self.collector.histogram(
                                    now.seconds(),
                                    "chaos.backoff",
                                    Subsystem::Chaos,
                                    delay,
                                );
                                self.timers.schedule(
                                    now + delay,
                                    ChaosTimer::BidTimeout {
                                        round,
                                        attempt: attempt + 1,
                                    },
                                );
                            }
                        }
                    }
                    ChaosTimer::ExecTimeout { round: r } if r == round => {
                        if coordinator.phase() == CoordinatorPhase::Executing {
                            let outgoing = coordinator.close_execution()?;
                            let wire = coordinator.wire_context();
                            self.send_from_coordinator(outgoing, now, &mut trace, wire.as_ref())?;
                        }
                    }
                    // Stale timer from an earlier round: ignore.
                    ChaosTimer::BidTimeout { .. } | ChaosTimer::ExecTimeout { .. } => {}
                }
            }

            if !exec_timer_armed && coordinator.phase() == CoordinatorPhase::Executing {
                exec_timer_armed = true;
                self.timers.schedule(
                    now + self.chaos.exec_timeout,
                    ChaosTimer::ExecTimeout { round },
                );
            }
        }

        if seal {
            coordinator.set_now(now.seconds());
            coordinator.seal()?;
        }
        // A round recovered *after* its settle re-opened telemetry spans for
        // this generation (so its re-emitted settlement gauges parent
        // cleanly) but has no settle() call left to close them; close here.
        // No-op when settle already ended the round's telemetry.
        coordinator.end_telemetry();

        let payments = coordinator.payments().expect("settled").to_vec();
        let estimated = coordinator
            .estimated_exec_values()
            .expect("verified")
            .to_vec();
        let allocation = coordinator.allocation().expect("allocated");
        let rates: Vec<f64> = (0..n).map(|i| allocation.rate(i)).collect();
        let utilities: Vec<f64> = (0..n)
            .map(|i| {
                // Node-side accounting where settlement reached the node;
                // the coordinator's ledger elsewhere (identical by
                // construction — see `faults.rs`).
                nodes[i]
                    .utility(mechanism.valuation_model())
                    .unwrap_or(if rates[i] == 0.0 {
                        payments[i]
                    } else {
                        payments[i] + mechanism.valuation(rates[i], specs[i].exec_value)
                    })
            })
            .collect();

        let stats1 = self.network.stats();
        let mut anomalies = runtime_anomalies;
        anomalies.merge(coordinator.anomalies());
        Ok(ChaosRoundReport {
            outcome: ProtocolOutcome {
                rates,
                payments,
                utilities,
                estimated_exec_values: estimated,
                stats: MessageStats {
                    messages: stats1.messages - stats0.messages,
                    bytes: stats1.bytes - stats0.bytes,
                },
            },
            excluded: coordinator.excluded().to_vec(),
            retries,
            anomalies,
            trace,
            faults: ChaosNetStats {
                dropped: self.network.dropped() - dropped0,
                duplicated: self.network.duplicated() - duplicated0,
                corrupted: self.network.corrupted() - corrupted0,
            },
        })
    }

    /// Counts a link-level anomaly and mirrors it as an `anomaly` telemetry
    /// instant on the chaos lane (the coordinator emits its own for the
    /// frames it absorbs itself).
    fn note_link_anomaly(&self, at: SimTime, stats: &mut AnomalyStats, anomaly: Anomaly) {
        stats.record(anomaly);
        if self.collector.enabled() {
            self.collector.instant(
                at.seconds(),
                "anomaly",
                Subsystem::Chaos,
                vec![Field::str("kind", anomaly.name())],
            );
        }
    }

    /// Sends coordinator-outbound messages, recording them in the trace at
    /// the current unified time (the coordinator's send instant). `wire` is
    /// the coordinator's trace context *after* the transition that produced
    /// `outgoing`, so frames carry the span of the phase they belong to.
    fn send_from_coordinator(
        &mut self,
        outgoing: Vec<(u32, Message)>,
        now: SimTime,
        trace: &mut RoundTrace,
        wire: Option<&TraceContext>,
    ) -> Result<(), MechanismError> {
        for (i, msg) in outgoing {
            trace.entries.push(TraceEntry {
                at: now.seconds(),
                from: Endpoint::Coordinator,
                to: Endpoint::Node(i),
                message: msg.clone(),
            });
            self.network
                .send_traced(Endpoint::Coordinator, Endpoint::Node(i), &msg, wire)
                .map_err(codec_err)?;
        }
        Ok(())
    }
}

/// Runs a single round under chaos, constructing a fresh [`ChaosRuntime`].
///
/// With [`ChaosConfig::reliable`] this is bit-identical to
/// [`crate::runtime::run_protocol_round`].
///
/// # Errors
/// Propagates mechanism errors (see [`ChaosRuntime::run_round`]).
///
/// # Panics
/// Panics if `specs` is empty or the chaos configuration is invalid.
pub fn run_chaos_round<M: VerifiedMechanism>(
    mechanism: &M,
    specs: &[NodeSpec],
    config: &ProtocolConfig,
    chaos: &ChaosConfig,
) -> Result<ChaosRoundReport, MechanismError> {
    assert!(!specs.is_empty(), "run_chaos_round: need at least one node");
    let mut runtime = ChaosRuntime::new(specs.len(), *config, chaos.clone());
    let active = vec![true; specs.len()];
    runtime.run_round(mechanism, specs, RoundId(0), &active)
}

/// The message bound the retransmission protocol guarantees per round:
/// `n·(5 + 2·retry budget)` protocol messages plus one possible extra reply
/// per duplicated frame — still `O(n · (1 + retries))`.
#[must_use]
pub fn chaos_message_bound(n: usize, bid_retries: u32, duplicated: u64) -> u64 {
    (n as u64) * (5 + 2 * u64::from(bid_retries)) + 2 * duplicated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{audit_settlement, SettlementRecord};
    use crate::runtime::run_protocol_round;
    use crate::trace::replay_check;
    use lb_mechanism::CompensationBonusMechanism;
    use lb_sim::driver::SimulationConfig;
    use lb_sim::server::ServiceModel;
    use proptest::prelude::*;

    const RATE: f64 = 12.0;

    fn config() -> ProtocolConfig {
        ProtocolConfig {
            total_rate: RATE,
            link_latency: 0.001,
            simulation: SimulationConfig {
                horizon: 50.0,
                seed: 5,
                model: ServiceModel::StationaryDeterministic,
                workload: Default::default(),
                warmup: 0.0,
                estimator: lb_sim::estimator::EstimatorConfig::default(),
            },
        }
    }

    fn specs() -> Vec<NodeSpec> {
        [1.0, 1.5, 2.0, 3.0, 4.5, 6.0]
            .iter()
            .map(|&t| NodeSpec::truthful(t))
            .collect()
    }

    /// Checks every seed-independent invariant on one round report.
    fn assert_round_invariants(report: &ChaosRoundReport, specs: &[NodeSpec], chaos: &ChaosConfig) {
        let n = specs.len();
        let mech = CompensationBonusMechanism::paper();
        let o = &report.outcome;

        // Allocation over the respondents sums to R.
        let total: f64 = o.rates.iter().sum();
        assert!(
            (total - RATE).abs() < 1e-6,
            "allocation sums to {total}, want {RATE}"
        );
        for (i, &ex) in report.excluded.iter().enumerate() {
            if ex {
                assert_eq!(o.rates[i], 0.0, "excluded machine {i} got load");
                assert_eq!(o.payments[i], 0.0, "excluded machine {i} got paid");
            }
        }

        // Payments conserve C_i + B_i (Def. 3.3): the settlement audits
        // clean over the respondent sub-profile.
        let resp: Vec<usize> = (0..n).filter(|&i| !report.excluded[i]).collect();
        let record = SettlementRecord {
            bids: resp.iter().map(|&i| specs[i].bid).collect(),
            estimated_exec_values: resp.iter().map(|&i| o.estimated_exec_values[i]).collect(),
            total_rate: RATE,
            claimed_payments: resp.iter().map(|&i| o.payments[i]).collect(),
        };
        let audit = audit_settlement(&mech, &record, 1e-6).expect("auditable settlement");
        assert!(
            audit.all_verified(),
            "disputed machines: {:?}",
            audit.disputed()
        );

        // Voluntary participation (Thm 3.2): truthful respondents never
        // realise negative utility, chaos or not.
        for &i in &resp {
            if specs[i].is_truthful() {
                assert!(
                    o.utilities[i] >= -1e-6,
                    "machine {i} utility {}",
                    o.utilities[i]
                );
            }
        }

        // Message complexity stays O(n · (1 + retries)).
        let bound = chaos_message_bound(n, chaos.bid_retries, report.faults.duplicated);
        assert!(
            o.stats.messages <= bound,
            "{} messages exceeds bound {bound}",
            o.stats.messages
        );

        // The coordinator's-eye trace replays clean.
        let violations = replay_check(&report.trace, n);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn soak_one_hundred_twenty_seeds_hold_all_invariants() {
        let mech = CompensationBonusMechanism::paper();
        let specs = specs();
        let mut completed = 0u32;
        for seed in 0..120u64 {
            let chaos = ChaosConfig::heavy(seed);
            match run_chaos_round(&mech, &specs, &config(), &chaos) {
                Ok(report) => {
                    assert_round_invariants(&report, &specs, &chaos);
                    completed += 1;
                }
                // Legitimate when chaos silences all but one machine.
                Err(MechanismError::NeedTwoAgents) => {}
                Err(e) => panic!("seed {seed}: unexpected error {e:?}"),
            }
        }
        // Retransmission makes wholesale exclusion vanishingly rare: the
        // overwhelming majority of seeds must settle.
        assert!(completed >= 110, "only {completed}/120 seeds completed");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Randomised soak: arbitrary seeds and fault intensities.
        #[test]
        fn prop_invariants_hold_under_arbitrary_chaos(
            seed in any::<u64>(),
            drop in 0.0f64..0.3,
            dup in 0.0f64..0.3,
            corrupt in 0.0f64..0.3,
            jitter in 0.0f64..0.01,
        ) {
            let mech = CompensationBonusMechanism::paper();
            let specs = specs();
            let chaos = ChaosConfig {
                drop_prob: drop,
                duplicate_prob: dup,
                corrupt_prob: corrupt,
                jitter,
                ..ChaosConfig::reliable(seed)
            };
            match run_chaos_round(&mech, &specs, &config(), &chaos) {
                Ok(report) => assert_round_invariants(&report, &specs, &chaos),
                Err(MechanismError::NeedTwoAgents) => {}
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
    }

    #[test]
    fn dropped_bid_is_retransmitted_and_included() {
        // Machine 0's first bid transmission is lost; the retry gets
        // through, so it is *included* — the whole point of retransmission.
        let mech = CompensationBonusMechanism::paper();
        let specs = specs();
        let chaos = ChaosConfig {
            plan: FaultPlan {
                lose_bid_attempts: vec![(0, 1)],
                ..FaultPlan::none()
            },
            ..ChaosConfig::reliable(42)
        };
        let report = run_chaos_round(&mech, &specs, &config(), &chaos).unwrap();

        assert!(
            !report.excluded[0],
            "machine 0 was excluded despite retransmission"
        );
        assert!(report.outcome.rates[0] > 0.0);
        assert_eq!(report.retries, 1, "exactly one re-request expected");

        // Same participant set, same measurements: payments match the
        // fault-free run exactly.
        let clean = run_chaos_round(&mech, &specs, &config(), &ChaosConfig::reliable(42)).unwrap();
        assert_eq!(report.outcome.payments, clean.outcome.payments);
        assert_round_invariants(&report, &specs, &chaos);
    }

    #[test]
    fn persistent_silence_exhausts_retries_then_excludes() {
        // Every bid transmission from machine 0 is lost: after the retry
        // budget the coordinator falls back to exclusion.
        let mech = CompensationBonusMechanism::paper();
        let specs = specs();
        let chaos = ChaosConfig {
            plan: FaultPlan {
                lose_bids_from: vec![0],
                ..FaultPlan::none()
            },
            ..ChaosConfig::reliable(42)
        };
        let report = run_chaos_round(&mech, &specs, &config(), &chaos).unwrap();

        assert!(report.excluded[0]);
        assert_eq!(report.outcome.rates[0], 0.0);
        assert_eq!(report.outcome.payments[0], 0.0);
        assert_eq!(
            report.retries,
            u64::from(chaos.bid_retries),
            "full retry budget spent"
        );
        assert_round_invariants(&report, &specs, &chaos);
    }

    #[test]
    fn zero_fault_chaos_is_bit_identical_to_reliable_runtime() {
        let mech = CompensationBonusMechanism::paper();
        let specs = specs();
        let reliable = run_protocol_round(&mech, &specs, &config()).unwrap();
        let chaotic = run_chaos_round(&mech, &specs, &config(), &ChaosConfig::reliable(7)).unwrap();
        assert_eq!(reliable.rates, chaotic.outcome.rates);
        assert_eq!(reliable.payments, chaotic.outcome.payments);
        assert_eq!(reliable.utilities, chaotic.outcome.utilities);
        assert_eq!(
            reliable.estimated_exec_values,
            chaotic.outcome.estimated_exec_values
        );
        assert_eq!(reliable.stats, chaotic.outcome.stats);
        assert_eq!(chaotic.retries, 0);
        assert_eq!(chaotic.anomalies.total(), 0);
        assert_eq!(chaotic.faults, ChaosNetStats::default());
    }

    #[test]
    fn same_seed_reproduces_the_same_round() {
        let mech = CompensationBonusMechanism::paper();
        let specs = specs();
        let chaos = ChaosConfig::heavy(1234);
        let a = run_chaos_round(&mech, &specs, &config(), &chaos).unwrap();
        let b = run_chaos_round(&mech, &specs, &config(), &chaos).unwrap();
        assert_eq!(a.outcome.payments, b.outcome.payments);
        assert_eq!(a.outcome.stats, b.outcome.stats);
        assert_eq!(a.anomalies, b.anomalies);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn duplicated_frames_are_absorbed_idempotently() {
        // Duplicate every frame: the coordinator must absorb the duplicate
        // bids/acks and the outcome must match the clean run exactly.
        let mech = CompensationBonusMechanism::paper();
        let specs = specs();
        let chaos = ChaosConfig {
            duplicate_prob: 1.0,
            ..ChaosConfig::reliable(3)
        };
        let report = run_chaos_round(&mech, &specs, &config(), &chaos).unwrap();
        let clean = run_chaos_round(&mech, &specs, &config(), &ChaosConfig::reliable(3)).unwrap();
        assert_eq!(report.outcome.payments, clean.outcome.payments);
        assert!(
            report.anomalies.total() > 0,
            "duplicates should surface as anomalies"
        );
        assert!(report.faults.duplicated > 0);
        assert_round_invariants(&report, &specs, &chaos);
    }

    #[test]
    fn fully_corrupted_links_exclude_everything_cleanly() {
        // Every frame corrupt: no bid ever arrives intact, so the round
        // aborts with NeedTwoAgents — an error, never a panic.
        let mech = CompensationBonusMechanism::paper();
        let specs = specs();
        let chaos = ChaosConfig {
            corrupt_prob: 1.0,
            ..ChaosConfig::reliable(3)
        };
        assert!(matches!(
            run_chaos_round(&mech, &specs, &config(), &chaos),
            Err(MechanismError::NeedTwoAgents)
        ));
    }

    #[test]
    #[should_panic(expected = "drop_prob must be in [0, 1]")]
    fn invalid_probability_is_rejected() {
        let chaos = ChaosConfig {
            drop_prob: 1.5,
            ..ChaosConfig::reliable(0)
        };
        let _ = ChaosRuntime::new(2, config(), chaos);
    }

    #[test]
    fn instrumented_chaotic_round_records_a_replayable_story() {
        use lb_telemetry::{replay_spans, MetricsRegistry, RingCollector};

        // A lost first bid forces a retransmission; heavy chaos on top makes
        // sure drops, duplicates and corruption all appear in the recording.
        let mech = CompensationBonusMechanism::paper();
        let specs = specs();
        let chaos = ChaosConfig {
            plan: FaultPlan {
                lose_bid_attempts: vec![(0, 1)],
                ..FaultPlan::none()
            },
            ..ChaosConfig::heavy(7)
        };
        let ring = Arc::new(RingCollector::new(65_536));
        let mut runtime = ChaosRuntime::new(specs.len(), config(), chaos);
        runtime.set_collector(ring.clone());
        let report = runtime
            .run_round(&mech, &specs, RoundId(0), &vec![true; specs.len()])
            .unwrap();

        let events = ring.snapshot();
        assert_eq!(ring.overwritten(), 0, "ring too small for the round");

        // The span story replays cleanly: one round span, nested phases.
        let spans = replay_spans(&events).unwrap();
        assert_eq!(spans.iter().filter(|s| s.name == "round").count(), 1);
        assert!(spans
            .iter()
            .any(|s| s.name == "phase.collect_bids" && s.depth == 1));
        assert!(spans
            .iter()
            .any(|s| s.name == "phase.settle" && s.depth == 1));

        // Retransmissions and anomalies are visible one-for-one.
        let retransmits = events
            .iter()
            .filter(|e| e.name == "chaos.retransmit")
            .count();
        assert_eq!(retransmits as u64, report.retries);
        let anomaly_instants = events.iter().filter(|e| e.name == "anomaly").count();
        assert_eq!(anomaly_instants as u64, report.anomalies.total());

        // The registry's wire counters agree with the report's statistics.
        let mut reg = MetricsRegistry::new();
        reg.ingest(&events);
        assert_eq!(reg.counter("net.messages"), report.outcome.stats.messages);
        assert_eq!(reg.counter("net.bytes"), report.outcome.stats.bytes);
        assert_eq!(reg.counter("net.fate.dropped"), report.faults.dropped);
        assert_eq!(reg.counter("anomaly.total"), report.anomalies.total());
    }

    #[test]
    fn retransmitted_chaotic_round_stitches_into_one_trace() {
        use lb_telemetry::{replay_spans, EventKind, FieldValue, RingCollector};

        // Machine 0's first bid request is lost; the retransmission carries
        // the same phase.collect_bids context, so its bid span still stitches
        // into the one round trace.
        let mech = CompensationBonusMechanism::paper();
        let specs = specs();
        let n = specs.len();
        let chaos = ChaosConfig {
            plan: FaultPlan {
                lose_bid_attempts: vec![(0, 1)],
                ..FaultPlan::none()
            },
            ..ChaosConfig::reliable(42)
        };
        let ring = Arc::new(RingCollector::new(65_536));
        let mut runtime = ChaosRuntime::new(n, config(), chaos);
        runtime.set_collector(ring.clone());
        let report = runtime
            .run_round(&mech, &specs, RoundId(0), &vec![true; n])
            .unwrap();
        assert_eq!(report.retries, 1);

        let events = ring.snapshot();
        let spans = replay_spans(&events).expect("traced chaos recording replays cleanly");

        // The round span advertises the trace id derived from the chaos seed.
        let expected = TraceContext::root(42, 0, true);
        let round_start = events
            .iter()
            .find(|e| e.name == "round" && matches!(e.kind, EventKind::SpanStart { .. }))
            .unwrap();
        #[allow(clippy::cast_possible_truncation)]
        let lo = expected.trace_id as u64;
        assert_eq!(round_start.field("trace_lo"), Some(&FieldValue::U64(lo)));

        let phase_id = |name: &str| {
            spans
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("{name} span recorded"))
                .id
        };
        let collect = phase_id("phase.collect_bids");
        let execute = phase_id("phase.execute");
        let bids: Vec<_> = spans.iter().filter(|s| s.name == "node.bid").collect();
        let execs: Vec<_> = spans.iter().filter(|s| s.name == "node.execute").collect();
        // Every bid request opens a node span: machine 0 answers both the
        // original request (that bid is lost in transit) and the
        // retransmission, so there are n + 1 bid spans — and every one is
        // parented on the matching coordinator phase.
        assert_eq!(bids.len(), n + 1);
        assert_eq!(execs.len(), n);
        assert!(bids.iter().all(|s| s.parent == Some(collect)));
        assert!(execs.iter().all(|s| s.parent == Some(execute)));
        assert_eq!(
            events.iter().filter(|e| e.name == "node.payment").count(),
            n
        );
    }

    #[test]
    fn heavy_chaos_trace_still_replays_cleanly() {
        use lb_telemetry::{replay_spans, RingCollector};

        // Under heavy loss/duplication/corruption some contexts arrive stale
        // (their span already closed). Those must degrade to instants — the
        // recording must replay cleanly for every seed that settles.
        let mech = CompensationBonusMechanism::paper();
        let specs = specs();
        for seed in 0..20u64 {
            let ring = Arc::new(RingCollector::new(65_536));
            let mut runtime = ChaosRuntime::new(specs.len(), config(), ChaosConfig::heavy(seed));
            runtime.set_collector(ring.clone());
            match runtime.run_round(&mech, &specs, RoundId(0), &vec![true; specs.len()]) {
                Ok(_) => {
                    let events = ring.snapshot();
                    assert_eq!(ring.overwritten(), 0, "seed {seed}: ring too small");
                    replay_spans(&events)
                        .unwrap_or_else(|e| panic!("seed {seed}: replay failed: {e:?}"));
                }
                Err(MechanismError::NeedTwoAgents) => {}
                Err(e) => panic!("seed {seed}: unexpected error {e:?}"),
            }
        }
    }

    #[test]
    fn telemetry_is_inert_by_default() {
        // An uninstrumented runtime must behave bit-identically to one with
        // an explicit noop collector attached.
        let mech = CompensationBonusMechanism::paper();
        let specs = specs();
        let chaos = ChaosConfig::heavy(11);
        let mut plain = ChaosRuntime::new(specs.len(), config(), chaos.clone());
        let mut noop = ChaosRuntime::new(specs.len(), config(), chaos);
        noop.set_collector(lb_telemetry::noop_collector());
        let active = vec![true; specs.len()];
        let a = plain.run_round(&mech, &specs, RoundId(0), &active).unwrap();
        let b = noop.run_round(&mech, &specs, RoundId(0), &active).unwrap();
        assert_eq!(a.outcome.payments, b.outcome.payments);
        assert_eq!(a.outcome.rates, b.outcome.rates);
        assert_eq!(a.outcome.stats, b.outcome.stats);
        assert_eq!(a.retries, b.retries);
    }
}
