//! Deterministic single-threaded protocol runtime.
//!
//! Drives one complete round of the paper's centralized protocol over the
//! simulated network: bid collection, allocation, execution with
//! verification, and settlement. Produces the full accounting plus the
//! message statistics that validate the paper's `O(n)` message claim
//! (exactly `4n` control messages per round).

use crate::coordinator::{Coordinator, CoordinatorPhase, ProtocolError};
use crate::message::{Message, RoundId};
use crate::network::{Endpoint, MessageStats, SimNetwork};
use crate::node::{NodeAgent, NodeSpec};
use lb_mechanism::traits::ValuationModel;
use lb_mechanism::{MechanismError, VerifiedMechanism};
use lb_sim::driver::SimulationConfig;
use lb_telemetry::{noop_collector, Collector, Field, SpanId, Subsystem, TraceContext};
use std::sync::Arc;

/// Configuration of a protocol round.
#[derive(Debug, Clone, Copy)]
pub struct ProtocolConfig {
    /// Total job arrival rate `R`.
    pub total_rate: f64,
    /// Constant per-link network latency (control plane).
    pub link_latency: f64,
    /// Execution-simulation configuration (data plane / verification).
    pub simulation: SimulationConfig,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        Self {
            total_rate: 20.0,
            link_latency: 0.001,
            simulation: SimulationConfig::default(),
        }
    }
}

/// Result of one protocol round.
#[derive(Debug, Clone)]
pub struct ProtocolOutcome {
    /// Per-node assigned rates.
    pub rates: Vec<f64>,
    /// Per-node payments as received by the nodes.
    pub payments: Vec<f64>,
    /// Per-node realised utilities (computed node-side from their actual
    /// execution values).
    pub utilities: Vec<f64>,
    /// Execution values the coordinator estimated (the verification output).
    pub estimated_exec_values: Vec<f64>,
    /// Control-plane traffic statistics.
    pub stats: MessageStats,
}

/// Runs one full protocol round deterministically.
///
/// # Errors
/// Propagates mechanism/simulation/codec errors.
///
/// # Panics
/// Panics if `specs` is empty or on internal protocol violations.
pub fn run_protocol_round<M: VerifiedMechanism>(
    mechanism: &M,
    specs: &[NodeSpec],
    config: &ProtocolConfig,
) -> Result<ProtocolOutcome, MechanismError> {
    run_protocol_round_traced(mechanism, specs, config).map(|(outcome, _)| outcome)
}

/// Like [`run_protocol_round`], additionally recording every delivered frame
/// as a [`crate::trace::RoundTrace`] for offline audit/replay.
///
/// # Errors
/// Propagates mechanism/simulation/codec errors.
///
/// # Panics
/// Panics if `specs` is empty or on internal protocol violations.
pub fn run_protocol_round_traced<M: VerifiedMechanism>(
    mechanism: &M,
    specs: &[NodeSpec],
    config: &ProtocolConfig,
) -> Result<(ProtocolOutcome, crate::trace::RoundTrace), MechanismError> {
    run_protocol_round_observed(mechanism, specs, config, noop_collector())
}

/// Like [`run_protocol_round_traced`], additionally recording telemetry into
/// `collector`: the coordinator's `round`/`phase.*` spans and the network's
/// frame-level `net.*` events, all timestamped with simulated time. With the
/// noop collector this is [`run_protocol_round_traced`] exactly.
///
/// An enabled collector also turns on wire-propagated tracing: every frame
/// carries a [`TraceContext`] trailer and the node side records `node.bid` /
/// `node.execute` spans parented on the coordinator's phase spans, so the
/// whole round stitches into a single trace.
///
/// # Errors
/// Propagates mechanism/simulation/codec errors.
///
/// # Panics
/// Panics if `specs` is empty or on internal protocol violations.
pub fn run_protocol_round_observed<M: VerifiedMechanism>(
    mechanism: &M,
    specs: &[NodeSpec],
    config: &ProtocolConfig,
    collector: Arc<dyn Collector>,
) -> Result<(ProtocolOutcome, crate::trace::RoundTrace), MechanismError> {
    assert!(
        !specs.is_empty(),
        "run_protocol_round: need at least one node"
    );
    let n = specs.len();
    let round = RoundId(0);

    let mut nodes: Vec<NodeAgent> = specs
        .iter()
        .enumerate()
        .map(|(i, &spec)| NodeAgent::new(u32::try_from(i).expect("node index fits u32"), spec))
        .collect();
    let actual_exec: Vec<f64> = specs.iter().map(|s| s.exec_value).collect();

    // Strict: on a reliable network, any protocol violation is a bug.
    let mut coordinator =
        Coordinator::new(mechanism, n, config.total_rate, round, config.simulation)
            .with_strict(true)
            .with_collector(Arc::clone(&collector));
    if collector.enabled() {
        coordinator =
            coordinator.with_trace(TraceContext::root(config.simulation.seed, round.0, true));
    }
    let mut network = SimNetwork::with_constant_latency(config.link_latency);
    network.set_collector(Arc::clone(&collector));

    let result = (|| {
        // Kick off: bid requests to every node.
        coordinator.set_now(network.now().seconds());
        let open = coordinator.open();
        let wire = coordinator.wire_context();
        for (i, msg) in open.into_iter().enumerate() {
            network
                .send_traced(
                    Endpoint::Coordinator,
                    Endpoint::Node(u32::try_from(i).expect("fits u32")),
                    &msg,
                    wire.as_ref(),
                )
                .map_err(|e| {
                    MechanismError::Core(lb_core::CoreError::Infeasible {
                        reason: e.to_string(),
                    })
                })?;
        }

        // Event loop: deliver frames until the network drains.
        let mut trace = crate::trace::RoundTrace::default();
        while let Some(delivery) = network.deliver_next().map_err(|e| {
            MechanismError::Core(lb_core::CoreError::Infeasible {
                reason: e.to_string(),
            })
        })? {
            trace.entries.push(crate::trace::TraceEntry {
                at: delivery.at.seconds(),
                from: delivery.from,
                to: delivery.to,
                message: delivery.message.clone(),
            });
            match delivery.to {
                Endpoint::Node(i) => {
                    // Continue the trace the frame carried. On this reliable
                    // in-order network the parent span is always still open:
                    // the coordinator never leaves a phase before the frames
                    // of that phase are delivered and answered.
                    let ctx = delivery.ctx.filter(|c| c.sampled && collector.enabled());
                    let span = ctx.map_or(SpanId::NULL, |c| {
                        let at = delivery.at.seconds();
                        let fields = vec![Field::u64("machine", u64::from(i))];
                        let name = match delivery.message {
                            Message::RequestBid { .. } => "node.bid",
                            Message::Assign { .. } => "node.execute",
                            Message::Payment { .. } => {
                                collector.instant(at, "node.payment", Subsystem::Node, fields);
                                return SpanId::NULL;
                            }
                            _ => return SpanId::NULL,
                        };
                        collector.span_start_in(
                            at,
                            name,
                            Subsystem::Node,
                            SpanId(c.span_id),
                            fields,
                        )
                    });
                    let reply = nodes[i as usize].handle(&delivery.message);
                    if !span.is_null() {
                        collector.span_end(delivery.at.seconds(), span);
                    }
                    if let Some(msg) = reply {
                        let child = ctx.filter(|_| !span.is_null()).map(|c| c.with_span(span.0));
                        network
                            .send_traced(
                                Endpoint::Node(i),
                                Endpoint::Coordinator,
                                &msg,
                                child.as_ref(),
                            )
                            .map_err(|e| {
                                MechanismError::Core(lb_core::CoreError::Infeasible {
                                    reason: e.to_string(),
                                })
                            })?;
                    }
                }
                Endpoint::Coordinator => {
                    coordinator.set_now(delivery.at.seconds());
                    let outgoing = coordinator
                        .handle(&delivery.message, &actual_exec)
                        .map_err(ProtocolError::into_mechanism)?;
                    let wire = coordinator.wire_context();
                    for (i, msg) in outgoing {
                        network
                            .send_traced(
                                Endpoint::Coordinator,
                                Endpoint::Node(i),
                                &msg,
                                wire.as_ref(),
                            )
                            .map_err(|e| {
                                MechanismError::Core(lb_core::CoreError::Infeasible {
                                    reason: e.to_string(),
                                })
                            })?;
                    }
                }
            }
        }
        Ok(trace)
    })();
    let trace = match result {
        Ok(trace) => trace,
        Err(e) => {
            // Close any open spans so a partial recording replays cleanly.
            coordinator.end_telemetry();
            return Err(e);
        }
    };

    assert_eq!(
        coordinator.phase(),
        CoordinatorPhase::Done,
        "protocol did not complete"
    );
    let model = mechanism.valuation_model();
    let utilities: Vec<f64> = nodes
        .iter()
        .map(|node| node.utility(model).expect("round settled"))
        .collect();
    let outcome = ProtocolOutcome {
        rates: nodes
            .iter()
            .map(|nd| nd.assigned_rate.expect("assigned"))
            .collect(),
        payments: nodes.iter().map(|nd| nd.payment.expect("paid")).collect(),
        utilities,
        estimated_exec_values: coordinator
            .estimated_exec_values()
            .expect("verification complete")
            .to_vec(),
        stats: network.stats(),
    };
    Ok((outcome, trace))
}

/// The exact number of control messages one round exchanges: `4n`
/// (request, bid, assign, payment per node — completion acks ride on the
/// assign's reply), plus `n` completion acknowledgements = `5n` total.
#[must_use]
pub fn expected_message_count(n: usize) -> u64 {
    5 * n as u64
}

/// Valuation model helper re-exported for node-side utility computation.
#[must_use]
pub fn default_valuation() -> ValuationModel {
    ValuationModel::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_core::scenario::{paper_true_values, PAPER_ARRIVAL_RATE};
    use lb_mechanism::{run_mechanism, CompensationBonusMechanism, Profile};
    use lb_sim::server::ServiceModel;

    fn config() -> ProtocolConfig {
        ProtocolConfig {
            total_rate: PAPER_ARRIVAL_RATE,
            link_latency: 0.001,
            simulation: SimulationConfig {
                horizon: 300.0,
                seed: 3,
                model: ServiceModel::StationaryDeterministic,
                workload: Default::default(),
                warmup: 0.0,
                estimator: lb_sim::estimator::EstimatorConfig::default(),
            },
        }
    }

    #[test]
    fn truthful_round_matches_direct_mechanism_run() {
        let mech = CompensationBonusMechanism::paper();
        let trues = paper_true_values();
        let specs: Vec<NodeSpec> = trues.iter().map(|&t| NodeSpec::truthful(t)).collect();
        let outcome = run_protocol_round(&mech, &specs, &config()).unwrap();

        let sys = lb_core::scenario::paper_system();
        let profile = Profile::truthful(&sys, PAPER_ARRIVAL_RATE).unwrap();
        let direct = run_mechanism(&mech, &profile).unwrap();

        for i in 0..trues.len() {
            assert!((outcome.rates[i] - direct.allocation.rate(i)).abs() < 1e-9);
            assert!(
                (outcome.payments[i] - direct.payments[i]).abs() < 1e-6,
                "payment {i}"
            );
            assert!(
                (outcome.utilities[i] - direct.utilities[i]).abs() < 1e-6,
                "utility {i}"
            );
        }
    }

    #[test]
    fn traced_round_passes_replay_check() {
        let mech = CompensationBonusMechanism::paper();
        let specs: Vec<NodeSpec> = paper_true_values()
            .iter()
            .map(|&t| NodeSpec::truthful(t))
            .collect();
        let (outcome, trace) = run_protocol_round_traced(&mech, &specs, &config()).unwrap();
        assert_eq!(trace.entries.len() as u64, outcome.stats.messages);
        let violations = crate::trace::replay_check(&trace, specs.len());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn observed_round_replays_cleanly_and_matches_the_wire_stats() {
        use lb_telemetry::{replay_spans, MetricsRegistry, RingCollector};
        let mech = CompensationBonusMechanism::paper();
        let specs: Vec<NodeSpec> = paper_true_values()
            .iter()
            .map(|&t| NodeSpec::truthful(t))
            .collect();
        let ring = Arc::new(RingCollector::new(16_384));
        let (outcome, trace) =
            run_protocol_round_observed(&mech, &specs, &config(), ring.clone()).unwrap();

        let events = ring.snapshot();
        let spans = replay_spans(&events).expect("recording replays cleanly");
        assert_eq!(spans.iter().filter(|s| s.name == "round").count(), 1);
        for phase in [
            "phase.collect_bids",
            "phase.allocate",
            "phase.execute",
            "phase.settle",
        ] {
            assert!(
                spans.iter().any(|s| s.name == phase && s.depth == 1),
                "missing {phase}"
            );
        }

        // Wire-propagated context: every node's bid and execution work is a
        // span parented on the coordinator's matching phase span.
        let n = specs.len();
        let collect = spans
            .iter()
            .find(|s| s.name == "phase.collect_bids")
            .unwrap()
            .id;
        let execute = spans.iter().find(|s| s.name == "phase.execute").unwrap().id;
        let bids: Vec<_> = spans.iter().filter(|s| s.name == "node.bid").collect();
        let execs: Vec<_> = spans.iter().filter(|s| s.name == "node.execute").collect();
        assert_eq!(bids.len(), n);
        assert_eq!(execs.len(), n);
        assert!(bids.iter().all(|s| s.parent == Some(collect)));
        assert!(execs.iter().all(|s| s.parent == Some(execute)));
        assert_eq!(
            events.iter().filter(|e| e.name == "node.payment").count(),
            n
        );

        let mut reg = MetricsRegistry::new();
        reg.ingest(&events);
        assert_eq!(reg.counter("net.messages"), outcome.stats.messages);
        assert_eq!(reg.counter("net.bytes"), outcome.stats.bytes);
        assert_eq!(trace.entries.len() as u64, outcome.stats.messages);
        // Reliable network: nothing dropped, nothing anomalous.
        assert_eq!(reg.counter("net.fate.dropped"), 0);
        assert_eq!(reg.counter("anomaly.total"), 0);
    }

    #[test]
    fn message_count_is_linear_in_n() {
        let mech = CompensationBonusMechanism::paper();
        for n in [2usize, 4, 8, 16] {
            let specs: Vec<NodeSpec> = (0..n).map(|i| NodeSpec::truthful(1.0 + i as f64)).collect();
            let mut cfg = config();
            cfg.total_rate = 5.0;
            let outcome = run_protocol_round(&mech, &specs, &cfg).unwrap();
            assert_eq!(outcome.stats.messages, expected_message_count(n), "n = {n}");
        }
    }

    #[test]
    fn strategic_node_is_detected_and_penalized() {
        let mech = CompensationBonusMechanism::paper();
        let trues = paper_true_values();
        let mut specs: Vec<NodeSpec> = trues.iter().map(|&t| NodeSpec::truthful(t)).collect();
        let honest = run_protocol_round(&mech, &specs, &config()).unwrap();

        // C1 bids truthfully but executes twice as slow (paper's True2).
        specs[0] = NodeSpec::strategic(1.0, 1.0, 2.0);
        let lazy = run_protocol_round(&mech, &specs, &config()).unwrap();
        assert!(
            (lazy.estimated_exec_values[0] - 2.0).abs() < 1e-9,
            "laziness not detected"
        );
        assert!(
            lazy.payments[0] < honest.payments[0],
            "laziness not penalized"
        );
        assert!(
            lazy.utilities[0] < honest.utilities[0],
            "laziness profitable"
        );
    }
}
