//! Load-dependent latency functions.
//!
//! The paper models each computer by a **linear** latency function
//! `l(x) = t · x` (Sec. 2, Eq. 1): `l(x)` is the time to complete one job
//! when the machine receives jobs at rate `x`. The paper notes that this
//! form "could represent the expected waiting time in an M/G/1 queue, under
//! light load conditions" — [`Mg1LightLoad`] encodes exactly that reading.
//! The [`LatencyFunction`] trait generalises the model so the convex solver
//! and the mechanism baselines also cover M/M/1 (the authors' companion
//! paper) and polynomial latencies.

use serde::{Deserialize, Serialize};

/// A load-dependent per-job latency function `l(x)` for one machine.
///
/// Implementations must guarantee that the **total latency** `x · l(x)` is
/// convex and differentiable on the feasible domain, which is what the
/// optimality theory (Theorem 2.1 and its KKT generalisation) requires.
pub trait LatencyFunction {
    /// Per-job latency `l(x)` at arrival rate `x >= 0`.
    ///
    /// For capacitated families, returns `f64::INFINITY` at or above capacity.
    fn per_job(&self, x: f64) -> f64;

    /// Total latency contribution `x · l(x)` at arrival rate `x`.
    fn total(&self, x: f64) -> f64 {
        if x == 0.0 {
            0.0
        } else {
            x * self.per_job(x)
        }
    }

    /// Derivative of the total latency, `d/dx [x · l(x)]` — the KKT marginal.
    fn marginal_total(&self, x: f64) -> f64;

    /// Inverse of [`LatencyFunction::marginal_total`]: the rate `x >= 0` at
    /// which the marginal equals `lambda`, clamped to 0 when the marginal at
    /// zero already exceeds `lambda`.
    ///
    /// A closed form exists for every family shipped here; generic
    /// implementations may bisect.
    fn inverse_marginal(&self, lambda: f64) -> f64;

    /// Upper bound on the feasible arrival rate, if the family is
    /// capacitated (e.g. the service rate `mu` for M/M/1).
    fn capacity(&self) -> Option<f64> {
        None
    }
}

/// The paper's linear latency: `l(x) = t·x`, total `t·x²`, marginal `2tx`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    /// The latency coefficient `t` (inverse processing rate).
    pub t: f64,
}

impl Linear {
    /// Creates a linear latency function.
    ///
    /// # Panics
    /// Panics unless `t` is finite and strictly positive.
    #[must_use]
    pub fn new(t: f64) -> Self {
        assert!(t.is_finite() && t > 0.0, "Linear: t must be finite and > 0");
        Self { t }
    }
}

impl LatencyFunction for Linear {
    fn per_job(&self, x: f64) -> f64 {
        self.t * x
    }
    fn marginal_total(&self, x: f64) -> f64 {
        2.0 * self.t * x
    }
    fn inverse_marginal(&self, lambda: f64) -> f64 {
        (lambda / (2.0 * self.t)).max(0.0)
    }
}

/// M/G/1 expected waiting time under light load: identical algebra to
/// [`Linear`] with `t` read as (half) the second moment of service time —
/// the interpretation the paper cites from Altman et al. Provided as a
/// distinct type so models document which reading they use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mg1LightLoad {
    /// Coefficient multiplying the arrival rate (`E[S²]/2` in Pollaczek–
    /// Khinchine under light load).
    pub coefficient: f64,
}

impl Mg1LightLoad {
    /// Creates a light-load M/G/1 waiting-time model.
    ///
    /// # Panics
    /// Panics unless `coefficient` is finite and strictly positive.
    #[must_use]
    pub fn new(coefficient: f64) -> Self {
        assert!(
            coefficient.is_finite() && coefficient > 0.0,
            "Mg1LightLoad: coefficient must be finite and > 0"
        );
        Self { coefficient }
    }
}

impl LatencyFunction for Mg1LightLoad {
    fn per_job(&self, x: f64) -> f64 {
        self.coefficient * x
    }
    fn marginal_total(&self, x: f64) -> f64 {
        2.0 * self.coefficient * x
    }
    fn inverse_marginal(&self, lambda: f64) -> f64 {
        (lambda / (2.0 * self.coefficient)).max(0.0)
    }
}

/// Affine latency `l(x) = a + b·x`: a fixed per-job overhead plus a linear
/// congestion term. Total `ax + bx²`, marginal `a + 2bx`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Affine {
    /// Fixed per-job latency `a >= 0`.
    pub a: f64,
    /// Congestion coefficient `b > 0`.
    pub b: f64,
}

impl Affine {
    /// Creates an affine latency function.
    ///
    /// # Panics
    /// Panics unless `a >= 0` and `b > 0` (both finite).
    #[must_use]
    pub fn new(a: f64, b: f64) -> Self {
        assert!(
            a.is_finite() && a >= 0.0,
            "Affine: a must be finite and >= 0"
        );
        assert!(b.is_finite() && b > 0.0, "Affine: b must be finite and > 0");
        Self { a, b }
    }
}

impl LatencyFunction for Affine {
    fn per_job(&self, x: f64) -> f64 {
        self.a + self.b * x
    }
    fn marginal_total(&self, x: f64) -> f64 {
        self.a + 2.0 * self.b * x
    }
    fn inverse_marginal(&self, lambda: f64) -> f64 {
        ((lambda - self.a) / (2.0 * self.b)).max(0.0)
    }
}

/// M/M/1 expected response time `l(x) = 1/(mu − x)` for `x < mu`.
///
/// This is the latency family of the authors' companion mechanism paper
/// (Grosu & Chronopoulos, Cluster 2002, [ref.&nbsp;8]); total `x/(mu − x)`,
/// marginal `mu/(mu − x)²`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mm1 {
    /// Service rate `mu > 0` (jobs per unit time).
    pub mu: f64,
}

impl Mm1 {
    /// Creates an M/M/1 latency function.
    ///
    /// # Panics
    /// Panics unless `mu` is finite and strictly positive.
    #[must_use]
    pub fn new(mu: f64) -> Self {
        assert!(mu.is_finite() && mu > 0.0, "Mm1: mu must be finite and > 0");
        Self { mu }
    }
}

impl LatencyFunction for Mm1 {
    fn per_job(&self, x: f64) -> f64 {
        if x >= self.mu {
            f64::INFINITY
        } else {
            1.0 / (self.mu - x)
        }
    }
    fn marginal_total(&self, x: f64) -> f64 {
        if x >= self.mu {
            f64::INFINITY
        } else {
            let d = self.mu - x;
            self.mu / (d * d)
        }
    }
    fn inverse_marginal(&self, lambda: f64) -> f64 {
        // Solve mu/(mu - x)^2 = lambda  =>  x = mu - sqrt(mu/lambda).
        if lambda <= 1.0 / self.mu {
            // Marginal at x = 0 is 1/mu; below that no positive rate is optimal.
            0.0
        } else {
            self.mu - (self.mu / lambda).sqrt()
        }
    }
    fn capacity(&self) -> Option<f64> {
        Some(self.mu)
    }
}

/// Power-law latency `l(x) = t·x^γ` with exponent `γ ≥ 1`.
///
/// Interpolates between the paper's linear model (`γ = 1`) and sharply
/// congestion-sensitive machines; total `t·x^{γ+1}`, marginal
/// `(γ+1)·t·x^γ`, with a closed-form inverse marginal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLaw {
    /// Latency coefficient `t > 0`.
    pub t: f64,
    /// Congestion exponent `γ ≥ 1`.
    pub gamma: f64,
}

impl PowerLaw {
    /// Creates a power-law latency function.
    ///
    /// # Panics
    /// Panics unless `t > 0` and `gamma >= 1` (both finite).
    #[must_use]
    pub fn new(t: f64, gamma: f64) -> Self {
        assert!(
            t.is_finite() && t > 0.0,
            "PowerLaw: t must be finite and > 0"
        );
        assert!(
            gamma.is_finite() && gamma >= 1.0,
            "PowerLaw: gamma must be >= 1"
        );
        Self { t, gamma }
    }
}

impl LatencyFunction for PowerLaw {
    fn per_job(&self, x: f64) -> f64 {
        self.t * x.powf(self.gamma)
    }
    fn marginal_total(&self, x: f64) -> f64 {
        (self.gamma + 1.0) * self.t * x.powf(self.gamma)
    }
    fn inverse_marginal(&self, lambda: f64) -> f64 {
        if lambda <= 0.0 {
            0.0
        } else {
            (lambda / ((self.gamma + 1.0) * self.t)).powf(1.0 / self.gamma)
        }
    }
}

/// Polynomial latency `l(x) = Σ c_k x^k` with non-negative coefficients,
/// which guarantees convexity of the total `x·l(x)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polynomial {
    /// Coefficients `c_0, c_1, …` of the per-job latency.
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial latency function from per-job coefficients.
    ///
    /// # Panics
    /// Panics if `coeffs` is empty, any coefficient is negative or
    /// non-finite, or all coefficients are zero.
    #[must_use]
    pub fn new(coeffs: Vec<f64>) -> Self {
        assert!(
            !coeffs.is_empty(),
            "Polynomial: need at least one coefficient"
        );
        assert!(
            coeffs.iter().all(|c| c.is_finite() && *c >= 0.0),
            "Polynomial: coefficients must be finite and >= 0"
        );
        assert!(
            coeffs.iter().any(|&c| c > 0.0),
            "Polynomial: all-zero latency is invalid"
        );
        Self { coeffs }
    }

    /// The coefficient slice.
    #[must_use]
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }
}

impl LatencyFunction for Polynomial {
    fn per_job(&self, x: f64) -> f64 {
        // Horner evaluation.
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }
    fn marginal_total(&self, x: f64) -> f64 {
        // d/dx [x * Σ c_k x^k] = Σ (k+1) c_k x^k.
        self.coeffs
            .iter()
            .enumerate()
            .rev()
            .fold(0.0, |acc, (k, &c)| acc * x + (k as f64 + 1.0) * c)
    }
    fn inverse_marginal(&self, lambda: f64) -> f64 {
        // Marginal is strictly increasing where any k>=1 coefficient is
        // positive; bisect on [0, hi].
        if self.marginal_total(0.0) >= lambda {
            return 0.0;
        }
        let mut hi = 1.0f64;
        let mut guard = 0;
        while self.marginal_total(hi) < lambda {
            hi *= 2.0;
            guard += 1;
            if guard > 1024 {
                // Marginal is constant (pure c_0 latency): infinite rate would
                // be needed; cap at a huge sentinel the solver will reject.
                return f64::MAX.sqrt();
            }
        }
        let mut lo = 0.0f64;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.marginal_total(mid) < lambda {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_marginal_numerically<F: LatencyFunction>(f: &F, xs: &[f64], tol: f64) {
        let h = 1e-6;
        for &x in xs {
            let num = (f.total(x + h) - f.total((x - h).max(0.0))) / (h + (x - (x - h).max(0.0)));
            let ana = f.marginal_total(x);
            assert!(
                (num - ana).abs() < tol * (1.0 + ana.abs()),
                "x={x}: numeric {num} vs analytic {ana}"
            );
        }
    }

    fn check_inverse_marginal<F: LatencyFunction>(f: &F, lambdas: &[f64]) {
        for &l in lambdas {
            let x = f.inverse_marginal(l);
            assert!(x >= 0.0);
            if x > 0.0 {
                assert!(
                    (f.marginal_total(x) - l).abs() < 1e-6 * (1.0 + l),
                    "lambda={l}, x={x}"
                );
            } else {
                assert!(f.marginal_total(0.0) >= l - 1e-12);
            }
        }
    }

    #[test]
    fn linear_basics() {
        let f = Linear::new(2.0);
        assert_eq!(f.per_job(3.0), 6.0);
        assert_eq!(f.total(3.0), 18.0);
        assert_eq!(f.marginal_total(3.0), 12.0);
        assert_eq!(f.capacity(), None);
        check_marginal_numerically(&f, &[0.0, 0.5, 2.0, 10.0], 1e-5);
        check_inverse_marginal(&f, &[0.0, 0.1, 1.0, 50.0]);
    }

    #[test]
    fn linear_total_at_zero_is_zero() {
        assert_eq!(Linear::new(5.0).total(0.0), 0.0);
    }

    #[test]
    fn mg1_light_load_matches_linear_algebra() {
        let f = Mg1LightLoad::new(2.0);
        let g = Linear::new(2.0);
        for x in [0.0, 0.3, 1.7, 9.0] {
            assert_eq!(f.per_job(x), g.per_job(x));
            assert_eq!(f.marginal_total(x), g.marginal_total(x));
        }
    }

    #[test]
    fn affine_basics() {
        let f = Affine::new(1.0, 0.5);
        assert_eq!(f.per_job(2.0), 2.0);
        assert_eq!(f.total(2.0), 4.0);
        assert_eq!(f.marginal_total(2.0), 3.0);
        check_marginal_numerically(&f, &[0.0, 1.0, 4.0], 1e-5);
        check_inverse_marginal(&f, &[0.5, 1.0, 2.0, 10.0]);
        // Below the zero-load marginal the inverse clamps at zero.
        assert_eq!(f.inverse_marginal(0.5), 0.0);
    }

    #[test]
    fn mm1_basics() {
        let f = Mm1::new(4.0);
        assert!((f.per_job(2.0) - 0.5).abs() < 1e-15);
        assert!((f.total(2.0) - 1.0).abs() < 1e-15);
        assert!((f.marginal_total(2.0) - 1.0).abs() < 1e-15);
        assert_eq!(f.capacity(), Some(4.0));
        check_marginal_numerically(&f, &[0.0, 1.0, 3.0], 1e-4);
        check_inverse_marginal(&f, &[0.1, 0.25, 1.0, 100.0]);
    }

    #[test]
    fn mm1_saturates_at_capacity() {
        let f = Mm1::new(2.0);
        assert_eq!(f.per_job(2.0), f64::INFINITY);
        assert_eq!(f.per_job(3.0), f64::INFINITY);
        assert_eq!(f.marginal_total(2.5), f64::INFINITY);
    }

    #[test]
    fn mm1_inverse_marginal_below_zero_load_marginal() {
        let f = Mm1::new(4.0);
        // marginal at 0 is 1/mu = 0.25.
        assert_eq!(f.inverse_marginal(0.2), 0.0);
        assert!(f.inverse_marginal(0.26) > 0.0);
    }

    #[test]
    fn power_law_reduces_to_linear_at_gamma_one() {
        let p = PowerLaw::new(2.0, 1.0);
        let l = Linear::new(2.0);
        for x in [0.0, 0.5, 3.0] {
            assert!((p.per_job(x) - l.per_job(x)).abs() < 1e-12);
            assert!((p.marginal_total(x) - l.marginal_total(x)).abs() < 1e-12);
        }
        check_inverse_marginal(&p, &[0.1, 1.0, 10.0]);
    }

    #[test]
    fn power_law_marginal_and_inverse() {
        let p = PowerLaw::new(0.5, 2.0);
        check_marginal_numerically(&p, &[0.1, 1.0, 2.5], 1e-4);
        check_inverse_marginal(&p, &[0.5, 3.0, 40.0]);
        assert_eq!(p.inverse_marginal(0.0), 0.0);
    }

    #[test]
    fn power_law_solver_integrates_with_kkt() {
        use crate::convex::{solve_convex, ConvexSolverOptions};
        let a = PowerLaw::new(1.0, 2.0);
        let b = PowerLaw::new(1.0, 1.0);
        let fns: Vec<&dyn LatencyFunction> = vec![&a, &b];
        let alloc = solve_convex(&fns, 2.0, ConvexSolverOptions::default()).unwrap();
        assert!((alloc.total_rate() - 2.0).abs() < 1e-9);
        // Equal marginals at the optimum.
        let m0 = a.marginal_total(alloc.rate(0));
        let m1 = b.marginal_total(alloc.rate(1));
        assert!((m0 - m1).abs() < 1e-5 * m0.max(1.0), "{m0} vs {m1}");
    }

    #[test]
    #[should_panic(expected = "gamma must be >= 1")]
    fn power_law_rejects_sublinear_gamma() {
        let _ = PowerLaw::new(1.0, 0.5);
    }

    #[test]
    fn polynomial_matches_linear_special_case() {
        let p = Polynomial::new(vec![0.0, 3.0]); // l(x) = 3x
        let l = Linear::new(3.0);
        for x in [0.0, 0.4, 2.0] {
            assert!((p.per_job(x) - l.per_job(x)).abs() < 1e-12);
            assert!((p.marginal_total(x) - l.marginal_total(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn polynomial_marginal_and_inverse() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.5]); // l = 1 + 2x + 0.5x²
        check_marginal_numerically(&p, &[0.0, 0.7, 3.0], 1e-4);
        check_inverse_marginal(&p, &[1.0, 2.0, 17.0, 400.0]);
    }

    #[test]
    fn polynomial_constant_latency_inverse_is_capped() {
        let p = Polynomial::new(vec![2.0]); // l = 2, total = 2x, marginal = 2
        assert_eq!(p.inverse_marginal(1.0), 0.0);
        // Any lambda above the constant marginal can never be reached.
        assert!(p.inverse_marginal(3.0) > 1e100);
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn polynomial_rejects_all_zero() {
        let _ = Polynomial::new(vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "must be finite and > 0")]
    fn linear_rejects_nonpositive() {
        let _ = Linear::new(0.0);
    }

    #[test]
    fn trait_objects_are_usable() {
        let fns: Vec<Box<dyn LatencyFunction>> = vec![
            Box::new(Linear::new(1.0)),
            Box::new(Mm1::new(2.0)),
            Box::new(Affine::new(0.1, 1.0)),
        ];
        let total: f64 = fns.iter().map(|f| f.total(0.5)).sum();
        assert!(total > 0.0);
    }
}
