//! Error types for the problem model.

use std::fmt;

/// Errors produced by the core load-balancing model.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A latency parameter (true value, bid or execution value) was not a
    /// strictly positive finite number.
    InvalidParameter {
        /// Which parameter was rejected (for diagnostics).
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A system or bid vector was empty where at least one machine is needed.
    EmptySystem,
    /// A bid/value vector's length did not match the system size.
    LengthMismatch {
        /// Expected number of entries (the system size).
        expected: usize,
        /// Number of entries actually supplied.
        actual: usize,
    },
    /// The requested total arrival rate was not a positive finite number.
    InvalidRate(f64),
    /// An allocation violated feasibility (negativity or conservation).
    Infeasible {
        /// Human-readable description of the violated condition.
        reason: String,
    },
    /// The requested total rate exceeds the aggregate capacity of the system
    /// (only possible for capacitated latency families such as M/M/1).
    InsufficientCapacity {
        /// Total arrival rate requested.
        rate: f64,
        /// Aggregate capacity available.
        capacity: f64,
    },
    /// The iterative convex solver failed to reach the requested tolerance.
    SolverDidNotConverge {
        /// Iterations performed before giving up.
        iterations: u32,
        /// Residual conservation error at exit.
        residual: f64,
    },
    /// The system has more machines than machine ids (`u32`) can index.
    SystemTooLarge {
        /// Number of machines requested.
        requested: usize,
    },
    /// An intermediate computation left the representable `f64` range
    /// (overflowed to infinity or collapsed to NaN) even though every input
    /// passed validation.
    NumericalOverflow {
        /// Which quantity overflowed (for diagnostics).
        what: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter { name, value } => {
                write!(f, "invalid {name}: {value} (must be finite and > 0)")
            }
            Self::EmptySystem => write!(f, "system must contain at least one machine"),
            Self::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "vector length {actual} does not match system size {expected}"
                )
            }
            Self::InvalidRate(r) => {
                write!(f, "invalid total arrival rate {r} (must be finite and > 0)")
            }
            Self::Infeasible { reason } => write!(f, "infeasible allocation: {reason}"),
            Self::InsufficientCapacity { rate, capacity } => {
                write!(f, "total rate {rate} exceeds aggregate capacity {capacity}")
            }
            Self::SolverDidNotConverge {
                iterations,
                residual,
            } => {
                write!(f, "convex solver did not converge after {iterations} iterations (residual {residual:e})")
            }
            Self::SystemTooLarge { requested } => {
                write!(f, "system of {requested} machines exceeds the u32 id space")
            }
            Self::NumericalOverflow { what } => {
                write!(
                    f,
                    "numerical overflow computing {what} (result left the finite f64 range)"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::InvalidParameter {
            name: "true value",
            value: -1.0,
        };
        assert!(e.to_string().contains("true value"));
        assert!(e.to_string().contains("-1"));

        let e = CoreError::LengthMismatch {
            expected: 16,
            actual: 3,
        };
        assert!(e.to_string().contains("16"));
        assert!(e.to_string().contains('3'));

        let e = CoreError::InsufficientCapacity {
            rate: 5.0,
            capacity: 4.0,
        };
        assert!(e.to_string().contains('5'));

        let e = CoreError::SolverDidNotConverge {
            iterations: 7,
            residual: 1e-3,
        };
        assert!(e.to_string().contains('7'));

        let e = CoreError::NumericalOverflow {
            what: "sum of inverse latencies",
        };
        assert!(e.to_string().contains("inverse latencies"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CoreError::EmptySystem);
    }
}
