//! General convex allocation solver.
//!
//! Theorem 2.1 of the paper is proved with Kuhn–Tucker conditions; this
//! module implements the same KKT argument *numerically* for any latency
//! family whose total latency is convex: at an optimum there is a multiplier
//! `λ` such that every machine with positive load has marginal total latency
//! equal to `λ`, and every idle machine has marginal at least `λ`.
//!
//! Since each marginal is non-decreasing, `x_i(λ) = inverse_marginal(λ)` is
//! non-decreasing in `λ`, and the conservation constraint `Σ x_i(λ) = R` can
//! be solved by one outer bisection on `λ`.
//!
//! Uses: cross-check the PR closed form (they must agree to solver
//! tolerance), and extend the mechanism experiments to M/M/1 latencies —
//! the model of the authors' companion paper [ref.&nbsp;8].

use crate::allocation::{validate_rate, Allocation};
use crate::error::CoreError;
use crate::latency::LatencyFunction;
use crate::numeric::compensated_sum;

/// Options for [`solve_convex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvexSolverOptions {
    /// Relative tolerance on the conservation residual `|Σx − R| / R`.
    pub tolerance: f64,
    /// Maximum bisection iterations.
    pub max_iterations: u32,
}

impl Default for ConvexSolverOptions {
    fn default() -> Self {
        Self {
            tolerance: 1e-12,
            max_iterations: 200,
        }
    }
}

/// Minimises `Σ_i total_i(x_i)` subject to `Σ x_i = r`, `x ≥ 0` for convex
/// latency functions, by bisection on the KKT multiplier.
///
/// # Errors
/// * [`CoreError::EmptySystem`] — no latency functions supplied.
/// * [`CoreError::InvalidRate`] — non-positive/non-finite `r`.
/// * [`CoreError::InsufficientCapacity`] — capacitated families whose total
///   capacity cannot absorb `r`.
/// * [`CoreError::SolverDidNotConverge`] — tolerance not reached within the
///   iteration budget.
pub fn solve_convex<F: LatencyFunction + ?Sized>(
    fns: &[&F],
    r: f64,
    options: ConvexSolverOptions,
) -> Result<Allocation, CoreError> {
    if fns.is_empty() {
        return Err(CoreError::EmptySystem);
    }
    validate_rate(r)?;

    // Capacity check for capacitated families (e.g. M/M/1).
    let mut capacity_sum = 0.0;
    let mut capacitated = true;
    for f in fns {
        match f.capacity() {
            Some(c) => capacity_sum += c,
            None => {
                capacitated = false;
                break;
            }
        }
    }
    if capacitated && capacity_sum <= r {
        return Err(CoreError::InsufficientCapacity {
            rate: r,
            capacity: capacity_sum,
        });
    }

    let assigned =
        |lambda: f64| -> f64 { compensated_sum(fns.iter().map(|f| f.inverse_marginal(lambda))) };

    // Bracket lambda: at lambda = min marginal at 0, total assignment is 0;
    // grow the upper bound geometrically until assignment >= r.
    let mut lo = 0.0_f64;
    let mut hi = 1.0_f64;
    let mut guard = 0u32;
    while assigned(hi) < r {
        hi *= 2.0;
        guard += 1;
        if guard > 2048 || !hi.is_finite() {
            return Err(CoreError::SolverDidNotConverge {
                iterations: guard,
                residual: r - assigned(hi),
            });
        }
    }

    let mut iterations = 0u32;
    for _ in 0..options.max_iterations {
        iterations += 1;
        let mid = 0.5 * (lo + hi);
        if assigned(mid) < r {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let lambda = 0.5 * (lo + hi);
    let mut rates: Vec<f64> = fns.iter().map(|f| f.inverse_marginal(lambda)).collect();

    // Redistribute the (tiny) conservation residual proportionally over the
    // loaded machines, so the returned allocation satisfies Σx = r exactly.
    let sum = compensated_sum(rates.iter().copied());
    let residual = r - sum;
    let rel_residual = residual.abs() / r;
    if rel_residual > 1e-6 {
        return Err(CoreError::SolverDidNotConverge {
            iterations,
            residual,
        });
    }
    if sum > 0.0 {
        let scale = r / sum;
        for x in &mut rates {
            *x *= scale;
        }
    }

    let alloc = Allocation::from_raw(rates);
    debug_assert!(alloc.is_feasible(r, 1e-9));
    Ok(alloc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::{pr_allocate, total_latency_fn};
    use crate::latency::{Affine, Linear, Mm1, Polynomial};
    use proptest::prelude::*;

    #[test]
    fn linear_solution_matches_pr_closed_form() {
        let ts = [1.0, 2.0, 5.0, 10.0];
        let fns: Vec<Linear> = ts.iter().map(|&t| Linear::new(t)).collect();
        let refs: Vec<&Linear> = fns.iter().collect();
        let got = solve_convex(&refs, 20.0, ConvexSolverOptions::default()).unwrap();
        let want = pr_allocate(&ts, 20.0).unwrap();
        for (g, w) in got.rates().iter().zip(want.rates()) {
            assert!((g - w).abs() < 1e-8, "{g} vs {w}");
        }
    }

    #[test]
    fn paper_system_solver_agrees_with_theorem_2_1() {
        let ts = crate::scenario::paper_true_values();
        let fns: Vec<Linear> = ts.iter().map(|&t| Linear::new(t)).collect();
        let refs: Vec<&Linear> = fns.iter().collect();
        let alloc = solve_convex(&refs, 20.0, ConvexSolverOptions::default()).unwrap();
        let dynrefs: Vec<&dyn LatencyFunction> =
            fns.iter().map(|f| f as &dyn LatencyFunction).collect();
        let latency = total_latency_fn(&alloc, &dynrefs).unwrap();
        assert!((latency - 400.0 / 5.1).abs() < 1e-6, "latency = {latency}");
    }

    #[test]
    fn mm1_respects_capacity_and_kkt() {
        let fns = [Mm1::new(4.0), Mm1::new(2.0)];
        let refs: Vec<&Mm1> = fns.iter().collect();
        let alloc = solve_convex(&refs, 3.0, ConvexSolverOptions::default()).unwrap();
        assert!(alloc.rate(0) < 4.0 && alloc.rate(1) < 2.0);
        assert!((alloc.total_rate() - 3.0).abs() < 1e-9);
        // KKT: loaded machines share the same marginal.
        let m0 = fns[0].marginal_total(alloc.rate(0));
        let m1 = fns[1].marginal_total(alloc.rate(1));
        if alloc.rate(0) > 1e-9 && alloc.rate(1) > 1e-9 {
            assert!((m0 - m1).abs() < 1e-5, "marginals differ: {m0} vs {m1}");
        }
    }

    #[test]
    fn mm1_slow_machine_left_idle_under_light_load() {
        // A very slow machine should receive zero load when the fast one can
        // carry everything at lower marginal cost.
        let fns = [Mm1::new(100.0), Mm1::new(0.5)];
        let refs: Vec<&Mm1> = fns.iter().collect();
        let alloc = solve_convex(&refs, 0.1, ConvexSolverOptions::default()).unwrap();
        assert!(alloc.rate(1) < 1e-6, "slow machine got {}", alloc.rate(1));
    }

    #[test]
    fn mm1_over_capacity_is_rejected() {
        let fns = [Mm1::new(1.0), Mm1::new(1.5)];
        let refs: Vec<&Mm1> = fns.iter().collect();
        assert!(matches!(
            solve_convex(&refs, 2.5, ConvexSolverOptions::default()),
            Err(CoreError::InsufficientCapacity { .. })
        ));
        assert!(solve_convex(&refs, 2.4, ConvexSolverOptions::default()).is_ok());
    }

    #[test]
    fn affine_idles_high_overhead_machines() {
        // Machine 1 has a large fixed overhead; under light load only
        // machine 0 should be used (its marginal stays below a = 10).
        let fns = [Affine::new(0.0, 1.0), Affine::new(10.0, 1.0)];
        let refs: Vec<&Affine> = fns.iter().collect();
        let alloc = solve_convex(&refs, 1.0, ConvexSolverOptions::default()).unwrap();
        assert!(alloc.rate(1) < 1e-9);
        assert!((alloc.rate(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn polynomial_mixture_solves() {
        let p0 = Polynomial::new(vec![0.0, 1.0]);
        let p1 = Polynomial::new(vec![0.5, 0.2, 0.1]);
        let fns: Vec<&dyn LatencyFunction> = vec![&p0, &p1];
        let alloc = solve_convex(&fns, 4.0, ConvexSolverOptions::default()).unwrap();
        assert!((alloc.total_rate() - 4.0).abs() < 1e-9);
        let l = total_latency_fn(&alloc, &fns).unwrap();
        // Any perturbation should not improve.
        for delta in [0.01, -0.01] {
            let mut rates = alloc.rates().to_vec();
            if rates[0] + delta < 0.0 || rates[1] - delta < 0.0 {
                continue;
            }
            rates[0] += delta;
            rates[1] -= delta;
            let perturbed = Allocation::new(rates, 4.0).unwrap();
            let lp = total_latency_fn(&perturbed, &fns).unwrap();
            assert!(lp >= l - 1e-9, "perturbation improved: {lp} < {l}");
        }
    }

    #[test]
    fn empty_and_invalid_inputs_error() {
        let empty: Vec<&Linear> = vec![];
        assert!(matches!(
            solve_convex(&empty, 1.0, ConvexSolverOptions::default()),
            Err(CoreError::EmptySystem)
        ));
        let f = Linear::new(1.0);
        assert!(solve_convex(&[&f], -1.0, ConvexSolverOptions::default()).is_err());
    }

    proptest! {
        /// Mixed latency families (linear + affine + M/M/1 + polynomial):
        /// the solution is feasible and no pairwise transfer improves it.
        #[test]
        fn prop_mixed_family_optimality(
            t_lin in 0.1f64..5.0,
            a_aff in 0.0f64..2.0,
            b_aff in 0.1f64..3.0,
            mu in 2.0f64..10.0,
            c1 in 0.0f64..2.0,
            c2 in 0.05f64..1.0,
            load in 0.2f64..1.5,
            from in 0usize..4,
            to in 0usize..4,
        ) {
            prop_assume!(from != to);
            let lin = Linear::new(t_lin);
            let aff = Affine::new(a_aff, b_aff);
            let m = Mm1::new(mu);
            let poly = Polynomial::new(vec![c1, c2]);
            let fns: Vec<&dyn LatencyFunction> = vec![&lin, &aff, &m, &poly];
            let alloc = solve_convex(&fns, load, ConvexSolverOptions::default()).unwrap();
            prop_assert!(alloc.is_feasible(load, 1e-6));
            prop_assert!(alloc.rate(2) < mu);

            let base = total_latency_fn(&alloc, &fns).unwrap();
            let delta = 0.05 * alloc.rate(from);
            prop_assume!(delta > 1e-9);
            // Keep the M/M/1 machine inside capacity after the transfer.
            prop_assume!(to != 2 || alloc.rate(2) + delta < mu * 0.999);
            let mut rates = alloc.rates().to_vec();
            rates[from] -= delta;
            rates[to] += delta;
            let perturbed = Allocation::new(rates, load).unwrap();
            let worse = total_latency_fn(&perturbed, &fns).unwrap();
            prop_assert!(worse >= base - 1e-7 * base.max(1.0),
                "transfer improved: {} < {}", worse, base);
        }

        /// For random linear systems, the solver agrees with PR.
        #[test]
        fn prop_solver_matches_pr(
            ts in proptest::collection::vec(0.05f64..20.0, 1..12),
            r in 0.1f64..100.0,
        ) {
            let fns: Vec<Linear> = ts.iter().map(|&t| Linear::new(t)).collect();
            let refs: Vec<&Linear> = fns.iter().collect();
            let got = solve_convex(&refs, r, ConvexSolverOptions::default()).unwrap();
            let want = pr_allocate(&ts, r).unwrap();
            for (g, w) in got.rates().iter().zip(want.rates()) {
                prop_assert!((g - w).abs() < 1e-6 * w.abs().max(1.0), "{} vs {}", g, w);
            }
        }

        /// For random M/M/1 systems under feasible load, the solution is
        /// feasible and satisfies the KKT equal-marginal condition.
        #[test]
        fn prop_mm1_kkt(
            mus in proptest::collection::vec(0.5f64..10.0, 2..8),
            load_frac in 0.05f64..0.9,
        ) {
            let r = load_frac * mus.iter().sum::<f64>();
            prop_assume!(r > 0.0);
            let fns: Vec<Mm1> = mus.iter().map(|&m| Mm1::new(m)).collect();
            let refs: Vec<&Mm1> = fns.iter().collect();
            let alloc = solve_convex(&refs, r, ConvexSolverOptions::default()).unwrap();
            prop_assert!(alloc.is_feasible(r, 1e-6));
            // Equal marginals across loaded machines.
            let loaded: Vec<f64> = alloc.rates().iter().zip(&fns)
                .filter(|(&x, _)| x > 1e-7)
                .map(|(&x, f)| f.marginal_total(x))
                .collect();
            if let (Some(min), Some(max)) = (
                loaded.iter().cloned().reduce(f64::min),
                loaded.iter().cloned().reduce(f64::max),
            ) {
                prop_assert!((max - min) / max < 1e-3, "marginal spread {} .. {}", min, max);
            }
        }
    }
}
