//! Sensitivity analysis of the optimal latency.
//!
//! Closed-form derivatives of `L*(t, R) = R² / Σ(1/t_j)` answer operational
//! questions the mechanism's payments are built around:
//!
//! * **Marginal value of speed** — `∂L*/∂t_i = R²·(1/t_i²)/S²` with
//!   `S = Σ 1/t_j`: how much the system-wide latency falls per unit of
//!   machine-`i` speedup. Capacity upgrades should go to the machine with
//!   the largest value, which is *the currently fastest* one (economies of
//!   concentration under linear latencies).
//! * **Marginal value of participation** — `L_{-i} − L*`, which is exactly
//!   the truthful bonus the mechanism pays (Def. 3.3): the payment rule
//!   prices participation at its sensitivity value.

use crate::allocation::{validate_rate, LeaveOneOut};
use crate::error::CoreError;
use crate::machine::validate_values;
use crate::numeric::compensated_sum;

/// `∂L*/∂t_i` for every machine: the system-latency reduction per unit
/// *decrease* of `t_i` is the negation of the returned entry.
///
/// Derivation: `L* = R²/S`, `∂S/∂t_i = −1/t_i²`, so
/// `∂L*/∂t_i = R²·(1/t_i²)/S²`.
///
/// # Errors
/// Propagates validation errors.
pub fn latency_sensitivity(values: &[f64], r: f64) -> Result<Vec<f64>, CoreError> {
    validate_values("latency coefficient", values)?;
    validate_rate(r)?;
    let s = compensated_sum(values.iter().map(|t| 1.0 / t));
    Ok(values.iter().map(|t| r * r / (t * t * s * s)).collect())
}

/// Marginal contribution of every machine: `L_{-i} − L*` — the reduction in
/// optimal total latency its participation buys (and its truthful bonus).
///
/// One O(n) [`LeaveOneOut`] batch call, using the cancellation-free closed
/// form `R²·(1/t_i)/(S·(S − 1/t_i))`. The former per-agent subtraction
/// `L_{-i} − L*` rebuilt the value vector n times (quadratic) and, at large
/// `n`, cancelled catastrophically: both operands are `O(R²/S)` while a slow
/// machine's true marginal can sit tens of orders of magnitude below them.
///
/// # Errors
/// Propagates validation errors; needs at least two machines.
pub fn marginal_contributions(values: &[f64], r: f64) -> Result<Vec<f64>, CoreError> {
    Ok(LeaveOneOut::compute(values, r)?.marginals().to_vec())
}

/// Which machine to speed up: index of the largest `∂L*/∂t_i`.
///
/// # Errors
/// Propagates validation errors.
pub fn best_upgrade_target(values: &[f64], r: f64) -> Result<usize, CoreError> {
    let sens = latency_sensitivity(values, r)?;
    // First maximal index (stable under ties between equal machines).
    let mut best = 0;
    for (i, s) in sens.iter().enumerate().skip(1) {
        if *s > sens[best] {
            best = i;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::optimal_latency_linear;
    use crate::scenario::{paper_true_values, PAPER_ARRIVAL_RATE};
    use proptest::prelude::*;

    #[test]
    fn sensitivity_matches_finite_differences() {
        let values = paper_true_values();
        let r = PAPER_ARRIVAL_RATE;
        let sens = latency_sensitivity(&values, r).unwrap();
        let h = 1e-7;
        for i in 0..values.len() {
            let mut up = values.clone();
            up[i] += h;
            let mut down = values.clone();
            down[i] -= h;
            let num = (optimal_latency_linear(&up, r).unwrap()
                - optimal_latency_linear(&down, r).unwrap())
                / (2.0 * h);
            assert!(
                (num - sens[i]).abs() < 1e-4 * sens[i].max(1.0),
                "machine {i}: {num} vs {}",
                sens[i]
            );
        }
    }

    #[test]
    fn fastest_machine_is_the_best_upgrade_target() {
        let values = paper_true_values();
        let target = best_upgrade_target(&values, PAPER_ARRIVAL_RATE).unwrap();
        // C1 (t = 1) is fastest; 1/t² dominates despite the shared S².
        assert_eq!(target, 0);
    }

    #[test]
    fn marginal_contributions_equal_truthful_bonuses() {
        // The mechanism's truthful bonus is the marginal contribution: check
        // C1's published value 400/4.1 - 400/5.1 = 19.13.
        let values = paper_true_values();
        let mc = marginal_contributions(&values, PAPER_ARRIVAL_RATE).unwrap();
        assert!((mc[0] - (400.0 / 4.1 - 400.0 / 5.1)).abs() < 1e-9);
        // Faster machines contribute more.
        assert!(mc[0] > mc[2] && mc[2] > mc[5] && mc[5] > mc[10]);
    }

    proptest! {
        /// Sensitivities are positive and ordered by speed (fastest machine
        /// has the largest ∂L*/∂t).
        #[test]
        fn prop_sensitivity_ordering(
            values in proptest::collection::vec(0.1f64..10.0, 2..12),
            r in 0.5f64..50.0,
        ) {
            let sens = latency_sensitivity(&values, r).unwrap();
            for (i, s) in sens.iter().enumerate() {
                prop_assert!(*s > 0.0, "sensitivity {} not positive", i);
            }
            for i in 0..values.len() {
                for j in 0..values.len() {
                    if values[i] < values[j] {
                        prop_assert!(sens[i] >= sens[j] - 1e-12,
                            "faster machine {} should dominate {}", i, j);
                    }
                }
            }
        }

        /// Marginal contributions are non-negative and sum to less than the
        /// total payment budget (they are the utilities of Figure 3).
        #[test]
        fn prop_marginal_contributions_nonnegative(
            values in proptest::collection::vec(0.1f64..10.0, 2..12),
            r in 0.5f64..50.0,
        ) {
            let mc = marginal_contributions(&values, r).unwrap();
            for (i, c) in mc.iter().enumerate() {
                prop_assert!(*c >= -1e-12, "contribution {} negative: {}", i, c);
            }
        }
    }
}
