//! Classical allocation baselines.
//!
//! The paper's related work contrasts mechanism design with classical load
//! balancing where participants are obedient. These baselines quantify what
//! the PR optimum buys over the naive policies a practitioner might reach
//! for first: equal splitting and weighted round-robin dispatch.

use crate::allocation::{total_latency_linear, validate_rate, Allocation};
use crate::error::CoreError;
use crate::machine::validate_values;

/// Equal split: every machine receives `r/n` regardless of speed.
///
/// # Errors
/// Propagates validation errors.
pub fn equal_split(n: usize, r: f64) -> Result<Allocation, CoreError> {
    if n == 0 {
        return Err(CoreError::EmptySystem);
    }
    validate_rate(r)?;
    Allocation::new(vec![r / n as f64; n], r)
}

/// Weighted round-robin dispatch: integer job quotas proportional to the
/// processing rates `1/values[i]` per cycle of `cycle_len` jobs, converted
/// back to rates. As `cycle_len → ∞` this converges to PR; small cycles
/// quantise the shares (largest-remainder apportionment).
///
/// # Errors
/// Propagates validation errors; `cycle_len` must be at least `1`.
pub fn weighted_round_robin(
    values: &[f64],
    r: f64,
    cycle_len: u32,
) -> Result<Allocation, CoreError> {
    validate_values("latency coefficient", values)?;
    validate_rate(r)?;
    if cycle_len == 0 {
        return Err(CoreError::InvalidParameter {
            name: "cycle_len",
            value: 0.0,
        });
    }
    let inv_sum: f64 = values.iter().map(|t| 1.0 / t).sum();
    // Ideal fractional quotas per cycle.
    let ideal: Vec<f64> = values
        .iter()
        .map(|t| (1.0 / t) / inv_sum * f64::from(cycle_len))
        .collect();
    // Largest-remainder apportionment to integers.
    let mut quotas: Vec<u32> = ideal.iter().map(|q| q.floor() as u32).collect();
    let assigned: u32 = quotas.iter().sum();
    let mut remainders: Vec<(usize, f64)> = ideal
        .iter()
        .enumerate()
        .map(|(i, q)| (i, q - q.floor()))
        .collect();
    // `total_cmp` gives a total order without the panicking `partial_cmp`
    // unwrap; remainders are fractional parts in [0, 1) so NaN cannot occur,
    // but fuzzed inputs should never be able to reach an abort path anyway.
    remainders.sort_by(|a, b| b.1.total_cmp(&a.1));
    for k in 0..(cycle_len - assigned) as usize {
        quotas[remainders[k % remainders.len()].0] += 1;
    }
    let rates: Vec<f64> = quotas
        .iter()
        .map(|&q| f64::from(q) / f64::from(cycle_len) * r)
        .collect();
    Allocation::new(rates, r)
}

/// Latency penalty of an allocation relative to the PR optimum:
/// `L(alloc)/L* − 1`.
///
/// # Errors
/// Propagates validation errors.
pub fn penalty_vs_optimal(alloc: &Allocation, values: &[f64], r: f64) -> Result<f64, CoreError> {
    let l = total_latency_linear(alloc, values)?;
    let opt = crate::allocation::optimal_latency_linear(values, r)?;
    Ok(l / opt - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::pr_allocate;
    use crate::scenario::{paper_true_values, PAPER_ARRIVAL_RATE};
    use proptest::prelude::*;

    #[test]
    fn equal_split_is_uniform_and_feasible() {
        let a = equal_split(4, 8.0).unwrap();
        assert_eq!(a.rates(), &[2.0; 4]);
        assert!(equal_split(0, 1.0).is_err());
    }

    #[test]
    fn equal_split_pays_a_big_penalty_on_the_paper_system() {
        // Equal split on the 10x-heterogeneous Table 1 system:
        // L = (R/n)²·Σt = 1.5625·93 = 145.31 vs the PR optimum 78.43 —
        // an 85% penalty.
        let values = paper_true_values();
        let a = equal_split(values.len(), PAPER_ARRIVAL_RATE).unwrap();
        let penalty = penalty_vs_optimal(&a, &values, PAPER_ARRIVAL_RATE).unwrap();
        assert!((penalty - 0.853).abs() < 0.01, "penalty {penalty}");
    }

    #[test]
    fn round_robin_converges_to_pr_with_long_cycles() {
        let values = paper_true_values();
        let pr = pr_allocate(&values, PAPER_ARRIVAL_RATE).unwrap();
        let wrr = weighted_round_robin(&values, PAPER_ARRIVAL_RATE, 10_000).unwrap();
        for (a, b) in wrr.rates().iter().zip(pr.rates()) {
            // Quantisation error is at most one job per cycle: R/cycle = 2e-3.
            assert!((a - b).abs() <= 2.0e-3 + 1e-12, "{a} vs {b}");
        }
        let penalty = penalty_vs_optimal(&wrr, &values, PAPER_ARRIVAL_RATE).unwrap();
        assert!(penalty < 1e-5, "penalty {penalty}");
    }

    #[test]
    fn short_cycles_quantise_and_cost_latency() {
        let values = paper_true_values();
        let coarse = weighted_round_robin(&values, PAPER_ARRIVAL_RATE, 16).unwrap();
        let fine = weighted_round_robin(&values, PAPER_ARRIVAL_RATE, 1024).unwrap();
        let p_coarse = penalty_vs_optimal(&coarse, &values, PAPER_ARRIVAL_RATE).unwrap();
        let p_fine = penalty_vs_optimal(&fine, &values, PAPER_ARRIVAL_RATE).unwrap();
        assert!(p_coarse > p_fine, "coarse {p_coarse} vs fine {p_fine}");
        assert!(p_coarse >= 0.0 && p_fine >= 0.0);
    }

    #[test]
    fn round_robin_conserves_every_cycle_length() {
        let values = [1.0, 2.0, 7.0];
        for cycle in [1u32, 2, 3, 7, 100] {
            let a = weighted_round_robin(&values, 5.0, cycle).unwrap();
            assert!(a.is_feasible(5.0, 1e-9), "cycle {cycle}");
        }
    }

    proptest! {
        /// PR weakly dominates both baselines on every instance.
        #[test]
        fn prop_pr_dominates_baselines(
            values in proptest::collection::vec(0.1f64..10.0, 1..12),
            r in 0.5f64..50.0,
            cycle in 1u32..64,
        ) {
            let eq = equal_split(values.len(), r).unwrap();
            let wrr = weighted_round_robin(&values, r, cycle).unwrap();
            prop_assert!(penalty_vs_optimal(&eq, &values, r).unwrap() >= -1e-9);
            prop_assert!(penalty_vs_optimal(&wrr, &values, r).unwrap() >= -1e-9);
        }
    }
}
