//! Feasible allocations and the paper's PR (proportional-rate) algorithm.
//!
//! Theorem 2.1 of the paper: for linear latency functions `l_i(x) = t_i·x`,
//! the allocation minimising the total latency `L(x) = Σ t_i x_i²` subject to
//! `Σ x_i = R`, `x_i ≥ 0` is
//!
//! ```text
//! x_i* = (1/t_i) / (Σ_j 1/t_j) · R          (PR algorithm)
//! L*   = R² / (Σ_j 1/t_j)
//! ```
//!
//! i.e. jobs are allocated in proportion to processing rates. These closed
//! forms are the base of both the mechanism (allocation on *bids*) and the
//! bonus term (optimal latency *excluding* one agent).

use crate::error::CoreError;
use crate::latency::LatencyFunction;
use crate::machine::{validate_values, System};
use serde::{Deserialize, Serialize};

/// Default tolerance used when checking allocation feasibility.
pub const FEASIBILITY_TOL: f64 = 1e-9;

/// A job-rate allocation across the machines of a [`System`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    rates: Vec<f64>,
}

impl Allocation {
    /// Wraps raw per-machine rates after validating feasibility against the
    /// total rate `r` (positivity and conservation, to `FEASIBILITY_TOL`
    /// relative tolerance).
    ///
    /// # Errors
    /// Returns [`CoreError::Infeasible`] when a rate is negative/non-finite
    /// or the rates do not sum to `r`.
    pub fn new(rates: Vec<f64>, r: f64) -> Result<Self, CoreError> {
        if rates.is_empty() {
            return Err(CoreError::EmptySystem);
        }
        for (i, &x) in rates.iter().enumerate() {
            if !x.is_finite() || x < 0.0 {
                return Err(CoreError::Infeasible {
                    reason: format!("rate x[{i}] = {x} violates positivity"),
                });
            }
        }
        let sum: f64 = rates.iter().sum();
        if (sum - r).abs() > FEASIBILITY_TOL * r.abs().max(1.0) {
            return Err(CoreError::Infeasible {
                reason: format!("rates sum to {sum}, expected {r}"),
            });
        }
        Ok(Self { rates })
    }

    /// Wraps rates without feasibility checks (for internal construction
    /// where feasibility holds by algebra).
    #[must_use]
    pub(crate) fn from_raw(rates: Vec<f64>) -> Self {
        Self { rates }
    }

    /// Per-machine job rates, in machine order.
    #[must_use]
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Rate assigned to machine `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn rate(&self, i: usize) -> f64 {
        self.rates[i]
    }

    /// Number of machines covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Whether the allocation covers zero machines.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Total allocated rate `Σ x_i`.
    #[must_use]
    pub fn total_rate(&self) -> f64 {
        self.rates.iter().sum()
    }

    /// Checks feasibility against total rate `r` within `tol`.
    #[must_use]
    pub fn is_feasible(&self, r: f64, tol: f64) -> bool {
        self.rates.iter().all(|&x| x.is_finite() && x >= -tol)
            && (self.total_rate() - r).abs() <= tol * r.abs().max(1.0)
    }
}

/// Validates a total arrival rate.
///
/// # Errors
/// Returns [`CoreError::InvalidRate`] unless `r` is finite and positive.
pub fn validate_rate(r: f64) -> Result<(), CoreError> {
    if r.is_finite() && r > 0.0 {
        Ok(())
    } else {
        Err(CoreError::InvalidRate(r))
    }
}

/// The paper's **PR algorithm** (Sec. 2): allocate the total rate `r` in
/// proportion to the processing rates `1/values[i]`.
///
/// `values` are the latency coefficients the allocation is computed *from*:
/// true values in the classical setting, **bids** inside the mechanism.
///
/// ```
/// use lb_core::pr_allocate;
/// // Machine 0 is twice as fast as machine 1: it gets twice the load.
/// let alloc = pr_allocate(&[1.0, 2.0], 3.0)?;
/// assert!((alloc.rate(0) - 2.0).abs() < 1e-12);
/// assert!((alloc.rate(1) - 1.0).abs() < 1e-12);
/// # Ok::<(), lb_core::CoreError>(())
/// ```
///
/// # Errors
/// Returns an error for empty/invalid `values` or an invalid rate.
pub fn pr_allocate(values: &[f64], r: f64) -> Result<Allocation, CoreError> {
    validate_values("latency coefficient", values)?;
    validate_rate(r)?;
    let inv_sum: f64 = values.iter().map(|t| 1.0 / t).sum();
    let rates = values.iter().map(|t| (1.0 / t) / inv_sum * r).collect();
    Ok(Allocation::from_raw(rates))
}

/// Total latency `L(x) = Σ values[i] · x_i²` of an allocation under linear
/// latency coefficients `values` (execution values in the mechanism).
///
/// # Errors
/// Returns [`CoreError::LengthMismatch`] when the arities differ.
pub fn total_latency_linear(alloc: &Allocation, values: &[f64]) -> Result<f64, CoreError> {
    if alloc.len() != values.len() {
        return Err(CoreError::LengthMismatch { expected: values.len(), actual: alloc.len() });
    }
    Ok(alloc.rates().iter().zip(values).map(|(&x, &t)| t * x * x).sum())
}

/// Closed-form minimum total latency for linear latencies (Theorem 2.1):
/// `L* = r² / Σ (1/values[i])`.
///
/// # Errors
/// Returns an error for empty/invalid `values` or an invalid rate.
pub fn optimal_latency_linear(values: &[f64], r: f64) -> Result<f64, CoreError> {
    validate_values("latency coefficient", values)?;
    validate_rate(r)?;
    let inv_sum: f64 = values.iter().map(|t| 1.0 / t).sum();
    Ok(r * r / inv_sum)
}

/// Optimal total latency when machine `exclude` is removed from the system —
/// the `L_{-i}` term of the paper's bonus (Def. 3.3).
///
/// # Errors
/// Returns [`CoreError::EmptySystem`] when fewer than two machines exist
/// (removing the only machine leaves nothing to serve the load), or any
/// validation error from the remaining values.
pub fn optimal_latency_excluding(values: &[f64], exclude: usize, r: f64) -> Result<f64, CoreError> {
    if exclude >= values.len() {
        return Err(CoreError::LengthMismatch { expected: values.len(), actual: exclude });
    }
    if values.len() < 2 {
        return Err(CoreError::EmptySystem);
    }
    let remaining: Vec<f64> =
        values.iter().enumerate().filter(|&(i, _)| i != exclude).map(|(_, &v)| v).collect();
    optimal_latency_linear(&remaining, r)
}

/// Total latency of an allocation under arbitrary latency functions.
///
/// # Errors
/// Returns [`CoreError::LengthMismatch`] when the arities differ.
pub fn total_latency_fn<F: LatencyFunction + ?Sized>(
    alloc: &Allocation,
    fns: &[&F],
) -> Result<f64, CoreError> {
    if alloc.len() != fns.len() {
        return Err(CoreError::LengthMismatch { expected: fns.len(), actual: alloc.len() });
    }
    Ok(alloc.rates().iter().zip(fns).map(|(&x, f)| f.total(x)).sum())
}

/// Convenience: the optimal allocation and latency for a [`System`] when all
/// machines are truthful (classical, obedient setting).
///
/// # Errors
/// Propagates validation errors from [`pr_allocate`].
pub fn classical_optimum(system: &System, r: f64) -> Result<(Allocation, f64), CoreError> {
    let values = system.true_values();
    let alloc = pr_allocate(&values, r)?;
    let latency = total_latency_linear(&alloc, &values)?;
    Ok((alloc, latency))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pr_on_homogeneous_system_splits_evenly() {
        let a = pr_allocate(&[2.0, 2.0, 2.0, 2.0], 8.0).unwrap();
        for &x in a.rates() {
            assert!((x - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pr_is_proportional_to_processing_rates() {
        // t = [1, 2]: machine 0 is twice as fast, gets twice the load.
        let a = pr_allocate(&[1.0, 2.0], 3.0).unwrap();
        assert!((a.rate(0) - 2.0).abs() < 1e-12);
        assert!((a.rate(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pr_single_machine_gets_everything() {
        let a = pr_allocate(&[3.0], 5.0).unwrap();
        assert_eq!(a.rates(), &[5.0]);
    }

    #[test]
    fn pr_conserves_rate() {
        let a = pr_allocate(&[1.0, 2.0, 5.0, 10.0], 20.0).unwrap();
        assert!((a.total_rate() - 20.0).abs() < 1e-9);
        assert!(a.is_feasible(20.0, 1e-9));
    }

    #[test]
    fn optimal_latency_matches_direct_evaluation() {
        let values = [1.0, 2.0, 5.0];
        let r = 7.0;
        let a = pr_allocate(&values, r).unwrap();
        let direct = total_latency_linear(&a, &values).unwrap();
        let closed = optimal_latency_linear(&values, r).unwrap();
        assert!((direct - closed).abs() < 1e-9, "{direct} vs {closed}");
    }

    #[test]
    fn paper_minimum_latency_is_reproduced() {
        // Table 1 system + R = 20 -> L* = 400/5.1 = 78.43 (paper, True1).
        let values = crate::scenario::paper_true_values();
        let l = optimal_latency_linear(&values, 20.0).unwrap();
        assert!((l - 78.431_372_549_019_6).abs() < 1e-9, "L* = {l}");
    }

    #[test]
    fn excluding_machine_raises_optimal_latency() {
        let values = [1.0, 2.0, 4.0];
        let r = 5.0;
        let all = optimal_latency_linear(&values, r).unwrap();
        for i in 0..values.len() {
            let without = optimal_latency_excluding(&values, i, r).unwrap();
            assert!(without > all, "excluding {i}: {without} <= {all}");
        }
    }

    #[test]
    fn excluding_fastest_hurts_most() {
        let values = [1.0, 2.0, 4.0];
        let r = 5.0;
        let w0 = optimal_latency_excluding(&values, 0, r).unwrap();
        let w2 = optimal_latency_excluding(&values, 2, r).unwrap();
        assert!(w0 > w2);
    }

    #[test]
    fn excluding_from_singleton_system_errors() {
        assert!(matches!(
            optimal_latency_excluding(&[1.0], 0, 2.0),
            Err(CoreError::EmptySystem)
        ));
    }

    #[test]
    fn excluding_out_of_range_errors() {
        assert!(optimal_latency_excluding(&[1.0, 2.0], 5, 2.0).is_err());
    }

    #[test]
    fn allocation_validation_rejects_bad_rates() {
        assert!(Allocation::new(vec![1.0, -0.5], 0.5).is_err());
        assert!(Allocation::new(vec![1.0, f64::NAN], 1.0).is_err());
        assert!(Allocation::new(vec![1.0, 1.0], 3.0).is_err()); // conservation
        assert!(Allocation::new(vec![], 0.0).is_err());
        assert!(Allocation::new(vec![2.0, 1.0], 3.0).is_ok());
    }

    #[test]
    fn total_latency_linear_known_value() {
        let a = Allocation::new(vec![2.0, 1.0], 3.0).unwrap();
        // L = 1*4 + 2*1 = 6.
        let l = total_latency_linear(&a, &[1.0, 2.0]).unwrap();
        assert!((l - 6.0).abs() < 1e-12);
    }

    #[test]
    fn total_latency_fn_matches_linear_path() {
        use crate::latency::Linear;
        let a = Allocation::new(vec![2.0, 1.0], 3.0).unwrap();
        let f0 = Linear::new(1.0);
        let f1 = Linear::new(2.0);
        let fns: Vec<&dyn LatencyFunction> = vec![&f0, &f1];
        let via_fn = total_latency_fn(&a, &fns).unwrap();
        let via_lin = total_latency_linear(&a, &[1.0, 2.0]).unwrap();
        assert!((via_fn - via_lin).abs() < 1e-12);
    }

    #[test]
    fn arity_mismatches_are_reported() {
        let a = Allocation::new(vec![1.0], 1.0).unwrap();
        assert!(matches!(
            total_latency_linear(&a, &[1.0, 2.0]),
            Err(CoreError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn invalid_rate_is_rejected() {
        assert!(pr_allocate(&[1.0], 0.0).is_err());
        assert!(pr_allocate(&[1.0], -3.0).is_err());
        assert!(pr_allocate(&[1.0], f64::INFINITY).is_err());
        assert!(optimal_latency_linear(&[1.0], f64::NAN).is_err());
    }

    #[test]
    fn classical_optimum_on_system() {
        let sys = System::from_true_values(&[1.0, 3.0]).unwrap();
        let (alloc, latency) = classical_optimum(&sys, 4.0).unwrap();
        assert!((alloc.rate(0) - 3.0).abs() < 1e-12);
        assert!((alloc.rate(1) - 1.0).abs() < 1e-12);
        assert!((latency - (1.0 * 9.0 + 3.0 * 1.0)).abs() < 1e-12);
    }

    proptest! {
        /// PR allocations are always feasible.
        #[test]
        fn prop_pr_is_feasible(
            values in proptest::collection::vec(0.01f64..100.0, 1..32),
            r in 0.01f64..1e4,
        ) {
            let a = pr_allocate(&values, r).unwrap();
            prop_assert!(a.is_feasible(r, 1e-6));
        }

        /// PR matches the closed-form optimum and no feasible perturbation
        /// improves on it (local optimality certificate of Theorem 2.1).
        #[test]
        fn prop_pr_is_unimprovable(
            values in proptest::collection::vec(0.05f64..20.0, 2..12),
            r in 0.1f64..100.0,
            from in 0usize..12,
            to in 0usize..12,
            frac in 0.01f64..0.5,
        ) {
            let n = values.len();
            let from = from % n;
            let to = to % n;
            prop_assume!(from != to);
            let a = pr_allocate(&values, r).unwrap();
            let base = total_latency_linear(&a, &values).unwrap();

            // Move a fraction of machine `from`'s load to machine `to`.
            let delta = a.rate(from) * frac;
            let mut rates = a.rates().to_vec();
            rates[from] -= delta;
            rates[to] += delta;
            let perturbed = Allocation::from_raw(rates);
            let worse = total_latency_linear(&perturbed, &values).unwrap();
            prop_assert!(worse >= base - 1e-9 * base.abs().max(1.0),
                "perturbation improved latency: {} < {}", worse, base);
        }

        /// The closed-form optimum equals the PR allocation's latency.
        #[test]
        fn prop_closed_form_consistency(
            values in proptest::collection::vec(0.05f64..20.0, 1..16),
            r in 0.1f64..100.0,
        ) {
            let a = pr_allocate(&values, r).unwrap();
            let direct = total_latency_linear(&a, &values).unwrap();
            let closed = optimal_latency_linear(&values, r).unwrap();
            prop_assert!((direct - closed).abs() < 1e-7 * closed.max(1.0));
        }

        /// Scaling all true values leaves the PR allocation unchanged
        /// (only relative speeds matter).
        #[test]
        fn prop_pr_scale_invariance(
            values in proptest::collection::vec(0.05f64..20.0, 1..16),
            r in 0.1f64..100.0,
            scale in 0.1f64..10.0,
        ) {
            let a = pr_allocate(&values, r).unwrap();
            let scaled: Vec<f64> = values.iter().map(|v| v * scale).collect();
            let b = pr_allocate(&scaled, r).unwrap();
            for (x, y) in a.rates().iter().zip(b.rates()) {
                prop_assert!((x - y).abs() < 1e-9 * x.abs().max(1.0));
            }
        }
    }
}
