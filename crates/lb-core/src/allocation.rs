//! Feasible allocations and the paper's PR (proportional-rate) algorithm.
//!
//! Theorem 2.1 of the paper: for linear latency functions `l_i(x) = t_i·x`,
//! the allocation minimising the total latency `L(x) = Σ t_i x_i²` subject to
//! `Σ x_i = R`, `x_i ≥ 0` is
//!
//! ```text
//! x_i* = (1/t_i) / (Σ_j 1/t_j) · R          (PR algorithm)
//! L*   = R² / (Σ_j 1/t_j)
//! ```
//!
//! i.e. jobs are allocated in proportion to processing rates. These closed
//! forms are the base of both the mechanism (allocation on *bids*) and the
//! bonus term (optimal latency *excluding* one agent).

use crate::error::CoreError;
use crate::latency::LatencyFunction;
use crate::machine::{validate_values, System};
use crate::numeric::{compensated_sum, feasibility_tolerance, inv_sum_dd, TwoF64};
use serde::{Deserialize, Serialize};

/// Default base tolerance used when checking allocation feasibility.
///
/// The effective window is scale- and size-aware: see
/// [`crate::numeric::feasibility_tolerance`].
pub const FEASIBILITY_TOL: f64 = crate::numeric::FEASIBILITY_TOL;

/// A job-rate allocation across the machines of a [`System`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    rates: Vec<f64>,
}

impl Allocation {
    /// Wraps raw per-machine rates after validating feasibility against the
    /// total rate `r` (positivity and conservation).
    ///
    /// Conservation is checked with a compensated (Neumaier) sum against the
    /// scale- and size-aware window of
    /// [`crate::numeric::feasibility_tolerance`], so algebraically exact
    /// allocations are accepted even at `n = 10_000` machines with latency
    /// parameters spread over twelve orders of magnitude.
    ///
    /// # Errors
    /// Returns [`CoreError::Infeasible`] when a rate is negative/non-finite
    /// or the rates do not sum to `r`.
    pub fn new(rates: Vec<f64>, r: f64) -> Result<Self, CoreError> {
        if rates.is_empty() {
            return Err(CoreError::EmptySystem);
        }
        for (i, &x) in rates.iter().enumerate() {
            if !x.is_finite() || x < 0.0 {
                return Err(CoreError::Infeasible {
                    reason: format!("rate x[{i}] = {x} violates positivity"),
                });
            }
        }
        let sum = compensated_sum(rates.iter().copied());
        if (sum - r).abs() > feasibility_tolerance(rates.len(), r) {
            return Err(CoreError::Infeasible {
                reason: format!("rates sum to {sum}, expected {r}"),
            });
        }
        Ok(Self { rates })
    }

    /// Wraps rates without feasibility checks (for internal construction
    /// where feasibility holds by algebra).
    #[must_use]
    pub(crate) fn from_raw(rates: Vec<f64>) -> Self {
        Self { rates }
    }

    /// Per-machine job rates, in machine order.
    #[must_use]
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Rate assigned to machine `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn rate(&self, i: usize) -> f64 {
        self.rates[i]
    }

    /// Number of machines covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Whether the allocation covers zero machines.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Total allocated rate `Σ x_i` (compensated sum).
    #[must_use]
    pub fn total_rate(&self) -> f64 {
        compensated_sum(self.rates.iter().copied())
    }

    /// Checks feasibility against total rate `r` within `tol`.
    #[must_use]
    pub fn is_feasible(&self, r: f64, tol: f64) -> bool {
        self.rates.iter().all(|&x| x.is_finite() && x >= -tol)
            && (self.total_rate() - r).abs() <= tol * r.abs().max(1.0)
    }
}

/// Validates a total arrival rate.
///
/// # Errors
/// Returns [`CoreError::InvalidRate`] unless `r` is finite and positive.
pub fn validate_rate(r: f64) -> Result<(), CoreError> {
    if r.is_finite() && r > 0.0 {
        Ok(())
    } else {
        Err(CoreError::InvalidRate(r))
    }
}

/// The paper's **PR algorithm** (Sec. 2): allocate the total rate `r` in
/// proportion to the processing rates `1/values[i]`.
///
/// `values` are the latency coefficients the allocation is computed *from*:
/// true values in the classical setting, **bids** inside the mechanism.
///
/// ```
/// use lb_core::pr_allocate;
/// // Machine 0 is twice as fast as machine 1: it gets twice the load.
/// let alloc = pr_allocate(&[1.0, 2.0], 3.0)?;
/// assert!((alloc.rate(0) - 2.0).abs() < 1e-12);
/// assert!((alloc.rate(1) - 1.0).abs() < 1e-12);
/// # Ok::<(), lb_core::CoreError>(())
/// ```
///
/// # Errors
/// Returns an error for empty/invalid `values` or an invalid rate, and
/// [`CoreError::NumericalOverflow`] if `Σ 1/t_j` leaves the finite range
/// (possible only near the extreme ends of the validated parameter domain).
pub fn pr_allocate(values: &[f64], r: f64) -> Result<Allocation, CoreError> {
    validate_values("latency coefficient", values)?;
    validate_rate(r)?;
    pr_allocate_with_sum(values, r, inv_sum_dd(values))
}

/// [`pr_allocate`] against a precomputed harmonic sum `s = Σ 1/values[j]`.
///
/// The shard tier computes `s` by merging per-shard [`TwoF64`] partials
/// ([`crate::numeric::merge_inv_sums`]); the root allocates every
/// respondent's rate against that one merged sum. Passing
/// `inv_sum_dd(values)` reproduces [`pr_allocate`] bit for bit — the rates
/// divide by the `f64`-rounded sum either way, so any two `s` arguments
/// that round to the same `f64` yield identical allocations.
///
/// `values` must already be validated (positive, finite, non-subnormal):
/// this entry point re-checks only the sum and the rate, since its callers
/// (the root coordinator, [`pr_allocate`]) have validated per-machine bids
/// on ingestion.
///
/// # Errors
/// Returns an error for an invalid rate, and
/// [`CoreError::NumericalOverflow`] if `s` or a rate leaves the finite
/// positive range.
pub fn pr_allocate_with_sum(values: &[f64], r: f64, s: TwoF64) -> Result<Allocation, CoreError> {
    validate_rate(r)?;
    let inv_sum = s.value();
    if !inv_sum.is_finite() || inv_sum <= 0.0 {
        return Err(CoreError::NumericalOverflow {
            what: "sum of inverse latency coefficients",
        });
    }
    let rates: Vec<f64> = values.iter().map(|t| (1.0 / t) / inv_sum * r).collect();
    if rates.iter().any(|x| !x.is_finite()) {
        return Err(CoreError::NumericalOverflow {
            what: "PR allocation rate",
        });
    }
    Ok(Allocation::from_raw(rates))
}

/// Total latency `L(x) = Σ values[i] · x_i²` of an allocation under linear
/// latency coefficients `values` (execution values in the mechanism).
///
/// # Errors
/// Returns [`CoreError::LengthMismatch`] when the arities differ, or
/// [`CoreError::NumericalOverflow`] when a `t·x²` term or the sum leaves the
/// finite `f64` range.
pub fn total_latency_linear(alloc: &Allocation, values: &[f64]) -> Result<f64, CoreError> {
    if alloc.len() != values.len() {
        return Err(CoreError::LengthMismatch {
            expected: values.len(),
            actual: alloc.len(),
        });
    }
    let latency = compensated_sum(alloc.rates().iter().zip(values).map(|(&x, &t)| t * x * x));
    if latency.is_finite() {
        Ok(latency)
    } else {
        Err(CoreError::NumericalOverflow {
            what: "total latency Σ t_i·x_i²",
        })
    }
}

/// Closed-form minimum total latency for linear latencies (Theorem 2.1):
/// `L* = r² / Σ (1/values[i])`.
///
/// # Errors
/// Returns an error for empty/invalid `values` or an invalid rate, or
/// [`CoreError::NumericalOverflow`] when the result leaves the finite range.
pub fn optimal_latency_linear(values: &[f64], r: f64) -> Result<f64, CoreError> {
    validate_values("latency coefficient", values)?;
    validate_rate(r)?;
    let inv_sum = compensated_sum(values.iter().map(|t| 1.0 / t));
    if !inv_sum.is_finite() || inv_sum <= 0.0 {
        return Err(CoreError::NumericalOverflow {
            what: "sum of inverse latency coefficients",
        });
    }
    // `r · (r / inv_sum)` delays overflow vs. `r² / inv_sum` when r is huge
    // and inv_sum is large enough to bring the quotient back in range.
    let latency = r * (r / inv_sum);
    if latency.is_finite() {
        Ok(latency)
    } else {
        Err(CoreError::NumericalOverflow {
            what: "optimal latency r²/Σ(1/t_j)",
        })
    }
}

/// When the double-double residual `S − 1/t_i` retains fewer significant
/// digits than this fraction of `S`, the batch kernel re-sums the surviving
/// reciprocals directly instead of trusting the subtraction.
///
/// A double-double carries ~106 bits (≈ 1e-32 relative), so a residual down
/// to `1e-18·S` still keeps ≥ 14 good digits after the subtraction — far
/// inside the `1e-12` equivalence bar. Only a machine whose reciprocal
/// dominates `S` by eighteen orders of magnitude trips the fallback, and at
/// most one machine can dominate at a time, so the kernel stays O(n).
const LOO_RESIDUAL_GUARD: f64 = 1e-18;

/// `S − 1/values[i]` at double-double precision, with the dominant-machine
/// fallback re-summing the surviving reciprocals directly.
fn loo_residual(s: TwoF64, values: &[f64], i: usize) -> TwoF64 {
    let diff = s.sub(TwoF64::recip(values[i]));
    if diff.hi > LOO_RESIDUAL_GUARD * s.hi {
        diff
    } else {
        // Machine `i` contributes essentially all of `S`: rebuild the
        // residual exactly from the other reciprocals (cancellation-free).
        values
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .fold(TwoF64::ZERO, |acc, (_, &t)| acc.add(TwoF64::recip(t)))
    }
}

/// All leave-one-out optima of Theorem 2.1 in **one O(n) pass**.
///
/// The payment rule (Def. 3.3) needs `L_{-i}` — the optimal latency with
/// machine `i` excluded — for *every* machine of a settle phase. Computing
/// each by rebuilding the surviving bid vector is O(n²) time and O(n²)
/// allocation; by Theorem 2.1 the whole batch follows from a single
/// harmonic sum `S = Σ_j 1/t_j`:
///
/// ```text
/// L*      = R² / S
/// L_{-i}  = R² / (S − 1/t_i)
/// L_{-i} − L* = R² · (1/t_i) / (S · (S − 1/t_i))
/// ```
///
/// Two numerical hazards are handled explicitly:
///
/// * **Residual cancellation.** When machine `i` dominates (`1/t_i ≈ S`),
///   `S − 1/t_i` cancels catastrophically in `f64`. The kernel accumulates
///   `S` as a [`TwoF64`] double-double and performs the subtraction at that
///   precision (with a direct re-sum fallback past the ~1e-18 domination
///   point), so the residual — and with it `L_{-i}` — stays accurate to
///   better than `1e-12` relative everywhere in the validated domain.
/// * **Marginal cancellation.** The truthful bonus `L_{-i} − L*` is a
///   difference of two near-equal `O(R²/S)` quantities whenever machine `i`
///   contributes little; at large `n` the subtractive form loses *all*
///   significant digits. [`Self::marginals`] therefore evaluates the third
///   closed form above, which never subtracts near-equal quantities.
///
/// ```
/// use lb_core::allocation::{optimal_latency_excluding, LeaveOneOut};
/// let bids = [1.0, 2.0, 4.0];
/// let loo = LeaveOneOut::compute(&bids, 10.0)?;
/// for i in 0..bids.len() {
///     let one_shot = optimal_latency_excluding(&bids, i, 10.0)?;
///     assert!((loo.excluding(i) - one_shot).abs() < 1e-12 * one_shot);
/// }
/// # Ok::<(), lb_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LeaveOneOut {
    optimal: f64,
    excluding: Vec<f64>,
    marginals: Vec<f64>,
}

impl LeaveOneOut {
    /// Runs the batch kernel over `values` (bids inside the mechanism, true
    /// values in sensitivity analysis) at total arrival rate `r`.
    ///
    /// # Errors
    /// Returns [`CoreError::EmptySystem`] when fewer than two machines exist
    /// (removing the only machine leaves nothing to serve the load), any
    /// validation error from `values`/`r`, or
    /// [`CoreError::NumericalOverflow`] when a latency leaves the finite
    /// range.
    pub fn compute(values: &[f64], r: f64) -> Result<Self, CoreError> {
        validate_values("latency coefficient", values)?;
        Self::compute_with_sum(values, r, inv_sum_dd(values))
    }

    /// The batch kernel against a precomputed harmonic sum `s = Σ 1/values[j]`
    /// — the settle-phase twin of [`pr_allocate_with_sum`].
    ///
    /// The root coordinator of a sharded round passes the tree-merged
    /// [`TwoF64`] partial sums here so the allocation and the payments are
    /// computed against the *same* `S`. Passing `inv_sum_dd(values)`
    /// reproduces [`LeaveOneOut::compute`] bit for bit. `values` must
    /// already be validated; the dominant-machine fallback inside still
    /// re-sums `values` directly when the residual `s − 1/t_i` cancels.
    ///
    /// # Errors
    /// Same contract as [`LeaveOneOut::compute`].
    pub fn compute_with_sum(values: &[f64], r: f64, s: TwoF64) -> Result<Self, CoreError> {
        if values.len() < 2 {
            return Err(CoreError::EmptySystem);
        }
        validate_rate(r)?;
        if !s.hi.is_finite() || s.hi <= 0.0 {
            return Err(CoreError::NumericalOverflow {
                what: "sum of inverse latency coefficients",
            });
        }
        // `(r/S)·r` delays overflow exactly like the legacy
        // `optimal_latency_linear` ordering `r · (r / inv_sum)`.
        let optimal = TwoF64::from_f64(r).div(s).mul_f64(r).value();
        if !optimal.is_finite() {
            return Err(CoreError::NumericalOverflow {
                what: "optimal latency r²/Σ(1/t_j)",
            });
        }
        let mut excluding = Vec::with_capacity(values.len());
        let mut marginals = Vec::with_capacity(values.len());
        for (i, &t) in values.iter().enumerate() {
            let s_minus = loo_residual(s, values, i);
            let l_minus_dd = TwoF64::from_f64(r).div(s_minus).mul_f64(r);
            let l_minus = l_minus_dd.value();
            // Cancellation-free closed form: share_i = (1/t_i)/S ∈ (0, 1],
            // then marginal = L_{-i} · share_i — no subtraction of
            // near-equal O(R²/S) quantities anywhere.
            let marginal = TwoF64::recip(t).div(s).mul(l_minus_dd).value();
            if !l_minus.is_finite() || !marginal.is_finite() {
                return Err(CoreError::NumericalOverflow {
                    what: "leave-one-out latency r²/(S − 1/t_i)",
                });
            }
            excluding.push(l_minus);
            marginals.push(marginal);
        }
        Ok(Self {
            optimal,
            excluding,
            marginals,
        })
    }

    /// The full-system optimum `L* = R²/S`.
    #[must_use]
    pub fn optimal_latency(&self) -> f64 {
        self.optimal
    }

    /// `L_{-i}` for machine `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn excluding(&self, i: usize) -> f64 {
        self.excluding[i]
    }

    /// All `L_{-i}`, in machine order.
    #[must_use]
    pub fn all_excluding(&self) -> &[f64] {
        &self.excluding
    }

    /// The marginal contribution `L_{-i} − L*` of machine `i`, via the
    /// cancellation-free closed form.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn marginal(&self, i: usize) -> f64 {
        self.marginals[i]
    }

    /// All marginal contributions, in machine order.
    #[must_use]
    pub fn marginals(&self) -> &[f64] {
        &self.marginals
    }

    /// Number of machines covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.excluding.len()
    }

    /// Whether the batch covers zero machines (never true for a constructed
    /// value — `compute` requires two machines — but keeps clippy's
    /// `len_without_is_empty` contract honest).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.excluding.is_empty()
    }
}

/// Optimal total latency when machine `exclude` is removed from the system —
/// the `L_{-i}` term of the paper's bonus (Def. 3.3).
///
/// A thin delegating shim over the [`LeaveOneOut`] batch kernel's single-
/// index path: `L_{-i} = R²/(S − 1/t_i)` with the subtraction done in
/// double-double, and **no per-call allocation** (the old implementation
/// cloned the surviving values into a fresh `Vec` on every call). Callers
/// that need `L_{-i}` for *all* machines should use [`LeaveOneOut::compute`]
/// — one batch call is O(n), n shim calls are O(n²).
///
/// # Errors
/// Returns [`CoreError::EmptySystem`] when fewer than two machines exist
/// (removing the only machine leaves nothing to serve the load), or any
/// validation error from the values or the rate.
pub fn optimal_latency_excluding(values: &[f64], exclude: usize, r: f64) -> Result<f64, CoreError> {
    if exclude >= values.len() {
        return Err(CoreError::LengthMismatch {
            expected: values.len(),
            actual: exclude,
        });
    }
    if values.len() < 2 {
        return Err(CoreError::EmptySystem);
    }
    validate_values("latency coefficient", values)?;
    validate_rate(r)?;
    let s = inv_sum_dd(values);
    if !s.hi.is_finite() || s.hi <= 0.0 {
        return Err(CoreError::NumericalOverflow {
            what: "sum of inverse latency coefficients",
        });
    }
    let s_minus = loo_residual(s, values, exclude);
    let latency = TwoF64::from_f64(r).div(s_minus).mul_f64(r).value();
    if latency.is_finite() {
        Ok(latency)
    } else {
        Err(CoreError::NumericalOverflow {
            what: "leave-one-out latency r²/(S − 1/t_i)",
        })
    }
}

/// The pre-batch `L_{-i}` implementation: clone the surviving values into a
/// fresh `Vec` and re-run [`optimal_latency_linear`] — O(n) time *and* O(n)
/// allocation per call, O(n²) for a full settle phase.
///
/// Kept (not `#[doc(hidden)]`) as the differential reference the fuzz
/// payment oracle, the equivalence proptests and the `payment_scaling`
/// bench judge the batch kernel against. Production code must never call
/// it in a loop.
///
/// # Errors
/// Same contract as [`optimal_latency_excluding`].
pub fn optimal_latency_excluding_legacy(
    values: &[f64],
    exclude: usize,
    r: f64,
) -> Result<f64, CoreError> {
    if exclude >= values.len() {
        return Err(CoreError::LengthMismatch {
            expected: values.len(),
            actual: exclude,
        });
    }
    if values.len() < 2 {
        return Err(CoreError::EmptySystem);
    }
    let remaining: Vec<f64> = values
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != exclude)
        .map(|(_, &v)| v)
        .collect();
    optimal_latency_linear(&remaining, r)
}

/// Total latency of an allocation under arbitrary latency functions.
///
/// # Errors
/// Returns [`CoreError::LengthMismatch`] when the arities differ.
pub fn total_latency_fn<F: LatencyFunction + ?Sized>(
    alloc: &Allocation,
    fns: &[&F],
) -> Result<f64, CoreError> {
    if alloc.len() != fns.len() {
        return Err(CoreError::LengthMismatch {
            expected: fns.len(),
            actual: alloc.len(),
        });
    }
    Ok(compensated_sum(
        alloc.rates().iter().zip(fns).map(|(&x, f)| f.total(x)),
    ))
}

/// Convenience: the optimal allocation and latency for a [`System`] when all
/// machines are truthful (classical, obedient setting).
///
/// # Errors
/// Propagates validation errors from [`pr_allocate`].
pub fn classical_optimum(system: &System, r: f64) -> Result<(Allocation, f64), CoreError> {
    let values = system.true_values();
    let alloc = pr_allocate(&values, r)?;
    let latency = total_latency_linear(&alloc, &values)?;
    Ok((alloc, latency))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pr_on_homogeneous_system_splits_evenly() {
        let a = pr_allocate(&[2.0, 2.0, 2.0, 2.0], 8.0).unwrap();
        for &x in a.rates() {
            assert!((x - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pr_is_proportional_to_processing_rates() {
        // t = [1, 2]: machine 0 is twice as fast, gets twice the load.
        let a = pr_allocate(&[1.0, 2.0], 3.0).unwrap();
        assert!((a.rate(0) - 2.0).abs() < 1e-12);
        assert!((a.rate(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pr_single_machine_gets_everything() {
        let a = pr_allocate(&[3.0], 5.0).unwrap();
        assert_eq!(a.rates(), &[5.0]);
    }

    #[test]
    fn pr_conserves_rate() {
        let a = pr_allocate(&[1.0, 2.0, 5.0, 10.0], 20.0).unwrap();
        assert!((a.total_rate() - 20.0).abs() < 1e-9);
        assert!(a.is_feasible(20.0, 1e-9));
    }

    #[test]
    fn optimal_latency_matches_direct_evaluation() {
        let values = [1.0, 2.0, 5.0];
        let r = 7.0;
        let a = pr_allocate(&values, r).unwrap();
        let direct = total_latency_linear(&a, &values).unwrap();
        let closed = optimal_latency_linear(&values, r).unwrap();
        assert!((direct - closed).abs() < 1e-9, "{direct} vs {closed}");
    }

    #[test]
    fn paper_minimum_latency_is_reproduced() {
        // Table 1 system + R = 20 -> L* = 400/5.1 = 78.43 (paper, True1).
        let values = crate::scenario::paper_true_values();
        let l = optimal_latency_linear(&values, 20.0).unwrap();
        assert!((l - 78.431_372_549_019_6).abs() < 1e-9, "L* = {l}");
    }

    #[test]
    fn excluding_machine_raises_optimal_latency() {
        let values = [1.0, 2.0, 4.0];
        let r = 5.0;
        let all = optimal_latency_linear(&values, r).unwrap();
        for i in 0..values.len() {
            let without = optimal_latency_excluding(&values, i, r).unwrap();
            assert!(without > all, "excluding {i}: {without} <= {all}");
        }
    }

    #[test]
    fn excluding_fastest_hurts_most() {
        let values = [1.0, 2.0, 4.0];
        let r = 5.0;
        let w0 = optimal_latency_excluding(&values, 0, r).unwrap();
        let w2 = optimal_latency_excluding(&values, 2, r).unwrap();
        assert!(w0 > w2);
    }

    #[test]
    fn excluding_from_singleton_system_errors() {
        assert!(matches!(
            optimal_latency_excluding(&[1.0], 0, 2.0),
            Err(CoreError::EmptySystem)
        ));
        assert!(matches!(
            LeaveOneOut::compute(&[1.0], 2.0),
            Err(CoreError::EmptySystem)
        ));
        assert!(matches!(
            optimal_latency_excluding_legacy(&[1.0], 0, 2.0),
            Err(CoreError::EmptySystem)
        ));
    }

    #[test]
    fn excluding_out_of_range_errors() {
        assert!(optimal_latency_excluding(&[1.0, 2.0], 5, 2.0).is_err());
        assert!(optimal_latency_excluding_legacy(&[1.0, 2.0], 5, 2.0).is_err());
    }

    #[test]
    fn batch_matches_shim_legacy_and_hand_computation() {
        let values = [1.0, 2.0, 4.0];
        let r = 10.0;
        let loo = LeaveOneOut::compute(&values, r).unwrap();
        assert_eq!(loo.len(), 3);
        assert!(!loo.is_empty());
        // S = 1.75 ⇒ L* = 100/1.75; S_{-0} = 0.75 ⇒ L_{-0} = 100/0.75.
        assert!((loo.optimal_latency() - 100.0 / 1.75).abs() < 1e-9);
        assert!((loo.excluding(0) - 100.0 / 0.75).abs() < 1e-9);
        for i in 0..values.len() {
            let shim = optimal_latency_excluding(&values, i, r).unwrap();
            let legacy = optimal_latency_excluding_legacy(&values, i, r).unwrap();
            assert!((loo.excluding(i) - shim).abs() < 1e-12 * shim);
            assert!((loo.excluding(i) - legacy).abs() < 1e-12 * legacy);
            let subtractive = legacy - optimal_latency_linear(&values, r).unwrap();
            assert!(
                (loo.marginal(i) - subtractive).abs() < 1e-9 * subtractive.abs().max(1.0),
                "marginal {i}: {} vs {subtractive}",
                loo.marginal(i)
            );
        }
    }

    #[test]
    fn batch_survives_a_dominant_machine() {
        // Machine 0's reciprocal carries ~1e24 times the rest of S: the f64
        // subtraction S − 1/t_0 would cancel every significant digit, and
        // even the double-double residual trips the fallback guard. The
        // batch answer must still match the legacy rebuilt sum tightly.
        let values = [1e-12, 1e12, 2e12, 4e12];
        let r = 1.0;
        let loo = LeaveOneOut::compute(&values, r).unwrap();
        for i in 0..values.len() {
            let legacy = optimal_latency_excluding_legacy(&values, i, r).unwrap();
            let rel = (loo.excluding(i) - legacy).abs() / legacy;
            assert!(rel < 1e-12, "machine {i}: rel err {rel:e}");
        }
        // The dominant machine's marginal is enormous; the slow machines'
        // marginals are minuscule — and still positive and accurate.
        assert!(loo.marginal(0) > 0.0);
        for i in 1..values.len() {
            assert!(loo.marginal(i) > 0.0, "marginal {i} not positive");
        }
    }

    #[test]
    fn batch_rejects_degenerate_inputs_with_typed_errors() {
        assert!(matches!(
            LeaveOneOut::compute(&[f64::MIN_POSITIVE / 2.0, 1.0], 1.0),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(matches!(
            LeaveOneOut::compute(&[1.0, 2.0], f64::NAN),
            Err(CoreError::InvalidRate(_))
        ));
        // Overflow: r²/(S − 1/t_i) past f64::MAX answers with a typed error.
        assert!(matches!(
            LeaveOneOut::compute(&[1e250, 1e250], 1e200),
            Err(CoreError::NumericalOverflow { .. })
        ));
    }

    #[test]
    fn with_sum_entry_points_reproduce_the_plain_kernels_bitwise() {
        let values = [1.0, 2.0, 4.0, 9.5, 0.3];
        let r = 20.0;
        let s = crate::numeric::inv_sum_dd(&values);
        let plain = pr_allocate(&values, r).unwrap();
        let with_sum = pr_allocate_with_sum(&values, r, s).unwrap();
        for i in 0..values.len() {
            assert_eq!(plain.rate(i).to_bits(), with_sum.rate(i).to_bits());
        }
        let loo = LeaveOneOut::compute(&values, r).unwrap();
        let loo_sum = LeaveOneOut::compute_with_sum(&values, r, s).unwrap();
        for i in 0..values.len() {
            assert_eq!(loo.excluding(i).to_bits(), loo_sum.excluding(i).to_bits());
            assert_eq!(loo.marginal(i).to_bits(), loo_sum.marginal(i).to_bits());
        }
    }

    #[test]
    fn shard_count_is_a_no_op_for_allocations_and_payments() {
        // Pinned shard-count-invariance regression: merging per-shard TwoF64
        // harmonic partials must yield bit-identical allocations and
        // leave-one-out latencies (hence payments) for every shard count.
        // Merging post-rounded f64 partials breaks this — see the
        // `merge_inv_sums` docs for the error analysis.
        use crate::numeric::{inv_sum_dd, merge_inv_sums};
        let n: usize = 4096;
        #[allow(clippy::cast_precision_loss)]
        let values: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        let r = 20.0;
        let reference_alloc = pr_allocate(&values, r).unwrap();
        let reference_loo = LeaveOneOut::compute(&values, r).unwrap();
        for k in [1usize, 2, 7, 64] {
            let chunk = n.div_ceil(k);
            let partials: Vec<_> = values.chunks(chunk).map(inv_sum_dd).collect();
            let merged = merge_inv_sums(&partials);
            let alloc = pr_allocate_with_sum(&values, r, merged).unwrap();
            let loo = LeaveOneOut::compute_with_sum(&values, r, merged).unwrap();
            for i in 0..n {
                assert_eq!(
                    alloc.rate(i).to_bits(),
                    reference_alloc.rate(i).to_bits(),
                    "k = {k}, machine {i}: rate diverged"
                );
                assert_eq!(
                    loo.excluding(i).to_bits(),
                    reference_loo.excluding(i).to_bits(),
                    "k = {k}, machine {i}: L_-i diverged"
                );
                assert_eq!(
                    loo.marginal(i).to_bits(),
                    reference_loo.marginal(i).to_bits(),
                    "k = {k}, machine {i}: marginal diverged"
                );
            }
        }
    }

    #[test]
    fn allocation_validation_rejects_bad_rates() {
        assert!(Allocation::new(vec![1.0, -0.5], 0.5).is_err());
        assert!(Allocation::new(vec![1.0, f64::NAN], 1.0).is_err());
        assert!(Allocation::new(vec![1.0, 1.0], 3.0).is_err()); // conservation
        assert!(Allocation::new(vec![], 0.0).is_err());
        assert!(Allocation::new(vec![2.0, 1.0], 3.0).is_ok());
    }

    #[test]
    fn total_latency_linear_known_value() {
        let a = Allocation::new(vec![2.0, 1.0], 3.0).unwrap();
        // L = 1*4 + 2*1 = 6.
        let l = total_latency_linear(&a, &[1.0, 2.0]).unwrap();
        assert!((l - 6.0).abs() < 1e-12);
    }

    #[test]
    fn total_latency_fn_matches_linear_path() {
        use crate::latency::Linear;
        let a = Allocation::new(vec![2.0, 1.0], 3.0).unwrap();
        let f0 = Linear::new(1.0);
        let f1 = Linear::new(2.0);
        let fns: Vec<&dyn LatencyFunction> = vec![&f0, &f1];
        let via_fn = total_latency_fn(&a, &fns).unwrap();
        let via_lin = total_latency_linear(&a, &[1.0, 2.0]).unwrap();
        assert!((via_fn - via_lin).abs() < 1e-12);
    }

    #[test]
    fn arity_mismatches_are_reported() {
        let a = Allocation::new(vec![1.0], 1.0).unwrap();
        assert!(matches!(
            total_latency_linear(&a, &[1.0, 2.0]),
            Err(CoreError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn invalid_rate_is_rejected() {
        assert!(pr_allocate(&[1.0], 0.0).is_err());
        assert!(pr_allocate(&[1.0], -3.0).is_err());
        assert!(pr_allocate(&[1.0], f64::INFINITY).is_err());
        assert!(optimal_latency_linear(&[1.0], f64::NAN).is_err());
    }

    #[test]
    fn feasibility_survives_large_n_wide_spread() {
        // Regression for the `alloc` fuzz-oracle class: 10_000 machines with
        // latency parameters log-spaced over twelve orders of magnitude. The
        // PR closed form is algebraically exact, so re-validating its output
        // through `Allocation::new` must succeed — the old fixed 1e-9 window
        // over a naive sum had no n-headroom for this.
        let n = 10_000;
        #[allow(clippy::cast_precision_loss)]
        let values: Vec<f64> = (0..n)
            .map(|i| 10f64.powf(-6.0 + 12.0 * i as f64 / (n - 1) as f64))
            .collect();
        let r = 20.0;
        let a = pr_allocate(&values, r).unwrap();
        let revalidated = Allocation::new(a.rates().to_vec(), r).unwrap();
        assert!((revalidated.total_rate() - r).abs() <= feasibility_tolerance(n, r));
        // The closed form and the direct evaluation still agree tightly.
        let direct = total_latency_linear(&a, &values).unwrap();
        let closed = optimal_latency_linear(&values, r).unwrap();
        assert!(
            (direct - closed).abs() < 1e-9 * closed,
            "{direct} vs {closed}"
        );
    }

    #[test]
    fn feasibility_window_is_scale_invariant() {
        // Tiny and huge total rates get proportionally scaled windows. The
        // window scale is clamped at `|r| ≥ 1` (`feasibility_tolerance`
        // keeps sub-unit rates from collapsing it to a denormal-sized
        // band), so the probing perturbation is 0.1% of the *clamped*
        // scale — outside the window at every r, including r = 1e-6 where
        // a perturbation of `r·1e-3` would land inside the clamped band.
        for &r in &[1e-6, 1.0, 1e9] {
            let exact = pr_allocate(&[1.0, 3.0, 7.0], r).unwrap();
            assert!(
                Allocation::new(exact.rates().to_vec(), r).is_ok(),
                "exact at r={r}"
            );
            let mut off = exact.rates().to_vec();
            off[0] += r.abs().max(1.0) * 1e-3;
            assert!(Allocation::new(off, r).is_err(), "violation at r={r}");
        }
    }

    #[test]
    fn overflow_surfaces_as_typed_error_not_nan() {
        // A huge-but-valid rate against a slow machine drives r²/Σ(1/t)
        // past f64::MAX; the kernel must answer with NumericalOverflow,
        // never return inf/NaN.
        assert!(matches!(
            optimal_latency_linear(&[1e250], 1e200),
            Err(CoreError::NumericalOverflow { .. })
        ));
        // Subnormal latency parameters never reach the 1/t kernel at all:
        // they are rejected by validation with a typed error.
        assert!(matches!(
            pr_allocate(&[f64::MIN_POSITIVE / 2.0, 1.0], 1.0),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn classical_optimum_on_system() {
        let sys = System::from_true_values(&[1.0, 3.0]).unwrap();
        let (alloc, latency) = classical_optimum(&sys, 4.0).unwrap();
        assert!((alloc.rate(0) - 3.0).abs() < 1e-12);
        assert!((alloc.rate(1) - 1.0).abs() < 1e-12);
        assert!((latency - (1.0 * 9.0 + 3.0 * 1.0)).abs() < 1e-12);
    }

    proptest! {
        /// PR allocations are always feasible.
        #[test]
        fn prop_pr_is_feasible(
            values in proptest::collection::vec(0.01f64..100.0, 1..32),
            r in 0.01f64..1e4,
        ) {
            let a = pr_allocate(&values, r).unwrap();
            prop_assert!(a.is_feasible(r, 1e-6));
        }

        /// PR matches the closed-form optimum and no feasible perturbation
        /// improves on it (local optimality certificate of Theorem 2.1).
        #[test]
        fn prop_pr_is_unimprovable(
            values in proptest::collection::vec(0.05f64..20.0, 2..12),
            r in 0.1f64..100.0,
            from in 0usize..12,
            to in 0usize..12,
            frac in 0.01f64..0.5,
        ) {
            let n = values.len();
            let from = from % n;
            let to = to % n;
            prop_assume!(from != to);
            let a = pr_allocate(&values, r).unwrap();
            let base = total_latency_linear(&a, &values).unwrap();

            // Move a fraction of machine `from`'s load to machine `to`.
            let delta = a.rate(from) * frac;
            let mut rates = a.rates().to_vec();
            rates[from] -= delta;
            rates[to] += delta;
            let perturbed = Allocation::from_raw(rates);
            let worse = total_latency_linear(&perturbed, &values).unwrap();
            prop_assert!(worse >= base - 1e-9 * base.abs().max(1.0),
                "perturbation improved latency: {} < {}", worse, base);
        }

        /// The closed-form optimum equals the PR allocation's latency.
        #[test]
        fn prop_closed_form_consistency(
            values in proptest::collection::vec(0.05f64..20.0, 1..16),
            r in 0.1f64..100.0,
        ) {
            let a = pr_allocate(&values, r).unwrap();
            let direct = total_latency_linear(&a, &values).unwrap();
            let closed = optimal_latency_linear(&values, r).unwrap();
            prop_assert!((direct - closed).abs() < 1e-7 * closed.max(1.0));
        }

        /// Scaling all true values leaves the PR allocation unchanged
        /// (only relative speeds matter).
        #[test]
        fn prop_pr_scale_invariance(
            values in proptest::collection::vec(0.05f64..20.0, 1..16),
            r in 0.1f64..100.0,
            scale in 0.1f64..10.0,
        ) {
            let a = pr_allocate(&values, r).unwrap();
            let scaled: Vec<f64> = values.iter().map(|v| v * scale).collect();
            let b = pr_allocate(&scaled, r).unwrap();
            for (x, y) in a.rates().iter().zip(b.rates()) {
                prop_assert!((x - y).abs() < 1e-9 * x.abs().max(1.0));
            }
        }
    }
}
