//! Problem model for *A Load Balancing Mechanism with Verification*
//! (Grosu & Chronopoulos, IPPS 2003).
//!
//! A distributed system of `n` heterogeneous computers receives jobs at a
//! total rate `R`. Computer `i` has a load-dependent latency function
//! `l_i(x_i)`; in the paper this is **linear**, `l_i(x_i) = t_i · x_i`, where
//! the private parameter `t_i` is inversely proportional to `i`'s processing
//! rate. An allocation `x = (x_1, …, x_n)` is feasible when `x_i ≥ 0` and
//! `Σ x_i = R`; the system objective is the total latency
//! `L(x) = Σ x_i · l_i(x_i)`.
//!
//! This crate provides, with no mechanism-design content yet:
//!
//! * [`machine`] — machine identities, validated private parameters and the
//!   [`machine::System`] collection type.
//! * [`latency`] — the [`latency::LatencyFunction`] trait with the paper's
//!   linear model plus M/M/1, M/G/1-light-load and polynomial extensions.
//! * [`allocation`] — feasible allocations, the paper's **PR algorithm**
//!   (Theorem 2.1: allocate in proportion to processing rates) and exact
//!   closed-form optima for the linear model.
//! * [`convex`] — a general KKT/bisection solver that minimises total latency
//!   for *any* convex latency family, used both to cross-check the PR closed
//!   form and to support the M/M/1 extension experiments.
//! * [`scenario`] — canned system configurations, including the paper's
//!   16-computer Table 1 testbed.

pub mod allocation;
pub mod analysis;
pub mod baselines;
pub mod capped;
pub mod convex;
pub mod error;
pub mod latency;
pub mod machine;
pub mod numeric;
pub mod scenario;

pub use allocation::{
    optimal_latency_excluding, optimal_latency_excluding_legacy, optimal_latency_linear,
    pr_allocate, pr_allocate_with_sum, total_latency_linear, Allocation, LeaveOneOut,
};
pub use analysis::{latency_sensitivity, marginal_contributions};
pub use baselines::{equal_split, weighted_round_robin};
pub use capped::pr_allocate_capped;
pub use convex::{solve_convex, ConvexSolverOptions};
pub use error::CoreError;
pub use latency::{Affine, LatencyFunction, Linear, Mm1, Polynomial, PowerLaw};
pub use machine::{Machine, MachineId, System, MAX_LATENCY_PARAM, MIN_LATENCY_PARAM};
pub use numeric::{
    compensated_sum, feasibility_tolerance, inv_sum_dd, merge_inv_sums, CompensatedSum,
    IncrementalInvSum, TwoF64,
};
pub use scenario::paper_system;
