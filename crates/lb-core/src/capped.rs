//! PR allocation under per-machine rate caps.
//!
//! Operators rarely let one machine take unbounded load: admission policies
//! cap the per-machine rate. This module solves the paper's linear problem
//! with box constraints `0 ≤ x_i ≤ cap_i` by iterative water-filling: run PR
//! over the unclamped machines, clamp every violator to its cap, remove the
//! clamped load, repeat. Each pass clamps at least one machine, so it
//! terminates in at most `n` passes; KKT for the box-constrained convex
//! program certifies optimality (clamped machines sit at a lower marginal
//! than the shared multiplier, which the property tests check by
//! perturbation).

use crate::allocation::{validate_rate, Allocation};
use crate::error::CoreError;
use crate::machine::validate_values;
use crate::numeric::compensated_sum;

/// Solves `min Σ values[i]·x_i²` s.t. `Σx = r`, `0 ≤ x_i ≤ caps[i]`.
///
/// # Errors
/// * validation errors for empty/invalid inputs,
/// * [`CoreError::InsufficientCapacity`] when `Σ caps < r`,
/// * [`CoreError::InvalidParameter`] for a negative/non-finite cap.
pub fn pr_allocate_capped(values: &[f64], caps: &[f64], r: f64) -> Result<Allocation, CoreError> {
    validate_values("latency coefficient", values)?;
    validate_rate(r)?;
    if caps.len() != values.len() {
        return Err(CoreError::LengthMismatch {
            expected: values.len(),
            actual: caps.len(),
        });
    }
    let mut total_cap = 0.0;
    for &c in caps {
        if !(c.is_finite() && c >= 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "cap",
                value: c,
            });
        }
        total_cap += c;
    }
    if total_cap < r * (1.0 - 1e-12) {
        return Err(CoreError::InsufficientCapacity {
            rate: r,
            capacity: total_cap,
        });
    }

    let n = values.len();
    let mut rates = vec![0.0f64; n];
    let mut clamped = vec![false; n];
    let mut remaining = r;

    loop {
        // PR over the unclamped machines for the remaining load.
        let inv_sum = compensated_sum((0..n).filter(|&i| !clamped[i]).map(|i| 1.0 / values[i]));
        if inv_sum <= 0.0 {
            // Everything is clamped; remaining must be ~0 by the capacity check.
            break;
        }
        let mut violated = false;
        for i in 0..n {
            if clamped[i] {
                continue;
            }
            rates[i] = (1.0 / values[i]) / inv_sum * remaining;
        }
        for i in 0..n {
            if !clamped[i] && rates[i] > caps[i] {
                rates[i] = caps[i];
                clamped[i] = true;
                violated = true;
            }
        }
        if !violated {
            break;
        }
        let clamped_load = compensated_sum((0..n).filter(|&i| clamped[i]).map(|i| rates[i]));
        remaining = r - clamped_load;
        if remaining <= 0.0 {
            // Caps absorb everything (possible only when Σ caps == r).
            for i in 0..n {
                if !clamped[i] {
                    rates[i] = 0.0;
                }
            }
            break;
        }
    }

    // The clamp loop conserves load by construction; normalise residual
    // floating-point drift through the validating constructor.
    Allocation::new(rates, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::{pr_allocate, total_latency_linear};
    use proptest::prelude::*;

    #[test]
    fn unconstraining_caps_reduce_to_pr() {
        let values = [1.0, 2.0, 5.0];
        let caps = [100.0, 100.0, 100.0];
        let a = pr_allocate_capped(&values, &caps, 8.0).unwrap();
        let b = pr_allocate(&values, 8.0).unwrap();
        for (x, y) in a.rates().iter().zip(b.rates()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn binding_cap_spills_to_other_machines() {
        // Uncapped PR on t=[1,2] at r=3 gives [2,1]; cap machine 0 at 1.5.
        let a = pr_allocate_capped(&[1.0, 2.0], &[1.5, 10.0], 3.0).unwrap();
        assert!((a.rate(0) - 1.5).abs() < 1e-12);
        assert!((a.rate(1) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn cascading_clamps_terminate() {
        // Tight caps force several passes.
        let values = [1.0, 1.0, 1.0, 10.0];
        let caps = [0.5, 0.6, 0.7, 100.0];
        let a = pr_allocate_capped(&values, &caps, 3.0).unwrap();
        assert!((a.rate(0) - 0.5).abs() < 1e-9);
        assert!((a.rate(1) - 0.6).abs() < 1e-9);
        assert!((a.rate(2) - 0.7).abs() < 1e-9);
        assert!((a.rate(3) - 1.2).abs() < 1e-9);
    }

    #[test]
    fn exact_capacity_fills_every_cap() {
        let a = pr_allocate_capped(&[1.0, 2.0], &[1.0, 2.0], 3.0).unwrap();
        assert!((a.rate(0) - 1.0).abs() < 1e-9);
        assert!((a.rate(1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn insufficient_caps_error() {
        assert!(matches!(
            pr_allocate_capped(&[1.0, 2.0], &[1.0, 1.0], 3.0),
            Err(CoreError::InsufficientCapacity { .. })
        ));
    }

    #[test]
    fn invalid_caps_error() {
        assert!(pr_allocate_capped(&[1.0], &[-1.0], 0.5).is_err());
        assert!(pr_allocate_capped(&[1.0, 2.0], &[1.0], 0.5).is_err());
    }

    proptest! {
        /// Capped allocations are feasible: conservation, positivity and cap
        /// respect.
        #[test]
        fn prop_capped_is_feasible(
            values in proptest::collection::vec(0.05f64..20.0, 1..12),
            cap_factors in proptest::collection::vec(0.05f64..3.0, 1..12),
            load_frac in 0.05f64..0.95,
        ) {
            let n = values.len().min(cap_factors.len());
            let values = &values[..n];
            // Caps proportional to speed so totals stay sane.
            let caps: Vec<f64> = values.iter().zip(&cap_factors[..n]).map(|(&v, &f)| f / v).collect();
            let total_cap: f64 = caps.iter().sum();
            let r = load_frac * total_cap;
            prop_assume!(r > 1e-9);
            let a = pr_allocate_capped(values, &caps, r).unwrap();
            prop_assert!(a.is_feasible(r, 1e-6));
            for (x, c) in a.rates().iter().zip(&caps) {
                prop_assert!(*x <= c + 1e-9, "cap violated: {} > {}", x, c);
            }
        }

        /// No feasible pairwise transfer improves the capped optimum (KKT
        /// certificate by perturbation).
        #[test]
        fn prop_capped_is_unimprovable(
            values in proptest::collection::vec(0.05f64..20.0, 2..8),
            load_frac in 0.1f64..0.9,
            from in 0usize..8,
            to in 0usize..8,
            frac in 0.05f64..0.5,
        ) {
            let n = values.len();
            let from = from % n;
            let to = to % n;
            prop_assume!(from != to);
            // Caps: slightly above the uncapped PR shares for half the
            // machines, loose for the rest — so some caps bind.
            let r_max: f64 = values.iter().map(|v| 1.0 / v).sum();
            let r = load_frac * r_max;
            let uncapped = pr_allocate(&values, r).unwrap();
            let caps: Vec<f64> = uncapped
                .rates()
                .iter()
                .enumerate()
                .map(|(i, &x)| if i % 2 == 0 { 0.8 * x + 1e-6 } else { 10.0 * x + 1.0 })
                .collect();
            prop_assume!(caps.iter().sum::<f64>() > r * 1.001);
            let a = pr_allocate_capped(&values, &caps, r).unwrap();
            let base = total_latency_linear(&a, &values).unwrap();

            // Move load from `from` to `to` within feasibility.
            let headroom = (caps[to] - a.rate(to)).max(0.0);
            let delta = (a.rate(from) * frac).min(headroom);
            prop_assume!(delta > 1e-9);
            let mut rates = a.rates().to_vec();
            rates[from] -= delta;
            rates[to] += delta;
            let perturbed = Allocation::new(rates, r).unwrap();
            let worse = total_latency_linear(&perturbed, &values).unwrap();
            prop_assert!(worse >= base - 1e-7 * base.max(1.0),
                "transfer improved: {} < {}", worse, base);
        }
    }
}
