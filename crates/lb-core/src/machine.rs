//! Machines and systems of machines.
//!
//! A [`Machine`] carries its *true value* `t_i` — the paper's private
//! parameter, inversely proportional to the machine's processing rate (small
//! `t` = fast computer). A [`System`] is an ordered collection of machines
//! and is the unit every allocation and mechanism API operates on.

use crate::error::CoreError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable identifier of a machine within a [`System`] (its index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MachineId(pub u32);

impl fmt::Display for MachineId {
    /// Renders machine ids in the paper's "C1..C16" style (1-based).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0 + 1)
    }
}

/// A computer in the distributed system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    /// Identity (index within the system).
    pub id: MachineId,
    /// The private parameter `t_i` of the linear latency function
    /// `l_i(x) = t_i · x`; inversely proportional to the processing rate.
    pub true_value: f64,
}

impl Machine {
    /// Creates a machine after validating its true value.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] unless `true_value` is finite
    /// and strictly positive.
    pub fn new(id: MachineId, true_value: f64) -> Result<Self, CoreError> {
        validate_positive("true value", true_value)?;
        Ok(Self { id, true_value })
    }

    /// The machine's processing rate, `1 / t_i`.
    #[must_use]
    pub fn processing_rate(&self) -> f64 {
        1.0 / self.true_value
    }
}

/// Smallest admissible latency parameter.
///
/// Chosen so that `1/t` is always a *normal* finite `f64`: a subnormal `t`
/// (e.g. `1e-308`) would make `1/t` infinite and silently poison every
/// allocation and `L_{-i}` bonus term downstream with `inf`/NaN. `1e-300`
/// leaves eight orders of magnitude of guard band above the subnormal
/// threshold while being far below any physical latency coefficient.
pub const MIN_LATENCY_PARAM: f64 = 1e-300;

/// Largest admissible latency parameter, the mirror bound of
/// [`MIN_LATENCY_PARAM`]: keeps `1/t` a normal `f64` (never subnormal/zero),
/// so products and quotients of validated parameters stay well-conditioned.
pub const MAX_LATENCY_PARAM: f64 = 1e300;

/// Validates that a latency parameter is finite, strictly positive and
/// within `[MIN_LATENCY_PARAM, MAX_LATENCY_PARAM]`.
///
/// The range bounds guarantee that `1/value` can never overflow to infinity
/// or collapse to zero — the root cause of NaN-poisoned allocations from
/// degenerate (subnormal) bids.
///
/// # Errors
/// Returns [`CoreError::InvalidParameter`] otherwise.
pub fn validate_positive(name: &'static str, value: f64) -> Result<(), CoreError> {
    if value.is_finite() && (MIN_LATENCY_PARAM..=MAX_LATENCY_PARAM).contains(&value) {
        Ok(())
    } else {
        Err(CoreError::InvalidParameter { name, value })
    }
}

/// Validates a full vector of latency parameters (bids, execution values…).
///
/// # Errors
/// Returns [`CoreError::EmptySystem`] for an empty slice or
/// [`CoreError::InvalidParameter`] for any non-positive/non-finite entry.
pub fn validate_values(name: &'static str, values: &[f64]) -> Result<(), CoreError> {
    if values.is_empty() {
        return Err(CoreError::EmptySystem);
    }
    for &v in values {
        validate_positive(name, v)?;
    }
    Ok(())
}

/// An ordered collection of machines — the distributed system under study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct System {
    machines: Vec<Machine>,
}

impl System {
    /// Builds a system from per-machine true values.
    ///
    /// # Errors
    /// Returns [`CoreError::EmptySystem`] for an empty list,
    /// [`CoreError::InvalidParameter`] for any invalid true value, or
    /// [`CoreError::SystemTooLarge`] past `u32::MAX` machines.
    pub fn from_true_values(true_values: &[f64]) -> Result<Self, CoreError> {
        if true_values.is_empty() {
            return Err(CoreError::EmptySystem);
        }
        let machines = true_values
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let id = u32::try_from(i).map_err(|_| CoreError::SystemTooLarge {
                    requested: true_values.len(),
                })?;
                Machine::new(MachineId(id), t)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { machines })
    }

    /// Number of machines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the system is empty (never true for a constructed system).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// The machines, in id order.
    #[must_use]
    pub fn machines(&self) -> &[Machine] {
        &self.machines
    }

    /// The vector of true values `t_i`, in id order.
    #[must_use]
    pub fn true_values(&self) -> Vec<f64> {
        self.machines.iter().map(|m| m.true_value).collect()
    }

    /// Sum of processing rates, `Σ 1/t_i` — the denominator of the PR
    /// allocation and of the optimal latency `R²/Σ(1/t_i)`. Accumulated with
    /// a compensated sum so wide `t` spreads do not lose the slow machines.
    #[must_use]
    pub fn total_processing_rate(&self) -> f64 {
        crate::numeric::compensated_sum(self.machines.iter().map(Machine::processing_rate))
    }

    /// Machine lookup by id.
    #[must_use]
    pub fn get(&self, id: MachineId) -> Option<&Machine> {
        self.machines.get(id.0 as usize)
    }

    /// Checks that `values` has one entry per machine.
    ///
    /// # Errors
    /// Returns [`CoreError::LengthMismatch`] otherwise.
    pub fn check_len(&self, values: &[f64]) -> Result<(), CoreError> {
        if values.len() == self.len() {
            Ok(())
        } else {
            Err(CoreError::LengthMismatch {
                expected: self.len(),
                actual: values.len(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_validation() {
        assert!(Machine::new(MachineId(0), 2.0).is_ok());
        assert!(matches!(
            Machine::new(MachineId(0), 0.0),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(Machine::new(MachineId(0), -1.0).is_err());
        assert!(Machine::new(MachineId(0), f64::NAN).is_err());
        assert!(Machine::new(MachineId(0), f64::INFINITY).is_err());
    }

    #[test]
    fn degenerate_magnitudes_are_rejected() {
        // Regression for the `payment` fuzz-oracle class: a subnormal true
        // value made 1/t infinite and NaN-poisoned the bonus term. The
        // validated range keeps every reciprocal a normal finite f64.
        assert!(Machine::new(MachineId(0), f64::MIN_POSITIVE / 4.0).is_err());
        assert!(Machine::new(MachineId(0), 1e-308).is_err());
        assert!(Machine::new(MachineId(0), 1e301).is_err());
        assert!(Machine::new(MachineId(0), MIN_LATENCY_PARAM).is_ok());
        assert!(Machine::new(MachineId(0), MAX_LATENCY_PARAM).is_ok());
        let fast = Machine::new(MachineId(0), MIN_LATENCY_PARAM).unwrap();
        let slow = Machine::new(MachineId(1), MAX_LATENCY_PARAM).unwrap();
        assert!(fast.processing_rate().is_finite());
        assert!(slow.processing_rate() > 0.0);
        assert!(slow.processing_rate().is_normal());
    }

    #[test]
    fn processing_rate_is_reciprocal() {
        let m = Machine::new(MachineId(3), 4.0).unwrap();
        assert!((m.processing_rate() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn machine_id_displays_one_based() {
        assert_eq!(MachineId(0).to_string(), "C1");
        assert_eq!(MachineId(15).to_string(), "C16");
    }

    #[test]
    fn system_construction_and_accessors() {
        let sys = System::from_true_values(&[1.0, 2.0, 4.0]).unwrap();
        assert_eq!(sys.len(), 3);
        assert!(!sys.is_empty());
        assert_eq!(sys.true_values(), vec![1.0, 2.0, 4.0]);
        assert!((sys.total_processing_rate() - 1.75).abs() < 1e-15);
        assert_eq!(sys.get(MachineId(1)).unwrap().true_value, 2.0);
        assert!(sys.get(MachineId(9)).is_none());
    }

    #[test]
    fn system_rejects_empty_and_invalid() {
        assert!(matches!(
            System::from_true_values(&[]),
            Err(CoreError::EmptySystem)
        ));
        assert!(System::from_true_values(&[1.0, -2.0]).is_err());
    }

    #[test]
    fn check_len_enforces_arity() {
        let sys = System::from_true_values(&[1.0, 2.0]).unwrap();
        assert!(sys.check_len(&[1.0, 1.0]).is_ok());
        assert!(matches!(
            sys.check_len(&[1.0]),
            Err(CoreError::LengthMismatch {
                expected: 2,
                actual: 1
            })
        ));
    }

    #[test]
    fn validate_values_covers_all_entries() {
        assert!(validate_values("bid", &[1.0, 2.0]).is_ok());
        assert!(validate_values("bid", &[]).is_err());
        assert!(validate_values("bid", &[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn serde_roundtrip_via_debug_format() {
        // System derives Serialize/Deserialize; smoke-test the derive wiring
        // through the serde data model without a format crate.
        let sys = System::from_true_values(&[1.0, 2.0]).unwrap();
        let cloned = sys.clone();
        assert_eq!(sys, cloned);
    }
}
