//! Canned system configurations, including the paper's Table 1 testbed.
//!
//! The IPPS 2003 evaluation uses a 16-computer heterogeneous system; the
//! published table is OCR-damaged in available copies, but the constants are
//! recoverable analytically (see `DESIGN.md`): with true values
//! `t = 1 (C1–C2), 2 (C3–C5), 5 (C6–C10), 10 (C11–C16)` and `R = 20` jobs/s,
//! `Σ 1/t_i = 5.1` and the optimal latency is `400/5.1 = 78.43` — exactly the
//! value the paper reports for experiment True1 — and the Low1/Low2
//! degradations (+11%, +66%) also match exactly.

use crate::error::CoreError;
use crate::machine::System;

/// The paper's job arrival rate, `R = 20` jobs/s (Sec. 4).
pub const PAPER_ARRIVAL_RATE: f64 = 20.0;

/// Index of the strategic computer C1 in the paper's experiments.
pub const PAPER_STRATEGIC_MACHINE: usize = 0;

/// True values of the paper's Table 1 system, in machine order C1..C16.
#[must_use]
pub fn paper_true_values() -> Vec<f64> {
    let mut v = Vec::with_capacity(16);
    v.extend(std::iter::repeat(1.0).take(2)); // C1 - C2
    v.extend(std::iter::repeat(2.0).take(3)); // C3 - C5
    v.extend(std::iter::repeat(5.0).take(5)); // C6 - C10
    v.extend(std::iter::repeat(10.0).take(6)); // C11 - C16
    v
}

/// The paper's Table 1 system as a [`System`].
#[must_use]
pub fn paper_system() -> System {
    System::from_true_values(&paper_true_values()).expect("paper system constants are valid")
}

/// A homogeneous system of `n` machines with identical true value `t`.
///
/// # Errors
/// Propagates validation errors (`n == 0` or invalid `t`).
pub fn uniform_system(n: usize, t: f64) -> Result<System, CoreError> {
    System::from_true_values(&vec![t; n])
}

/// A geometric heterogeneity ladder: machine `i` has true value
/// `t_min * ratio^i`. Mirrors the paper's fast-to-slow spread.
///
/// # Errors
/// Propagates validation errors (`n == 0`, invalid `t_min`/`ratio`).
pub fn geometric_system(n: usize, t_min: f64, ratio: f64) -> Result<System, CoreError> {
    if !(ratio.is_finite() && ratio > 0.0) {
        return Err(CoreError::InvalidParameter {
            name: "ratio",
            value: ratio,
        });
    }
    let values: Vec<f64> = (0..n)
        .map(|i| t_min * ratio.powi(i32::try_from(i).unwrap_or(i32::MAX)))
        .collect();
    System::from_true_values(&values)
}

/// A randomized heterogeneous system: true values drawn log-uniformly from
/// `[t_min, t_max]` using the supplied uniform samples (caller provides
/// randomness so this crate stays RNG-free).
///
/// # Errors
/// Propagates validation errors.
pub fn random_system_from_uniforms(
    uniforms: &[f64],
    t_min: f64,
    t_max: f64,
) -> Result<System, CoreError> {
    if !(t_min.is_finite() && t_min > 0.0) {
        return Err(CoreError::InvalidParameter {
            name: "t_min",
            value: t_min,
        });
    }
    if !(t_max.is_finite() && t_max >= t_min) {
        return Err(CoreError::InvalidParameter {
            name: "t_max",
            value: t_max,
        });
    }
    let ln_lo = t_min.ln();
    let ln_hi = t_max.ln();
    let values: Vec<f64> = uniforms
        .iter()
        .map(|&u| (ln_lo + u * (ln_hi - ln_lo)).exp())
        .collect();
    System::from_true_values(&values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_system_has_sixteen_machines() {
        let sys = paper_system();
        assert_eq!(sys.len(), 16);
    }

    #[test]
    fn paper_system_group_structure() {
        let v = paper_true_values();
        assert_eq!(&v[0..2], &[1.0, 1.0]);
        assert_eq!(&v[2..5], &[2.0, 2.0, 2.0]);
        assert_eq!(&v[5..10], &[5.0; 5]);
        assert_eq!(&v[10..16], &[10.0; 6]);
    }

    #[test]
    fn paper_system_inverse_sum_is_5_1() {
        let sys = paper_system();
        assert!((sys.total_processing_rate() - 5.1).abs() < 1e-12);
    }

    #[test]
    fn uniform_system_is_uniform() {
        let sys = uniform_system(4, 2.5).unwrap();
        assert!(sys.true_values().iter().all(|&t| t == 2.5));
        assert!(uniform_system(0, 1.0).is_err());
    }

    #[test]
    fn geometric_system_ladder() {
        let sys = geometric_system(3, 1.0, 2.0).unwrap();
        assert_eq!(sys.true_values(), vec![1.0, 2.0, 4.0]);
        assert!(geometric_system(3, 1.0, -1.0).is_err());
    }

    #[test]
    fn random_system_is_within_bounds() {
        let uniforms = [0.0, 0.25, 0.5, 1.0];
        let sys = random_system_from_uniforms(&uniforms, 0.5, 8.0).unwrap();
        for &t in &sys.true_values() {
            assert!((0.5..=8.0).contains(&t), "t = {t}");
        }
        assert_eq!(sys.true_values()[0], 0.5);
        assert!((sys.true_values()[3] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn random_system_rejects_bad_bounds() {
        assert!(random_system_from_uniforms(&[0.5], -1.0, 2.0).is_err());
        assert!(random_system_from_uniforms(&[0.5], 2.0, 1.0).is_err());
    }
}
