//! Compensated floating-point summation and scale-aware tolerances.
//!
//! The allocation and latency kernels accumulate sums whose terms can span
//! twelve orders of magnitude (`Σ_j 1/t_j` with `t` spreads up to `1e12`).
//! A naive left-to-right `f64` sum loses up to `n · ε · Σ|term|` of absolute
//! accuracy, which is enough to push an algebraically exact PR allocation
//! outside a fixed `1e-9` feasibility window at large `n`. This module
//! provides a Neumaier-compensated accumulator (error bound `2ε` independent
//! of `n` for the compensated result) and the `n`-scaled tolerance used by
//! the feasibility checks.

/// A Neumaier (improved Kahan) compensated accumulator.
///
/// Tracks a running sum and a separate compensation term holding the
/// low-order bits lost at each addition. Unlike classic Kahan summation,
/// Neumaier's variant stays accurate when an incoming term is larger in
/// magnitude than the running sum, which happens routinely with
/// log-uniformly distributed latency parameters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CompensatedSum {
    sum: f64,
    compensation: f64,
}

impl CompensatedSum {
    /// A fresh accumulator at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one term, capturing the round-off into the compensation term.
    pub fn add(&mut self, term: f64) {
        let t = self.sum + term;
        if self.sum.abs() >= term.abs() {
            self.compensation += (self.sum - t) + term;
        } else {
            self.compensation += (term - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

/// Compensated sum of an iterator of `f64` terms.
#[must_use]
pub fn compensated_sum<I: IntoIterator<Item = f64>>(terms: I) -> f64 {
    let mut acc = CompensatedSum::new();
    for term in terms {
        acc.add(term);
    }
    acc.value()
}

/// Base relative tolerance for feasibility checks on compensated sums.
pub const FEASIBILITY_TOL: f64 = 1e-9;

/// Scale- and size-aware feasibility tolerance for comparing a sum of `n`
/// allocation rates against a target total rate `r`.
///
/// The absolute error of a compensated sum of `n` non-negative terms that
/// total `r` is bounded by `O(ε) · r`, but the *inputs* themselves (each
/// rate is a quotient of two long sums) carry relative error that grows
/// like `√n` under the usual random-round-off model. `√n` scaling keeps
/// the check tight at small `n` while admitting algebraically exact
/// allocations at `n = 10_000` and `t` spreads of `1e12`.
#[must_use]
pub fn feasibility_tolerance(n: usize, r: f64) -> f64 {
    // `max(1.0)` keeps the tolerance meaningful for |r| < 1 without making
    // it collapse to a denormal-sized window.
    #[allow(clippy::cast_precision_loss)]
    let scale = (n.max(1) as f64).sqrt();
    FEASIBILITY_TOL * scale * r.abs().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(compensated_sum(std::iter::empty()), 0.0);
        assert_eq!(CompensatedSum::new().value(), 0.0);
    }

    #[test]
    fn recovers_cancellation_kahan_cannot() {
        // Classic Neumaier witness: 1 + 1e100 + 1 - 1e100 == 2 exactly
        // under compensation, 0 under naive or plain-Kahan summation.
        let terms = [1.0, 1e100, 1.0, -1e100];
        let naive: f64 = terms.iter().sum();
        assert_eq!(naive, 0.0);
        assert_eq!(compensated_sum(terms.iter().copied()), 2.0);
    }

    #[test]
    fn matches_naive_on_benign_input() {
        let terms: Vec<f64> = (1..=100).map(f64::from).collect();
        let naive: f64 = terms.iter().sum();
        assert_eq!(compensated_sum(terms.iter().copied()), naive);
    }

    #[test]
    fn compensates_wide_magnitude_spread() {
        // n tiny terms drowned by one huge term: naive summation loses all
        // of them; the compensated sum keeps them to within one ulp.
        let small = 1e-8;
        let n = 10_000;
        let mut acc = CompensatedSum::new();
        acc.add(1e12);
        for _ in 0..n {
            acc.add(small);
        }
        acc.add(-1e12);
        let expected = f64::from(n) * small;
        let rel = ((acc.value() - expected) / expected).abs();
        assert!(rel < 1e-12, "relative error {rel:e}");
    }

    #[test]
    fn tolerance_scales_with_n_and_r() {
        assert!(feasibility_tolerance(1, 1.0) >= FEASIBILITY_TOL);
        assert!(feasibility_tolerance(10_000, 1.0) >= 100.0 * FEASIBILITY_TOL * 0.99);
        assert!(feasibility_tolerance(4, 1e6) >= 2e6 * FEASIBILITY_TOL * 0.99);
        // Small rates do not collapse the window below the base tolerance.
        assert!(feasibility_tolerance(1, 1e-30) >= FEASIBILITY_TOL);
    }
}
