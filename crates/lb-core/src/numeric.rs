//! Compensated floating-point summation, double-double arithmetic and
//! scale-aware tolerances.
//!
//! The allocation and latency kernels accumulate sums whose terms can span
//! twelve orders of magnitude (`Σ_j 1/t_j` with `t` spreads up to `1e12`).
//! A naive left-to-right `f64` sum loses up to `n · ε · Σ|term|` of absolute
//! accuracy, which is enough to push an algebraically exact PR allocation
//! outside a fixed `1e-9` feasibility window at large `n`. This module
//! provides a Neumaier-compensated accumulator (error bound `2ε` independent
//! of `n` for the compensated result) and the `n`-scaled tolerance used by
//! the feasibility checks.
//!
//! It also hosts the [`TwoF64`] double-double type (originally grown inside
//! the `lb-fuzz` differential oracles, promoted here so production kernels
//! can share it). The batch leave-one-out payment kernel uses it for the
//! `S − 1/b_i` subtraction, where a dominant machine would otherwise cancel
//! the whole residual in plain `f64`.

/// A Neumaier (improved Kahan) compensated accumulator.
///
/// Tracks a running sum and a separate compensation term holding the
/// low-order bits lost at each addition. Unlike classic Kahan summation,
/// Neumaier's variant stays accurate when an incoming term is larger in
/// magnitude than the running sum, which happens routinely with
/// log-uniformly distributed latency parameters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CompensatedSum {
    sum: f64,
    compensation: f64,
}

impl CompensatedSum {
    /// A fresh accumulator at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one term, capturing the round-off into the compensation term.
    pub fn add(&mut self, term: f64) {
        let t = self.sum + term;
        if self.sum.abs() >= term.abs() {
            self.compensation += (self.sum - t) + term;
        } else {
            self.compensation += (term - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

/// Compensated sum of an iterator of `f64` terms.
#[must_use]
pub fn compensated_sum<I: IntoIterator<Item = f64>>(terms: I) -> f64 {
    let mut acc = CompensatedSum::new();
    for term in terms {
        acc.add(term);
    }
    acc.value()
}

/// Base relative tolerance for feasibility checks on compensated sums.
pub const FEASIBILITY_TOL: f64 = 1e-9;

/// Scale- and size-aware feasibility tolerance for comparing a sum of `n`
/// allocation rates against a target total rate `r`.
///
/// The absolute error of a compensated sum of `n` non-negative terms that
/// total `r` is bounded by `O(ε) · r`, but the *inputs* themselves (each
/// rate is a quotient of two long sums) carry relative error that grows
/// like `√n` under the usual random-round-off model. `√n` scaling keeps
/// the check tight at small `n` while admitting algebraically exact
/// allocations at `n = 10_000` and `t` spreads of `1e12`.
#[must_use]
pub fn feasibility_tolerance(n: usize, r: f64) -> f64 {
    // `max(1.0)` keeps the tolerance meaningful for |r| < 1 without making
    // it collapse to a denormal-sized window.
    #[allow(clippy::cast_precision_loss)]
    let scale = (n.max(1) as f64).sqrt();
    FEASIBILITY_TOL * scale * r.abs().max(1.0)
}

/// An unevaluated sum `hi + lo` carrying ≈ 106 bits of significand.
///
/// A double-double represents a value as two `f64`s with `|lo| ≤ ulp(hi)/2`,
/// giving roughly 32 decimal digits — enough that subtracting one reciprocal
/// from a harmonic sum (`S − 1/t_i`, the leave-one-out kernel's core step)
/// keeps the residual accurate to well below the `1e-9` oracle budget even
/// when one machine contributes almost all of `S`.
///
/// The primitives are the classical error-free transformations (Dekker,
/// Knuth; see Hida–Li–Bailey's QD library for the compound algorithms):
/// [`two_sum`] captures the exact rounding error of an addition,
/// [`two_prod`] of a multiplication (via FMA).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoF64 {
    /// Leading component: the represented value rounded to nearest `f64`.
    pub hi: f64,
    /// Trailing error term, non-overlapping with `hi`.
    pub lo: f64,
}

/// Exact sum of two `f64`s: returns `(fl(a+b), err)` with `a+b = fl(a+b)+err`.
fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let err = (a - (s - bb)) + (b - bb);
    (s, err)
}

/// Like [`two_sum`] but requires `|a| ≥ |b|` (one branch cheaper).
fn quick_two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let err = b - (s - a);
    (s, err)
}

/// Exact product of two `f64`s via fused multiply-add.
fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let err = a.mul_add(b, -p);
    (p, err)
}

impl TwoF64 {
    /// The additive identity.
    pub const ZERO: Self = Self { hi: 0.0, lo: 0.0 };

    /// Lifts an `f64` exactly.
    #[must_use]
    pub fn from_f64(x: f64) -> Self {
        Self { hi: x, lo: 0.0 }
    }

    /// Rounds back to the nearest `f64`.
    #[must_use]
    pub fn value(self) -> f64 {
        self.hi + self.lo
    }

    /// Negation (exact).
    #[must_use]
    pub fn neg(self) -> Self {
        Self {
            hi: -self.hi,
            lo: -self.lo,
        }
    }

    /// Double-double + `f64`.
    #[must_use]
    pub fn add_f64(self, b: f64) -> Self {
        let (s, e) = two_sum(self.hi, b);
        let (hi, lo) = quick_two_sum(s, e + self.lo);
        Self { hi, lo }
    }

    /// Double-double + double-double.
    #[must_use]
    pub fn add(self, other: Self) -> Self {
        let (s, e) = two_sum(self.hi, other.hi);
        let (hi, lo) = quick_two_sum(s, e + self.lo + other.lo);
        Self { hi, lo }
    }

    /// Double-double − double-double.
    #[must_use]
    pub fn sub(self, other: Self) -> Self {
        self.add(other.neg())
    }

    /// Double-double × `f64`.
    #[must_use]
    pub fn mul_f64(self, b: f64) -> Self {
        let (p, e) = two_prod(self.hi, b);
        let (hi, lo) = quick_two_sum(p, e + self.lo * b);
        Self { hi, lo }
    }

    /// Double-double × double-double.
    #[must_use]
    pub fn mul(self, other: Self) -> Self {
        let (p, e) = two_prod(self.hi, other.hi);
        let (hi, lo) = quick_two_sum(p, e + self.hi * other.lo + self.lo * other.hi);
        Self { hi, lo }
    }

    /// Double-double ÷ double-double (one Newton correction step — accurate
    /// to the full double-double precision for the kernels' purposes).
    #[must_use]
    pub fn div(self, other: Self) -> Self {
        let q0 = self.hi / other.hi;
        let r = self.sub(other.mul_f64(q0));
        let q1 = (r.hi + r.lo) / other.hi;
        let (hi, lo) = quick_two_sum(q0, q1);
        Self { hi, lo }
    }

    /// Double-double ÷ `f64`.
    #[must_use]
    pub fn div_f64(self, b: f64) -> Self {
        self.div(Self::from_f64(b))
    }

    /// The reciprocal `1/b` at double-double precision.
    #[must_use]
    pub fn recip(b: f64) -> Self {
        Self::from_f64(1.0).div_f64(b)
    }
}

/// The harmonic sum `S = Σ_j 1/t_j` at double-double precision — the shared
/// one-pass prefix of the PR closed forms (`L* = R²/S`) and of every
/// leave-one-out latency (`L_{-i} = R²/(S − 1/t_i)`, Theorem 2.1).
#[must_use]
pub fn inv_sum_dd(values: &[f64]) -> TwoF64 {
    values
        .iter()
        .fold(TwoF64::ZERO, |acc, &t| acc.add(TwoF64::recip(t)))
}

/// Merges per-shard partial harmonic sums into one [`TwoF64`] total by a
/// deterministic balanced pairwise (tree) reduction over the shard order.
///
/// This is the root-coordinator half of the sharded round: shard `s` folds
/// `Σ 1/t_j` over its own agents ([`inv_sum_dd`] on its slice) and the root
/// merges the `k` partials here. The merge stays in double-double — each
/// [`TwoF64::add`] loses at most `O(2⁻¹⁰⁶)` relative — so the merged sum
/// agrees with the sequential fold to `~n·2⁻¹⁰⁶` relative, far below the
/// `2⁻⁵³` granularity at which any downstream `f64` result could change.
/// Merging post-rounded `f64` partials instead would inject `~2⁻⁵³`-relative
/// error per shard and make allocations depend on the shard count.
///
/// A single partial is returned unchanged (so `k = 1` is *exactly* the
/// sequential fold, bit for bit); an empty slice yields [`TwoF64::ZERO`].
#[must_use]
pub fn merge_inv_sums(partials: &[TwoF64]) -> TwoF64 {
    match partials {
        [] => TwoF64::ZERO,
        [only] => *only,
        _ => {
            let mid = partials.len() / 2;
            merge_inv_sums(&partials[..mid]).add(merge_inv_sums(&partials[mid..]))
        }
    }
}

/// Per-operation rounding bound of a double-double add/sub: each
/// [`TwoF64::add`] loses at most a few units in the last (106th) bit of the
/// larger operand. `ε² = 2⁻¹⁰⁴` absorbs the small constant.
const DD_OP_EPS: f64 = f64::EPSILON * f64::EPSILON;

/// The harmonic sum `S = Σ 1/b_i`, maintained *incrementally*: a Join adds
/// `1/b_i`, a Leave subtracts the same double-double term, a rate change is
/// a remove-then-insert. Each event is O(1); a from-scratch [`inv_sum_dd`]
/// rebuild is O(n).
///
/// # Drift accounting
///
/// Every add/sub rounds at `~2⁻¹⁰⁴` relative to the **larger** operand, so
/// after `k` events the accumulated error is bounded by
/// `k · peak · 2⁻¹⁰⁴`, where `peak` is the largest `|S|` the sum has passed
/// through since it was last rebuilt. The bound is tracked explicitly
/// ([`IncrementalInvSum::drift_bound`]): when heavy cancellation (a dominant
/// machine leaving) or sheer event count pushes it above a caller-chosen
/// fraction of the current `|S|`, [`IncrementalInvSum::needs_resum`] turns
/// true and the caller re-founds the state with a compensated
/// [`IncrementalInvSum::resum`] — which restores *exact* agreement with the
/// from-scratch fold, bit for bit. Re-summing every ≥ n events keeps the
/// amortized per-event cost O(1).
#[derive(Debug, Clone, Copy)]
pub struct IncrementalInvSum {
    sum: TwoF64,
    /// Largest `|S.hi|` observed since the last re-sum.
    peak: f64,
    /// Double-double add/sub operations since the last re-sum.
    ops: u64,
    /// Compensated re-sums performed over the lifetime of the state.
    resums: u64,
}

impl Default for IncrementalInvSum {
    fn default() -> Self {
        Self::new()
    }
}

impl IncrementalInvSum {
    /// An empty sum (no live terms).
    #[must_use]
    pub fn new() -> Self {
        Self {
            sum: TwoF64::ZERO,
            peak: 0.0,
            ops: 0,
            resums: 0,
        }
    }

    /// Founds the state from a slice of live latency parameters — exactly
    /// the sequential [`inv_sum_dd`] fold.
    #[must_use]
    pub fn from_values(values: &[f64]) -> Self {
        let sum = inv_sum_dd(values);
        Self {
            sum,
            peak: sum.hi.abs(),
            ops: 0,
            resums: 0,
        }
    }

    fn track(&mut self) {
        self.ops += 1;
        if self.sum.hi.abs() > self.peak {
            self.peak = self.sum.hi.abs();
        }
    }

    /// Adds `1/b` (a machine joining, or the insert half of a rate change).
    pub fn insert(&mut self, b: f64) {
        self.sum = self.sum.add(TwoF64::recip(b));
        self.track();
    }

    /// Subtracts `1/b` (a machine leaving). `b` must be the value that was
    /// inserted: the reciprocal is recomputed to the identical double-double
    /// term, so an insert/remove pair cancels to within one rounding step.
    pub fn remove(&mut self, b: f64) {
        self.sum = self.sum.sub(TwoF64::recip(b));
        self.track();
    }

    /// Replaces `old` with `new` (a rate change): remove-then-insert.
    pub fn replace(&mut self, old: f64, new: f64) {
        self.remove(old);
        self.insert(new);
    }

    /// The current double-double sum.
    #[must_use]
    pub fn value(self) -> TwoF64 {
        self.sum
    }

    /// Upper bound on the absolute error accumulated since the last re-sum:
    /// `ops · peak · 2⁻¹⁰⁴`.
    #[must_use]
    pub fn drift_bound(self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let ops = self.ops as f64;
        ops * self.peak * DD_OP_EPS
    }

    /// Whether the accumulated drift bound exceeds `rel_tol · |S|` — the
    /// signal to re-found the state from the live values. Also true when
    /// the sum has been driven to (near) zero after a non-trivial history,
    /// where no relative guarantee is possible.
    #[must_use]
    pub fn needs_resum(self, rel_tol: f64) -> bool {
        if self.ops == 0 {
            return false;
        }
        self.drift_bound() > rel_tol * self.sum.hi.abs()
    }

    /// Events (double-double operations) absorbed since the last re-sum.
    #[must_use]
    pub fn ops_since_resum(self) -> u64 {
        self.ops
    }

    /// Compensated re-sums performed so far (telemetry).
    #[must_use]
    pub fn resums(self) -> u64 {
        self.resums
    }

    /// Re-founds the state with a compensated from-scratch fold over the
    /// live values: afterwards the state is *bit-identical* to
    /// [`IncrementalInvSum::from_values`] and the drift bound is zero.
    pub fn resum(&mut self, values: &[f64]) {
        self.sum = inv_sum_dd(values);
        self.peak = self.sum.hi.abs();
        self.ops = 0;
        self.resums += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(compensated_sum(std::iter::empty()), 0.0);
        assert_eq!(CompensatedSum::new().value(), 0.0);
    }

    #[test]
    fn recovers_cancellation_kahan_cannot() {
        // Classic Neumaier witness: 1 + 1e100 + 1 - 1e100 == 2 exactly
        // under compensation, 0 under naive or plain-Kahan summation.
        let terms = [1.0, 1e100, 1.0, -1e100];
        let naive: f64 = terms.iter().sum();
        assert_eq!(naive, 0.0);
        assert_eq!(compensated_sum(terms.iter().copied()), 2.0);
    }

    #[test]
    fn matches_naive_on_benign_input() {
        let terms: Vec<f64> = (1..=100).map(f64::from).collect();
        let naive: f64 = terms.iter().sum();
        assert_eq!(compensated_sum(terms.iter().copied()), naive);
    }

    #[test]
    fn compensates_wide_magnitude_spread() {
        // n tiny terms drowned by one huge term: naive summation loses all
        // of them; the compensated sum keeps them to within one ulp.
        let small = 1e-8;
        let n = 10_000;
        let mut acc = CompensatedSum::new();
        acc.add(1e12);
        for _ in 0..n {
            acc.add(small);
        }
        acc.add(-1e12);
        let expected = f64::from(n) * small;
        let rel = ((acc.value() - expected) / expected).abs();
        assert!(rel < 1e-12, "relative error {rel:e}");
    }

    #[test]
    fn dd_addition_recovers_what_f64_rounds_away() {
        // In plain f64, (1 + 1e-20) − 1 == 0. The double-double keeps it.
        let a = TwoF64::from_f64(1.0).add_f64(1e-20);
        let diff = a.add_f64(-1.0);
        assert_eq!(diff.value(), 1e-20);
    }

    #[test]
    fn dd_mul_keeps_cross_terms() {
        // (1 + ulp-ish lo)² must keep the 2·hi·lo cross term that a plain
        // hi×hi product would drop.
        let x = TwoF64::from_f64(1.0).add_f64(1e-20);
        let sq = x.mul(x);
        assert_eq!(sq.hi, 1.0);
        assert!((sq.lo - 2e-20).abs() < 1e-30, "lo = {:e}", sq.lo);
    }

    #[test]
    fn dd_inv_sum_matches_exact_dyadic_case() {
        // 1/1 + 1/2 + 1/4 = 1.75 exactly in binary.
        let s = inv_sum_dd(&[1.0, 2.0, 4.0]);
        assert_eq!(s.hi, 1.75);
        assert_eq!(s.lo, 0.0);
    }

    #[test]
    fn dd_subtraction_of_dominant_term_keeps_residual() {
        // S = 1e12 + 1e-4 (16 orders apart): plain f64 drops the 1e-4 term
        // from S entirely (ulp(1e12) ≈ 1.2e-4), so S − 1e12 would return
        // garbage; dd keeps the residual to ~1e-16 relative.
        let big = 1e-12; // t small => 1/t = 1e12 dominates
        let s = inv_sum_dd(&[big, 1e4]);
        let residual = s.sub(TwoF64::recip(big));
        let rel = (residual.value() - 1e-4).abs() / 1e-4;
        assert!(rel < 1e-12, "relative error {rel:e}");
    }

    #[test]
    fn merging_one_partial_is_the_identity() {
        let s = inv_sum_dd(&[1.0, 3.0, 7.0]);
        let merged = merge_inv_sums(&[s]);
        assert_eq!(merged.hi.to_bits(), s.hi.to_bits());
        assert_eq!(merged.lo.to_bits(), s.lo.to_bits());
        assert_eq!(merge_inv_sums(&[]).value(), 0.0);
    }

    #[test]
    fn merged_shard_partials_round_to_the_sequential_sum() {
        // Any contiguous sharding of the value vector must merge to a sum
        // whose f64 rounding equals the sequential fold's — the property the
        // shard-count-invariance of allocations and payments rests on.
        let n: usize = 4096;
        #[allow(clippy::cast_precision_loss)]
        let values: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.37).collect();
        let seq = inv_sum_dd(&values);
        for k in [1usize, 2, 7, 64, 333] {
            let chunk = n.div_ceil(k);
            let partials: Vec<TwoF64> = values.chunks(chunk).map(inv_sum_dd).collect();
            let merged = merge_inv_sums(&partials);
            assert_eq!(
                merged.value().to_bits(),
                seq.value().to_bits(),
                "k = {k}: merged {:e} vs sequential {:e}",
                merged.value(),
                seq.value()
            );
            // The double-double components themselves agree to ~n·2⁻¹⁰⁶
            // relative — far tighter than the f64 ulp the rates divide by.
            let diff = merged.sub(seq).value().abs();
            assert!(diff <= 1e-25 * seq.value(), "k = {k}: dd gap {diff:e}");
        }
    }

    #[test]
    fn tolerance_scales_with_n_and_r() {
        assert!(feasibility_tolerance(1, 1.0) >= FEASIBILITY_TOL);
        assert!(feasibility_tolerance(10_000, 1.0) >= 100.0 * FEASIBILITY_TOL * 0.99);
        assert!(feasibility_tolerance(4, 1e6) >= 2e6 * FEASIBILITY_TOL * 0.99);
        // Small rates do not collapse the window below the base tolerance.
        assert!(feasibility_tolerance(1, 1e-30) >= FEASIBILITY_TOL);
    }

    #[test]
    fn incremental_sum_matches_insert_history() {
        let values = [1.0, 2.5, 0.125, 7.0, 1e-3];
        let mut inc = IncrementalInvSum::new();
        for &v in &values {
            inc.insert(v);
        }
        // Inserting in slice order IS the sequential fold, bit for bit.
        let seq = inv_sum_dd(&values);
        assert_eq!(inc.value().hi.to_bits(), seq.hi.to_bits());
        assert_eq!(inc.value().lo.to_bits(), seq.lo.to_bits());
        assert_eq!(inc.ops_since_resum(), values.len() as u64);
    }

    #[test]
    fn incremental_sum_drift_stays_below_1e12_under_adversarial_churn() {
        // Pinned drift bound at n = 10⁵ (the ISSUE-10 acceptance bar):
        // adversarial join/leave churn with a 10¹² magnitude spread — the
        // worst case for cancellation, since a dominant 1/b term repeatedly
        // enters and leaves the sum — must stay within 1e-12 *relative* of
        // a from-scratch rebuild at every checkpoint, without re-summing.
        let n: usize = 100_000;
        let value_of = |i: usize| {
            // Deterministic 10^±6 spread keyed on the slot index.
            #[allow(clippy::cast_precision_loss)]
            let e = ((i * 2_654_435_761) % 13) as f64 - 6.0;
            10f64.powf(e)
        };
        let mut live: Vec<f64> = (0..n).map(value_of).collect();
        let mut inc = IncrementalInvSum::from_values(&live);

        let mut worst_rel = 0.0f64;
        for round in 0..10 {
            // Churn 10⁴ events per round: remove the current heaviest
            // contributors (largest 1/b — the smallest values), then
            // re-insert replacements, so every round maximally cancels.
            let mut victims: Vec<usize> = (0..live.len()).collect();
            victims.sort_by(|&a, &b| live[a].total_cmp(&live[b]));
            victims.truncate(5_000);
            victims.sort_unstable();
            for &i in victims.iter().rev() {
                inc.remove(live[i]);
                live.swap_remove(i);
            }
            for k in 0..5_000 {
                let v = value_of(round * 5_000 + k);
                inc.insert(v);
                live.push(v);
            }
            let scratch = inv_sum_dd(&live);
            let rel = inc.value().sub(scratch).value().abs() / scratch.value();
            worst_rel = worst_rel.max(rel);
            assert!(
                rel <= 1e-12,
                "round {round}: incremental S drifted {rel:e} relative"
            );
            // The tracked bound itself stays far under the bar, so the
            // cancellation guard never needs to fire on this stream.
            assert!(!inc.needs_resum(1e-12));
        }
        // 10⁵ churn events later the drift is still far under the bar…
        assert!(worst_rel <= 1e-12, "worst drift {worst_rel:e}");
        assert_eq!(inc.ops_since_resum(), 100_000);

        // …and a compensated re-sum restores dd exactness, bit for bit.
        inc.resum(&live);
        let scratch = inv_sum_dd(&live);
        assert_eq!(inc.value().hi.to_bits(), scratch.hi.to_bits());
        assert_eq!(inc.value().lo.to_bits(), scratch.lo.to_bits());
        assert_eq!(inc.drift_bound(), 0.0);
        assert_eq!(inc.resums(), 1);
        assert!(!inc.needs_resum(1e-14));
    }

    #[test]
    fn needs_resum_fires_on_cancellation() {
        // A dominant term entering and leaving leaves the bound referenced
        // to the *peak* magnitude: once the survivors are tiny relative to
        // it, the state reports that no 1e-14-relative guarantee remains
        // only after enough operations accumulate.
        let mut inc = IncrementalInvSum::new();
        inc.insert(1e-12); // 1/b = 1e12 dominates
        for _ in 0..4 {
            inc.insert(1e6); // survivors contribute 1e-6 each
        }
        for _ in 0..200 {
            inc.replace(1e-12, 1e-12); // churn the dominant term
        }
        inc.remove(1e-12);
        assert!(inc.needs_resum(1e-14), "cancellation must trigger re-sum");
        // Fresh state never asks for a re-sum.
        assert!(!IncrementalInvSum::from_values(&[1.0, 2.0]).needs_resum(1e-14));
    }
}
