//! The per-round monitor report: what was checked, what held, what didn't.
//!
//! One [`MonitorReport`] is produced each time the
//! [`InvariantMonitor`](crate::monitor::InvariantMonitor) sees a completed
//! round (the `round.payment.total` gauge). Reports serialise to one JSON
//! object per line through the workspace's own
//! [`Json`](lb_telemetry::Json) model — the same JSONL discipline the
//! telemetry exporters use — so a session's verification history is a
//! greppable, re-parseable sidecar file, and the recovery tests can assert
//! a replayed round reports **bit-identically** to the uninterrupted one.

use lb_telemetry::Json;
use std::collections::BTreeMap;

/// One evaluated invariant check.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOutcome {
    /// Stable check name (`conservation`, `feasibility`, `exclusion`,
    /// `total`, `floor`, `drift`, `margin`).
    pub name: &'static str,
    /// Whether the invariant held.
    pub ok: bool,
    /// The check's witness value: residual for conservation/total, minimum
    /// rate for feasibility, worst excess for exclusion/floor, maximum
    /// relative drift, minimum probed margin.
    pub value: f64,
}

/// The verification verdict for one settled round.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorReport {
    /// Round index.
    pub round: u64,
    /// Machines in the round (respondents + excluded + silent).
    pub machines: usize,
    /// Machines that bid and were not excluded.
    pub respondents: usize,
    /// Whether every respondent's execution value matched its bid — the
    /// observable premise of Theorems 3.1/3.2, gating the floor and margin
    /// checks.
    pub consistent: bool,
    /// Every check evaluated this round, in evaluation order. Sampled
    /// checks (`drift`, `margin`) appear only on sampled rounds.
    pub checks: Vec<CheckOutcome>,
    /// Human-readable description of each violation (empty when clean).
    pub violations: Vec<String>,
}

impl MonitorReport {
    /// Whether every evaluated check held.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.checks.iter().all(|c| c.ok)
    }

    /// The outcome of the named check, if it was evaluated this round.
    #[must_use]
    pub fn check(&self, name: &str) -> Option<&CheckOutcome> {
        self.checks.iter().find(|c| c.name == name)
    }

    /// Serialises to a [`Json`] object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = BTreeMap::new();
        #[allow(clippy::cast_precision_loss)]
        obj.insert("round".to_string(), Json::Num(self.round as f64));
        #[allow(clippy::cast_precision_loss)]
        obj.insert("machines".to_string(), Json::Num(self.machines as f64));
        #[allow(clippy::cast_precision_loss)]
        obj.insert(
            "respondents".to_string(),
            Json::Num(self.respondents as f64),
        );
        obj.insert("consistent".to_string(), Json::Bool(self.consistent));
        obj.insert("ok".to_string(), Json::Bool(self.ok()));
        let checks = self
            .checks
            .iter()
            .map(|c| {
                let mut check = BTreeMap::new();
                check.insert("name".to_string(), Json::Str(c.name.to_string()));
                check.insert("ok".to_string(), Json::Bool(c.ok));
                check.insert("value".to_string(), Json::Num(c.value));
                Json::Obj(check)
            })
            .collect();
        obj.insert("checks".to_string(), Json::Arr(checks));
        obj.insert(
            "violations".to_string(),
            Json::Arr(
                self.violations
                    .iter()
                    .map(|v| Json::Str(v.clone()))
                    .collect(),
            ),
        );
        Json::Obj(obj)
    }

    /// One compact JSONL line (no trailing newline).
    #[must_use]
    pub fn to_jsonl_line(&self) -> String {
        self.to_json().render()
    }

    /// Rebuilds a report from [`MonitorReport::to_json`] output.
    ///
    /// Returns `None` on structurally foreign documents. Check names are
    /// interned back to the monitor's static vocabulary; an unknown name
    /// rejects the document (it cannot round-trip as `&'static str`).
    #[must_use]
    pub fn from_json(json: &Json) -> Option<MonitorReport> {
        const NAMES: [&str; 7] = [
            "conservation",
            "feasibility",
            "exclusion",
            "total",
            "floor",
            "drift",
            "margin",
        ];
        let round = json.get("round")?.as_u64()?;
        let machines = usize::try_from(json.get("machines")?.as_u64()?).ok()?;
        let respondents = usize::try_from(json.get("respondents")?.as_u64()?).ok()?;
        let consistent = json.get("consistent")?.as_bool()?;
        let mut checks = Vec::new();
        for check in json.get("checks")?.as_array()? {
            let name = check.get("name")?.as_str()?;
            let name = NAMES.iter().find(|&&k| k == name)?;
            checks.push(CheckOutcome {
                name,
                ok: check.get("ok")?.as_bool()?,
                value: check.get("value")?.as_f64()?,
            });
        }
        let mut violations = Vec::new();
        for v in json.get("violations")?.as_array()? {
            violations.push(v.as_str()?.to_string());
        }
        Some(MonitorReport {
            round,
            machines,
            respondents,
            consistent,
            checks,
            violations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MonitorReport {
        MonitorReport {
            round: 7,
            machines: 5,
            respondents: 4,
            consistent: true,
            checks: vec![
                CheckOutcome {
                    name: "conservation",
                    ok: true,
                    value: 1.1e-13,
                },
                CheckOutcome {
                    name: "margin",
                    ok: false,
                    value: -0.25,
                },
            ],
            violations: vec!["margin: round 7 agent 2 margin -0.25".to_string()],
        }
    }

    #[test]
    fn jsonl_round_trip_is_exact() {
        let report = sample();
        let line = report.to_jsonl_line();
        let parsed = Json::parse(&line).unwrap();
        assert_eq!(MonitorReport::from_json(&parsed), Some(report));
    }

    #[test]
    fn ok_reflects_checks_and_violations() {
        let mut report = sample();
        assert!(!report.ok());
        report.checks[1].ok = true;
        report.violations.clear();
        assert!(report.ok());
    }

    #[test]
    fn foreign_documents_are_rejected() {
        assert_eq!(MonitorReport::from_json(&Json::Null), None);
        let mut report = sample();
        report.checks[0].name = "conservation";
        let line = report.to_jsonl_line().replace("conservation", "bogus");
        let parsed = Json::parse(&line).unwrap();
        assert_eq!(MonitorReport::from_json(&parsed), None);
    }

    #[test]
    fn check_lookup_finds_outcomes() {
        let report = sample();
        assert!(report.check("conservation").unwrap().ok);
        assert!(!report.check("margin").unwrap().ok);
        assert!(report.check("drift").is_none());
    }
}
