//! Live verification-health documents for the exposition server.
//!
//! Renders the monitor's cumulative state and the ledger verdict into the
//! two JSON documents `lb_telemetry::ExposeServer` serves on
//! `/invariants` (per-check detail of the latest round plus cumulative
//! counts) and `/health` (one-line verdict: `ok` / `violating` /
//! `tampered`, plus the ledger chain head so an external scraper holds an
//! out-of-band copy — the piece that upgrades the non-cryptographic chain
//! from self-consistency to tamper evidence).

use crate::ledger::LedgerVerdict;
use crate::monitor::{InvariantMonitor, MonitorStats};
use crate::report::MonitorReport;
use lb_telemetry::{Exposition, Json};
use std::collections::BTreeMap;

#[allow(clippy::cast_precision_loss)]
fn num_u64(value: u64) -> Json {
    Json::Num(value as f64)
}

/// The `/invariants` document: cumulative check statistics and the latest
/// round's full report.
#[must_use]
pub fn invariants_json(stats: &MonitorStats, latest: Option<&MonitorReport>) -> Json {
    let mut obj = BTreeMap::new();
    obj.insert("rounds".to_string(), num_u64(stats.rounds));
    obj.insert(
        "violating_rounds".to_string(),
        num_u64(stats.violating_rounds),
    );
    let mut violations = BTreeMap::new();
    for (&name, &count) in &stats.violations {
        violations.insert(name.to_string(), num_u64(count));
    }
    obj.insert("violations".to_string(), Json::Obj(violations));
    obj.insert(
        "min_margin".to_string(),
        stats.min_margin.map_or(Json::Null, Json::Num),
    );
    obj.insert(
        "max_drift".to_string(),
        stats.max_drift.map_or(Json::Null, Json::Num),
    );
    obj.insert(
        "latest".to_string(),
        latest.map_or(Json::Null, MonitorReport::to_json),
    );
    Json::Obj(obj)
}

/// The `/health` document: an overall status string, headline counters and
/// the ledger chain state.
///
/// Status is `tampered` if a ledger verdict shows a seal divergence,
/// otherwise `violating` if any monitored round violated an invariant,
/// otherwise `ok`.
#[must_use]
pub fn health_json(stats: &MonitorStats, ledger: Option<&LedgerVerdict>) -> Json {
    let status = if ledger.is_some_and(|v| !v.is_intact()) {
        "tampered"
    } else if stats.violating_rounds > 0 {
        "violating"
    } else {
        "ok"
    };
    let mut obj = BTreeMap::new();
    obj.insert("status".to_string(), Json::Str(status.to_string()));
    obj.insert("rounds".to_string(), num_u64(stats.rounds));
    obj.insert("violations".to_string(), num_u64(stats.total_violations()));
    obj.insert(
        "min_margin".to_string(),
        stats.min_margin.map_or(Json::Null, Json::Num),
    );
    obj.insert(
        "last_round".to_string(),
        stats.last_round.map_or(Json::Null, num_u64),
    );
    let ledger_doc = ledger.map_or(Json::Null, |verdict| {
        let mut doc = BTreeMap::new();
        doc.insert(
            "head".to_string(),
            Json::Str(format!("{:#018x}", verdict.head)),
        );
        doc.insert("records".to_string(), num_u64(verdict.records as u64));
        doc.insert("seals".to_string(), num_u64(verdict.seals as u64));
        doc.insert("intact".to_string(), Json::Bool(verdict.is_intact()));
        doc.insert(
            "truncated_tail".to_string(),
            num_u64(verdict.truncated_tail as u64),
        );
        if let Some(div) = verdict.divergence {
            let mut at = BTreeMap::new();
            at.insert("record".to_string(), num_u64(div.record_index as u64));
            at.insert("offset".to_string(), num_u64(div.offset as u64));
            at.insert("seal".to_string(), num_u64(div.seal_index as u64));
            doc.insert("divergence".to_string(), Json::Obj(at));
        }
        Json::Obj(doc)
    });
    obj.insert("ledger".to_string(), ledger_doc);
    Json::Obj(obj)
}

/// Renders both documents from a monitor (and optional ledger verdict) and
/// publishes them on an [`Exposition`], making them visible on the bound
/// server's `/invariants` and `/health` endpoints.
pub fn publish(
    exposition: &Exposition,
    monitor: &InvariantMonitor,
    ledger: Option<&LedgerVerdict>,
) {
    let stats = monitor.stats();
    let latest = monitor.latest_report();
    exposition.publish_invariants(invariants_json(&stats, latest.as_ref()).render() + "\n");
    exposition.publish_health(health_json(&stats, ledger).render() + "\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::LedgerDivergence;

    fn stats() -> MonitorStats {
        let mut stats = MonitorStats {
            rounds: 12,
            violating_rounds: 1,
            min_margin: Some(0.25),
            max_drift: Some(3.0e-13),
            last_round: Some(11),
            ..MonitorStats::default()
        };
        stats.violations.insert("drift", 1);
        stats
    }

    #[test]
    fn health_status_escalates() {
        let clean = MonitorStats::default();
        assert_eq!(
            health_json(&clean, None).get("status").unwrap().as_str(),
            Some("ok")
        );
        assert_eq!(
            health_json(&stats(), None).get("status").unwrap().as_str(),
            Some("violating")
        );
        let tampered = LedgerVerdict {
            records: 9,
            seals: 1,
            undecodable: 0,
            head: 0xDEAD,
            truncated_tail: 0,
            divergence: Some(LedgerDivergence {
                record_index: 8,
                offset: 200,
                seal_index: 0,
                expected: 1,
                found: 2,
            }),
        };
        let doc = health_json(&stats(), Some(&tampered));
        assert_eq!(doc.get("status").unwrap().as_str(), Some("tampered"));
        let ledger = doc.get("ledger").unwrap();
        assert_eq!(ledger.get("intact").unwrap().as_bool(), Some(false));
        assert_eq!(
            ledger
                .get("divergence")
                .unwrap()
                .get("offset")
                .unwrap()
                .as_u64(),
            Some(200)
        );
    }

    #[test]
    fn documents_are_valid_json() {
        let doc = invariants_json(&stats(), None).render();
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(parsed.get("rounds").unwrap().as_u64(), Some(12));
        assert_eq!(parsed.get("latest"), Some(&Json::Null));
        assert_eq!(
            parsed
                .get("violations")
                .unwrap()
                .get("drift")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }

    #[test]
    fn ledger_head_renders_as_fixed_width_hex() {
        let verdict = LedgerVerdict {
            records: 1,
            seals: 0,
            undecodable: 0,
            head: 0xABC,
            truncated_tail: 0,
            divergence: None,
        };
        let doc = health_json(&MonitorStats::default(), Some(&verdict));
        assert_eq!(
            doc.get("ledger").unwrap().get("head").unwrap().as_str(),
            Some("0x0000000000000abc")
        );
    }
}
