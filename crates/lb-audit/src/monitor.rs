//! The streaming economic-invariant monitor.
//!
//! [`InvariantMonitor`] is a [`Collector`] wrapper: attach it where a
//! coordinator expects its telemetry collector and it observes the
//! settlement gauge stream (`bid.m{i}`, `alloc.rate.m{i}`, `exec.est.m{i}`,
//! `excluded.m{i}`, `payment.m{i}`, then `round.index`,
//! `round.total_rate`, `round.payment.total`), treating
//! `round.payment.total` — which the coordinator emits strictly last — as
//! the end-of-round trigger. Every event is forwarded unchanged to the
//! wrapped collector, so the monitor is *additive*: detach it and the
//! recording, the allocation and the payments are bit-identical
//! (observation inertness; the differential test lives in `tests/audit.rs`).
//!
//! Per settled round it checks:
//!
//! 1. **conservation** — `Σ x_i = R` within [`feasibility_tolerance`];
//! 2. **feasibility** — every allocated rate is finite and non-negative;
//! 3. **exclusion** — excluded machines got rate 0 and payment 0;
//! 4. **total** — the emitted `round.payment.total` matches `Σ P_i`;
//! 5. **floor** (Theorem 3.2, when every respondent's execution value
//!    matches its bid) — each respondent's utility `P_i + V_i ≥ 0`;
//! 6. **drift** (sampled) — payments agree with the independent
//!    double-double reference of [`crate::reference`];
//! 7. **margin** (sampled) — an online truthfulness probe
//!    ([`lb_mechanism::truthfulness_probe`], O(n)): one agent per sampled
//!    round is re-evaluated under a perturbed bid; against a consistent
//!    round the observed bid must weakly dominate (Theorem 3.1).
//!
//! Outcomes are re-emitted as `audit.*` telemetry under
//! [`Subsystem::Audit`] (gauges `audit.check.<name>`, `audit.margin.min`,
//! `audit.drift.max`, counters `audit.rounds` and
//! `audit.violation.<name>`, instants `audit.report` /
//! `audit.violation`), accumulated in [`MonitorStats`], and kept as
//! [`MonitorReport`]s for exposition. [`ViolationPolicy`] decides whether a
//! violation merely logs or panics the process (`Abort` — for harnesses
//! that must fail fast, e.g. CI fuzz runs).

use crate::reference::reference_payments;
use crate::report::{CheckOutcome, MonitorReport};
use lb_core::{compensated_sum, feasibility_tolerance};
use lb_mechanism::{truthfulness_probe, CompensationBonusMechanism};
use lb_telemetry::{Collector, EventKind, Field, Sampler, SpanId, Subsystem, TelemetryEvent};
use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What to do when a round violates an invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ViolationPolicy {
    /// Record the violation (telemetry, stats, report) and keep going.
    #[default]
    Log,
    /// Record the violation, then panic. For harnesses where a violated
    /// economic invariant must fail the run immediately.
    Abort,
}

/// Monitor configuration.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// The mechanism the coordinator is believed to run; used by the floor
    /// valuation, the drift reference and the truthfulness probe.
    pub mechanism: CompensationBonusMechanism,
    /// Seed for the head-based samplers (pair with the session seed so a
    /// replay samples the same rounds).
    pub seed: u64,
    /// Which rounds get the double-double payment-drift reference.
    pub drift_sampler: Sampler,
    /// Which rounds get a truthfulness probe.
    pub probe_sampler: Sampler,
    /// Relative bid perturbation for the probe (probed both up and down).
    pub probe_delta: f64,
    /// Relative tolerance for the payment-scale checks (total, floor,
    /// drift, margin).
    pub rel_tol: f64,
    /// Violation handling.
    pub policy: ViolationPolicy,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            mechanism: CompensationBonusMechanism::paper(),
            seed: 0,
            drift_sampler: Sampler::Always,
            probe_sampler: Sampler::Always,
            probe_delta: 0.1,
            rel_tol: 1e-9,
            policy: ViolationPolicy::Log,
        }
    }
}

/// Cumulative monitor statistics, cheap to snapshot for exposition.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MonitorStats {
    /// Rounds observed to completion.
    pub rounds: u64,
    /// Rounds with at least one violation.
    pub violating_rounds: u64,
    /// Violations by check name.
    pub violations: BTreeMap<&'static str, u64>,
    /// Smallest truthfulness margin probed so far (`None` until a probe
    /// runs).
    pub min_margin: Option<f64>,
    /// Largest relative payment drift seen so far.
    pub max_drift: Option<f64>,
    /// Index of the last completed round.
    pub last_round: Option<u64>,
}

impl MonitorStats {
    /// Total violations across all checks.
    #[must_use]
    pub fn total_violations(&self) -> u64 {
        self.violations.values().sum()
    }
}

/// Per-round observation being assembled from the gauge stream.
#[derive(Debug, Default)]
struct Observation {
    bids: Vec<f64>,
    rates: Vec<f64>,
    execs: Vec<f64>,
    excluded: Vec<f64>,
    payments: Vec<f64>,
    round: u64,
    total_rate: f64,
}

impl Observation {
    fn set(slot: &mut Vec<f64>, machine: usize, value: f64) {
        // The coordinator emits machines in index order, so the hot path is
        // a plain push; the general resize only runs on out-of-order or
        // re-emitted gauges.
        if slot.len() == machine {
            slot.push(value);
        } else if slot.len() > machine {
            slot[machine] = value;
        } else {
            slot.resize(machine, f64::NAN);
            slot.push(value);
        }
    }

    /// All five per-machine vectors fully populated and equally long?
    fn complete(&self) -> bool {
        let n = self.payments.len();
        n > 0
            && [&self.bids, &self.rates, &self.execs, &self.excluded]
                .iter()
                .all(|v| v.len() == n)
            && [
                &self.bids,
                &self.rates,
                &self.execs,
                &self.excluded,
                &self.payments,
            ]
            .iter()
            .all(|v| v.iter().all(|x| !x.is_nan()))
    }
}

/// Strips `prefix` + decimal machine index from a per-machine gauge name.
/// Manual digit loop: this runs once per settlement gauge, and
/// `str::parse`'s full `FromStr` machinery is measurable there.
fn machine_index(name: &str, prefix: &str) -> Option<usize> {
    let digits = name.strip_prefix(prefix)?.as_bytes();
    if digits.is_empty() {
        return None;
    }
    let mut index = 0usize;
    for &b in digits {
        if !b.is_ascii_digit() {
            return None;
        }
        index = index.checked_mul(10)?.checked_add(usize::from(b - b'0'))?;
    }
    Some(index)
}

/// Source of unique monitor instance ids (keys into the thread-local
/// observation registry).
static MONITOR_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread, per-monitor in-flight observations. The ingest path is
    /// the monitor's only per-event cost, and a process-wide mutex there
    /// triples it; a round's settlement gauges are emitted back-to-back by
    /// one coordinator thread, so thread-local assembly is both lock-free
    /// and immune to two coordinators interleaving their streams.
    static OBSERVATIONS: RefCell<Vec<(u64, Observation)>> = const { RefCell::new(Vec::new()) };
}

/// The streaming invariant monitor. See the module docs.
///
/// Rounds are assembled per emitting thread: all settlement gauges of one
/// round must arrive from the same thread (the coordinator's settle phase
/// is single-threaded, so this holds by construction).
pub struct InvariantMonitor {
    inner: std::sync::Arc<dyn Collector>,
    config: MonitorConfig,
    /// Key into [`OBSERVATIONS`], unique per monitor instance.
    id: u64,
    stats: Mutex<MonitorStats>,
    reports: Mutex<Vec<MonitorReport>>,
    /// Span ids when the wrapped collector is disabled (ids must still be
    /// unique so span pairing stays well-formed for any later wrapper).
    fallback_ids: AtomicU64,
    #[allow(clippy::type_complexity)]
    on_violation: Mutex<Option<Box<dyn Fn(&MonitorReport) + Send + Sync>>>,
}

impl Drop for InvariantMonitor {
    fn drop(&mut self) {
        // Release this monitor's buffer on the dropping thread (buffers on
        // other threads are reclaimed only at thread exit; each is a few
        // small vectors, bounded by the monitors that thread ever fed).
        let _ = OBSERVATIONS.try_with(|cell| {
            if let Ok(mut buffers) = cell.try_borrow_mut() {
                buffers.retain(|(id, _)| *id != self.id);
            }
        });
    }
}

impl InvariantMonitor {
    /// Wraps `inner` with the given configuration.
    #[must_use]
    pub fn new(inner: std::sync::Arc<dyn Collector>, config: MonitorConfig) -> Self {
        Self {
            inner,
            config,
            id: MONITOR_IDS.fetch_add(1, Ordering::Relaxed),
            stats: Mutex::new(MonitorStats::default()),
            reports: Mutex::new(Vec::new()),
            fallback_ids: AtomicU64::new(1),
            on_violation: Mutex::new(None),
        }
    }

    /// Registers a callback invoked (synchronously, on the recording
    /// thread) for every violating round's report, before the policy acts.
    pub fn set_violation_callback(
        &self,
        callback: impl Fn(&MonitorReport) + Send + Sync + 'static,
    ) {
        *self.on_violation.lock().expect("monitor callback lock") = Some(Box::new(callback));
    }

    /// Snapshot of the cumulative statistics.
    ///
    /// # Panics
    /// Panics if a recording thread panicked while holding the stats lock.
    #[must_use]
    pub fn stats(&self) -> MonitorStats {
        self.stats.lock().expect("monitor stats lock").clone()
    }

    /// The most recent round's report, if any round completed.
    ///
    /// # Panics
    /// Panics if a recording thread panicked while holding the report lock.
    #[must_use]
    pub fn latest_report(&self) -> Option<MonitorReport> {
        self.reports
            .lock()
            .expect("monitor report lock")
            .last()
            .cloned()
    }

    /// All reports so far, in round-completion order.
    ///
    /// # Panics
    /// Panics if a recording thread panicked while holding the report lock.
    #[must_use]
    pub fn reports(&self) -> Vec<MonitorReport> {
        self.reports.lock().expect("monitor report lock").clone()
    }

    /// Ingests one gauge; returns the finished observation on the
    /// end-of-round trigger. This is the per-event hot path: one
    /// thread-local lookup and a first-byte dispatch, no locks.
    fn ingest(&self, name: &str, value: f64) -> Option<(Observation, f64)> {
        OBSERVATIONS.with(|cell| {
            let mut buffers = cell.borrow_mut();
            let obs = match buffers.iter().position(|(id, _)| *id == self.id) {
                Some(pos) => &mut buffers[pos].1,
                None => {
                    buffers.push((self.id, Observation::default()));
                    &mut buffers.last_mut().expect("just pushed").1
                }
            };
            match name.as_bytes().first() {
                Some(b'b') => {
                    if let Some(i) = machine_index(name, "bid.m") {
                        Observation::set(&mut obs.bids, i, value);
                    }
                }
                Some(b'a') => {
                    if let Some(i) = machine_index(name, "alloc.rate.m") {
                        Observation::set(&mut obs.rates, i, value);
                    }
                }
                Some(b'e') => {
                    if let Some(i) = machine_index(name, "exec.est.m") {
                        Observation::set(&mut obs.execs, i, value);
                    } else if let Some(i) = machine_index(name, "excluded.m") {
                        Observation::set(&mut obs.excluded, i, value);
                    }
                }
                Some(b'p') => {
                    if let Some(i) = machine_index(name, "payment.m") {
                        Observation::set(&mut obs.payments, i, value);
                    }
                }
                Some(b'r') => {
                    if name == "round.index" {
                        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                        {
                            obs.round = value.max(0.0) as u64;
                        }
                    } else if name == "round.total_rate" {
                        obs.total_rate = value;
                    } else if name == "round.payment.total" {
                        return Some((std::mem::take(obs), value));
                    }
                }
                _ => {}
            }
            None
        })
    }

    /// Runs every check against a completed observation.
    fn check_round(&self, obs: &Observation, payment_total: f64) -> MonitorReport {
        let n = obs.payments.len();
        let mut checks = Vec::new();
        let mut violations = Vec::new();
        let fail = |checks: &mut Vec<CheckOutcome>,
                    violations: &mut Vec<String>,
                    name: &'static str,
                    ok: bool,
                    value: f64,
                    detail: String| {
            checks.push(CheckOutcome { name, ok, value });
            if !ok {
                violations.push(format!("{name}: {detail}"));
            }
        };

        if !obs.complete() {
            return MonitorReport {
                round: obs.round,
                machines: n,
                respondents: 0,
                consistent: false,
                checks,
                violations: vec![format!(
                    "stream: round {} settlement gauges incomplete",
                    obs.round
                )],
            };
        }

        let respondents: Vec<usize> = (0..n)
            .filter(|&i| obs.excluded[i] == 0.0 && obs.bids[i] > 0.0)
            .collect();
        let consistent = respondents.iter().all(|&i| {
            let scale = 1.0 + obs.bids[i].abs();
            (obs.execs[i] - obs.bids[i]).abs() <= self.config.rel_tol * scale
        });

        // 1. Conservation: allocated rates sum to R.
        let tol = feasibility_tolerance(n, obs.total_rate);
        let residual = compensated_sum(obs.rates.iter().copied()) - obs.total_rate;
        fail(
            &mut checks,
            &mut violations,
            "conservation",
            residual.abs() <= tol,
            residual,
            format!("Σx − R = {residual:e} exceeds {tol:e}"),
        );

        // 2. Feasibility: finite, non-negative rates.
        let min_rate = obs.rates.iter().copied().fold(f64::INFINITY, f64::min);
        let finite = obs.rates.iter().all(|x| x.is_finite());
        fail(
            &mut checks,
            &mut violations,
            "feasibility",
            finite && min_rate >= 0.0,
            min_rate,
            format!("minimum allocated rate {min_rate}"),
        );

        // 3. Exclusion zeroing: excluded machines hold nothing and get paid
        // nothing.
        let excess = (0..n)
            .filter(|&i| obs.excluded[i] != 0.0)
            .map(|i| obs.rates[i].abs().max(obs.payments[i].abs()))
            .fold(0.0f64, f64::max);
        fail(
            &mut checks,
            &mut violations,
            "exclusion",
            excess == 0.0,
            excess,
            format!("excluded machine holds rate/payment up to {excess}"),
        );

        // 4. The emitted aggregate matches the per-machine payments.
        let payment_scale: f64 = 1.0 + obs.payments.iter().map(|p| p.abs()).sum::<f64>();
        let total_residual = compensated_sum(obs.payments.iter().copied()) - payment_total;
        fail(
            &mut checks,
            &mut violations,
            "total",
            total_residual.abs() <= self.config.rel_tol * payment_scale,
            total_residual,
            format!("ΣP − round.payment.total = {total_residual:e}"),
        );

        // 5. Theorem 3.2 floor: in a consistent round (every respondent
        // executed at its bid) each respondent's utility P_i + V_i is a
        // leave-one-out marginal contribution, hence non-negative.
        if consistent && respondents.len() >= 2 {
            let model = self.config.mechanism.valuation;
            let mut worst = f64::INFINITY;
            let mut worst_agent = 0;
            for &i in &respondents {
                let utility = obs.payments[i] + model.valuation(obs.rates[i], obs.execs[i]);
                if utility < worst {
                    worst = utility;
                    worst_agent = i;
                }
            }
            let floor_tol = self.config.rel_tol * payment_scale;
            fail(
                &mut checks,
                &mut violations,
                "floor",
                worst >= -floor_tol,
                worst,
                format!("machine {worst_agent} utility {worst} below zero"),
            );
        }

        // The respondent-subset clones are only needed by the sampled heavy
        // checks; on unsampled rounds the monitor must not allocate them.
        let drift_round = respondents.len() >= 2
            && self
                .config
                .drift_sampler
                .admits(self.config.seed, obs.round);
        let probe_round = respondents.len() >= 2
            && self
                .config
                .probe_sampler
                .admits(self.config.seed, obs.round);
        let sub = |source: &[f64]| -> Vec<f64> { respondents.iter().map(|&i| source[i]).collect() };
        let (sub_bids, sub_execs) = if drift_round || probe_round {
            (sub(&obs.bids), sub(&obs.execs))
        } else {
            (Vec::new(), Vec::new())
        };

        // 6. Sampled double-double payment drift.
        if drift_round {
            if let Some(reference) = reference_payments(
                &sub_bids,
                &sub(&obs.rates),
                &sub_execs,
                obs.total_rate,
                self.config.mechanism.valuation,
            ) {
                let mut drift = 0.0f64;
                let sub_payments = sub(&obs.payments);
                for (&paid, &reference) in sub_payments.iter().zip(&reference) {
                    drift = drift.max((paid - reference).abs() / (1.0 + reference.abs()));
                }
                fail(
                    &mut checks,
                    &mut violations,
                    "drift",
                    drift <= self.config.rel_tol,
                    drift,
                    format!("payment drifted {drift:e} from the dd reference"),
                );
            }
        }

        // 7. Sampled truthfulness probe: one agent and one perturbation
        // direction per sampled round (direction alternates with the round
        // parity, agents rotate round-robin), so a session sweeps the fleet
        // in both directions at half the per-probe cost.
        if probe_round {
            #[allow(clippy::cast_possible_truncation)]
            let agent = (obs.round as usize) % respondents.len();
            let delta = if obs.round % 2 == 0 {
                self.config.probe_delta
            } else {
                -self.config.probe_delta
            };
            let mut margin = f64::INFINITY;
            if let Ok(probe) = truthfulness_probe(
                &self.config.mechanism,
                &sub_bids,
                agent,
                delta,
                &sub_execs,
                obs.total_rate,
            ) {
                margin = margin.min(probe.margin());
            }
            if margin.is_finite() {
                // Theorem 3.1 only bounds consistent rounds; otherwise the
                // margin is recorded as data, not judged.
                let ok = !consistent || margin >= -self.config.rel_tol * payment_scale;
                fail(
                    &mut checks,
                    &mut violations,
                    "margin",
                    ok,
                    margin,
                    format!(
                        "respondent {} (machine {}) gains {:e} by deviating",
                        agent, respondents[agent], -margin
                    ),
                );
            }
        }

        MonitorReport {
            round: obs.round,
            machines: n,
            respondents: respondents.len(),
            consistent,
            checks,
            violations,
        }
    }

    /// Re-emits a report as `audit.*` telemetry on the wrapped collector.
    fn emit(&self, at: f64, report: &MonitorReport, stats: &MonitorStats) {
        if !self.inner.enabled() {
            return;
        }
        for check in &report.checks {
            self.inner.record(TelemetryEvent {
                at,
                name: Cow::Owned(format!("audit.check.{}", check.name)),
                cat: Subsystem::Audit,
                kind: EventKind::Gauge {
                    value: if check.ok { 1.0 } else { 0.0 },
                },
                fields: Vec::new(),
            });
            if !check.ok {
                self.inner.record(TelemetryEvent {
                    at,
                    name: Cow::Owned(format!("audit.violation.{}", check.name)),
                    cat: Subsystem::Audit,
                    kind: EventKind::Counter { delta: 1 },
                    fields: Vec::new(),
                });
            }
        }
        if let Some(margin) = report.check("margin").map(|c| c.value) {
            self.inner
                .gauge(at, "audit.margin.last", Subsystem::Audit, margin);
        }
        if let Some(min_margin) = stats.min_margin {
            self.inner
                .gauge(at, "audit.margin.min", Subsystem::Audit, min_margin);
        }
        if let Some(max_drift) = stats.max_drift {
            self.inner
                .gauge(at, "audit.drift.max", Subsystem::Audit, max_drift);
        }
        self.inner.counter(at, "audit.rounds", Subsystem::Audit, 1);
        let mut fields = vec![
            Field::u64("round", report.round),
            Field::bool("ok", report.ok()),
        ];
        if !report.violations.is_empty() {
            fields.push(Field::str("first", report.violations[0].clone()));
            self.inner
                .instant(at, "audit.violation", Subsystem::Audit, fields.clone());
        }
        self.inner
            .instant(at, "audit.report", Subsystem::Audit, fields);
    }

    /// Trigger path: check, account, emit, notify, enforce policy.
    fn finish_round(&self, at: f64, obs: &Observation, payment_total: f64) {
        let report = self.check_round(obs, payment_total);
        let stats = {
            let mut stats = self.stats.lock().expect("monitor stats lock");
            stats.rounds += 1;
            stats.last_round = Some(report.round);
            if !report.ok() {
                stats.violating_rounds += 1;
            }
            for check in &report.checks {
                if !check.ok {
                    *stats.violations.entry(check.name).or_insert(0) += 1;
                }
            }
            if let Some(margin) = report.check("margin").map(|c| c.value) {
                stats.min_margin = Some(stats.min_margin.map_or(margin, |m: f64| m.min(margin)));
            }
            if let Some(drift) = report.check("drift").map(|c| c.value) {
                stats.max_drift = Some(stats.max_drift.map_or(drift, |d: f64| d.max(drift)));
            }
            stats.clone()
        };
        self.emit(at, &report, &stats);
        let violated = !report.ok();
        if violated {
            if let Some(callback) = self
                .on_violation
                .lock()
                .expect("monitor callback lock")
                .as_ref()
            {
                callback(&report);
            }
        }
        let summary = report.violations.join("; ");
        self.reports
            .lock()
            .expect("monitor report lock")
            .push(report);
        if violated && self.config.policy == ViolationPolicy::Abort {
            panic!("lb-audit invariant violation: {summary}");
        }
    }

    /// Returns a checked round's buffers to the thread-local slot so the
    /// next round stores into retained capacity instead of regrowing five
    /// vectors from empty.
    fn recycle(&self, mut obs: Observation) {
        obs.bids.clear();
        obs.rates.clear();
        obs.execs.clear();
        obs.excluded.clear();
        obs.payments.clear();
        obs.round = 0;
        obs.total_rate = 0.0;
        let _ = OBSERVATIONS.try_with(|cell| {
            if let Ok(mut buffers) = cell.try_borrow_mut() {
                if let Some(pos) = buffers.iter().position(|(id, o)| {
                    *id == self.id && o.payments.is_empty() && o.bids.is_empty()
                }) {
                    buffers[pos].1 = obs;
                }
            }
        });
    }
}

impl Collector for InvariantMonitor {
    /// Always enabled: the monitor needs the gauge stream even when the
    /// wrapped collector is a noop (checks still run; only re-emission is
    /// skipped).
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: TelemetryEvent) {
        if event.cat == Subsystem::Coordinator {
            if let EventKind::Gauge { value } = event.kind {
                if let Some((obs, payment_total)) = self.ingest(&event.name, value) {
                    self.finish_round(event.at, &obs, payment_total);
                    self.recycle(obs);
                }
            }
        }
        if self.inner.enabled() {
            self.inner.record(event);
        }
    }

    fn next_span_id(&self) -> SpanId {
        if self.inner.enabled() {
            self.inner.next_span_id()
        } else {
            SpanId(self.fallback_ids.fetch_add(1, Ordering::Relaxed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_core::scenario::{paper_system, PAPER_ARRIVAL_RATE};
    use lb_mechanism::{run_mechanism, Profile};
    use lb_telemetry::{noop_collector, RingCollector};
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    /// Feeds one settled round's gauge stream straight into the monitor,
    /// exactly as `Coordinator::emit_settlement_gauges` would.
    fn feed_round(
        monitor: &InvariantMonitor,
        round: u64,
        bids: &[f64],
        rates: &[f64],
        execs: &[f64],
        excluded: &[bool],
        payments: &[f64],
        total_rate: f64,
    ) {
        let gauge = |name: String, value: f64| {
            monitor.record(TelemetryEvent {
                at: 1.0,
                name: Cow::Owned(name),
                cat: Subsystem::Coordinator,
                kind: EventKind::Gauge { value },
                fields: Vec::new(),
            });
        };
        for i in 0..payments.len() {
            gauge(format!("bid.m{i}"), bids[i]);
            gauge(format!("alloc.rate.m{i}"), rates[i]);
            gauge(format!("exec.est.m{i}"), execs[i]);
            gauge(
                format!("excluded.m{i}"),
                if excluded[i] { 1.0 } else { 0.0 },
            );
            gauge(format!("payment.m{i}"), payments[i]);
        }
        #[allow(clippy::cast_precision_loss)]
        gauge("round.index".to_string(), round as f64);
        gauge("round.total_rate".to_string(), total_rate);
        gauge("round.payment.total".to_string(), payments.iter().sum());
    }

    /// A truthful paper-testbed round as (bids, rates, execs, excluded,
    /// payments).
    #[allow(clippy::type_complexity)]
    fn truthful_round() -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<bool>, Vec<f64>) {
        let mech = CompensationBonusMechanism::paper();
        let profile = Profile::truthful(&paper_system(), PAPER_ARRIVAL_RATE).unwrap();
        let out = run_mechanism(&mech, &profile).unwrap();
        let n = profile.len();
        (
            profile.bids().to_vec(),
            (0..n).map(|i| out.allocation.rate(i)).collect(),
            profile.exec_values().to_vec(),
            vec![false; n],
            out.payments.clone(),
        )
    }

    #[test]
    fn clean_round_passes_every_check() {
        let monitor = InvariantMonitor::new(noop_collector(), MonitorConfig::default());
        let (bids, rates, execs, excluded, payments) = truthful_round();
        feed_round(
            &monitor,
            0,
            &bids,
            &rates,
            &execs,
            &excluded,
            &payments,
            PAPER_ARRIVAL_RATE,
        );
        let report = monitor.latest_report().expect("round observed");
        assert!(report.ok(), "{:?}", report.violations);
        assert!(report.consistent);
        assert_eq!(report.respondents, bids.len());
        for name in [
            "conservation",
            "feasibility",
            "exclusion",
            "total",
            "floor",
            "drift",
            "margin",
        ] {
            assert!(report.check(name).is_some(), "{name} missing");
        }
        let stats = monitor.stats();
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.total_violations(), 0);
        assert!(stats.min_margin.unwrap() >= -1e-9);
        assert!(stats.max_drift.unwrap() <= 1e-9);
    }

    #[test]
    fn corrupted_payment_is_flagged() {
        let monitor = InvariantMonitor::new(noop_collector(), MonitorConfig::default());
        let (bids, rates, execs, excluded, mut payments) = truthful_round();
        payments[3] += 0.5; // skim half a unit
        feed_round(
            &monitor,
            0,
            &bids,
            &rates,
            &execs,
            &excluded,
            &payments,
            PAPER_ARRIVAL_RATE,
        );
        let report = monitor.latest_report().unwrap();
        assert!(!report.ok());
        assert!(!report.check("drift").unwrap().ok, "{report:?}");
    }

    #[test]
    fn conservation_violation_is_flagged() {
        let monitor = InvariantMonitor::new(noop_collector(), MonitorConfig::default());
        let (bids, mut rates, execs, excluded, payments) = truthful_round();
        rates[0] += 0.25;
        feed_round(
            &monitor,
            0,
            &bids,
            &rates,
            &execs,
            &excluded,
            &payments,
            PAPER_ARRIVAL_RATE,
        );
        let report = monitor.latest_report().unwrap();
        assert!(!report.check("conservation").unwrap().ok);
    }

    #[test]
    fn excluded_machine_with_payment_is_flagged() {
        let monitor = InvariantMonitor::new(noop_collector(), MonitorConfig::default());
        let (bids, rates, execs, mut excluded, payments) = truthful_round();
        excluded[5] = true; // machine 5 still holds its rate and payment
        feed_round(
            &monitor,
            0,
            &bids,
            &rates,
            &execs,
            &excluded,
            &payments,
            PAPER_ARRIVAL_RATE,
        );
        let report = monitor.latest_report().unwrap();
        assert!(!report.check("exclusion").unwrap().ok);
    }

    #[test]
    fn floor_violation_is_flagged_and_callback_fires() {
        let monitor = InvariantMonitor::new(noop_collector(), MonitorConfig::default());
        let fired = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&fired);
        monitor.set_violation_callback(move |report| {
            assert!(!report.ok());
            seen.fetch_add(1, Ordering::SeqCst);
        });
        let (bids, rates, execs, excluded, mut payments) = truthful_round();
        // Underpay machine 0 so its utility P + V dives below zero.
        payments[0] -= 1000.0;
        feed_round(
            &monitor,
            0,
            &bids,
            &rates,
            &execs,
            &excluded,
            &payments,
            PAPER_ARRIVAL_RATE,
        );
        let report = monitor.latest_report().unwrap();
        assert!(!report.check("floor").unwrap().ok);
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn inconsistent_round_skips_floor_but_records_margin() {
        let monitor = InvariantMonitor::new(noop_collector(), MonitorConfig::default());
        let (bids, rates, mut execs, excluded, payments) = truthful_round();
        execs[2] *= 1.5; // machine 2 executed slower than it bid
        feed_round(
            &monitor,
            0,
            &bids,
            &rates,
            &execs,
            &excluded,
            &payments,
            PAPER_ARRIVAL_RATE,
        );
        let report = monitor.latest_report().unwrap();
        assert!(!report.consistent);
        assert!(report.check("floor").is_none());
        // Margins are recorded as data but never judged in an inconsistent
        // round.
        if let Some(margin) = report.check("margin") {
            assert!(margin.ok);
        }
    }

    #[test]
    #[should_panic(expected = "lb-audit invariant violation")]
    fn abort_policy_panics_on_violation() {
        let monitor = InvariantMonitor::new(
            noop_collector(),
            MonitorConfig {
                policy: ViolationPolicy::Abort,
                ..MonitorConfig::default()
            },
        );
        let (bids, mut rates, execs, excluded, payments) = truthful_round();
        rates[1] = -rates[1];
        feed_round(
            &monitor,
            0,
            &bids,
            &rates,
            &execs,
            &excluded,
            &payments,
            PAPER_ARRIVAL_RATE,
        );
    }

    #[test]
    fn sharded_round_streams_through_the_monitor() {
        // The monitor attaches to the *root* of the hierarchical shard
        // tier exactly as it does to a single coordinator: the shard
        // workers report partial sums upward, the root settles, and its
        // settlement gauge stream must pass every streaming check.
        use lb_proto::{run_round_sharded_observed, NodeSpec, ProtocolConfig};
        use lb_sim::driver::SimulationConfig;
        use lb_sim::server::ServiceModel;

        let monitor = Arc::new(InvariantMonitor::new(
            noop_collector(),
            MonitorConfig::default(),
        ));
        let mech = CompensationBonusMechanism::paper();
        #[allow(clippy::cast_precision_loss)]
        let specs: Vec<NodeSpec> = (0..24)
            .map(|i| NodeSpec::truthful(1.0 + (i % 7) as f64))
            .collect();
        let config = ProtocolConfig {
            total_rate: 20.0,
            simulation: SimulationConfig {
                horizon: 50.0,
                seed: 7,
                model: ServiceModel::StationaryDeterministic,
                warmup: 0.0,
                ..SimulationConfig::default()
            },
            ..ProtocolConfig::default()
        };
        let report = run_round_sharded_observed(
            &mech,
            &specs,
            &config,
            5,
            Arc::clone(&monitor) as Arc<dyn Collector>,
        )
        .expect("sharded round settles");
        assert_eq!(report.rates.len(), specs.len());

        let audit = monitor
            .latest_report()
            .expect("root settle streamed its gauges through the shard tier");
        assert!(audit.ok(), "{:?}", audit.violations);
        assert_eq!(audit.respondents, specs.len());
        let stats = monitor.stats();
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.total_violations(), 0);
    }

    #[test]
    fn forwards_events_and_emits_audit_telemetry() {
        let ring = Arc::new(RingCollector::new(4096));
        let monitor = InvariantMonitor::new(ring.clone(), MonitorConfig::default());
        let (bids, rates, execs, excluded, payments) = truthful_round();
        feed_round(
            &monitor,
            3,
            &bids,
            &rates,
            &execs,
            &excluded,
            &payments,
            PAPER_ARRIVAL_RATE,
        );
        let events = ring.snapshot();
        // Every forwarded gauge is present…
        assert!(events.iter().any(|e| e.name == "round.payment.total"));
        // …plus the audit re-emission.
        assert!(events
            .iter()
            .any(|e| e.name == "audit.check.conservation" && e.cat == Subsystem::Audit));
        assert!(events.iter().any(|e| e.name == "audit.report"));
        assert!(events.iter().any(|e| e.name == "audit.rounds"));
    }

    #[test]
    fn sampling_gates_the_expensive_checks() {
        let monitor = InvariantMonitor::new(
            noop_collector(),
            MonitorConfig {
                drift_sampler: Sampler::Never,
                probe_sampler: Sampler::PerRound(2),
                ..MonitorConfig::default()
            },
        );
        let (bids, rates, execs, excluded, payments) = truthful_round();
        for round in 0..2 {
            feed_round(
                &monitor,
                round,
                &bids,
                &rates,
                &execs,
                &excluded,
                &payments,
                PAPER_ARRIVAL_RATE,
            );
        }
        let reports = monitor.reports();
        assert!(reports[0].check("drift").is_none());
        assert!(reports[0].check("margin").is_some());
        assert!(reports[1].check("margin").is_none());
    }

    #[test]
    fn incomplete_stream_is_a_stream_violation_not_a_panic() {
        let monitor = InvariantMonitor::new(noop_collector(), MonitorConfig::default());
        monitor.record(TelemetryEvent {
            at: 0.0,
            name: Cow::Borrowed("payment.m0"),
            cat: Subsystem::Coordinator,
            kind: EventKind::Gauge { value: 1.0 },
            fields: Vec::new(),
        });
        monitor.record(TelemetryEvent {
            at: 0.0,
            name: Cow::Borrowed("round.payment.total"),
            cat: Subsystem::Coordinator,
            kind: EventKind::Gauge { value: 1.0 },
            fields: Vec::new(),
        });
        let report = monitor.latest_report().unwrap();
        assert!(!report.ok());
        assert!(report.violations[0].starts_with("stream:"));
    }
}
