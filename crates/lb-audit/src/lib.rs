//! Verification observability: is the deployed mechanism still the
//! mechanism the theorems are about?
//!
//! The workspace proves its economic properties offline — property tests,
//! fuzz oracles, differential references. This crate moves that posture
//! *online*: a production session should be able to show, continuously and
//! cheaply, that every settled round still satisfies the invariants the
//! paper guarantees, and that the durable record of those rounds has not
//! been rewritten after the fact.
//!
//! * [`monitor`] — [`InvariantMonitor`], a streaming
//!   [`Collector`](lb_telemetry::Collector) wrapper that observes the
//!   coordinator's settlement gauges and checks, per round: allocation
//!   conservation and feasibility, exclusion zeroing, the Theorem 3.2
//!   utility floor, sampled double-double payment drift and a sampled
//!   online truthfulness margin (Theorem 3.1, via counterfactual bid
//!   probes). Detached, it changes nothing — observation inertness is a
//!   tested property, not a hope.
//! * [`reference`] — the independent O(n) double-double payment reference
//!   the drift check compares against.
//! * [`ledger`] — [`verify_ledger`]: replays the hash chain the
//!   coordinator threads through its durable journal
//!   ([`lb_proto::LedgerChain`]) and checks every `LedgerSealed` digest,
//!   localising the first tampered frame. The per-record CRC catches
//!   accidents; the chain catches *edits* that fix the CRC.
//! * [`report`] — the per-round [`MonitorReport`] JSONL record.
//! * [`health`] — renders `/invariants` and `/health` documents for the
//!   std-only exposition server, including the ledger chain head (whose
//!   out-of-band publication is what makes the chain tamper-*evident*).

pub mod health;
pub mod ledger;
pub mod monitor;
pub mod reference;
pub mod report;

pub use health::{health_json, invariants_json, publish};
pub use ledger::{verify_ledger, LedgerDivergence, LedgerVerdict};
pub use monitor::{InvariantMonitor, MonitorConfig, MonitorStats, ViolationPolicy};
pub use reference::{reference_payments, reference_total_latency};
pub use report::{CheckOutcome, MonitorReport};
