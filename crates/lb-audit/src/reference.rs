//! Double-double reference payments for the drift monitor.
//!
//! The deployed settle path computes payments through
//! `lb_mechanism::CompensationBonusMechanism`, whose bonus terms come from
//! the `lb_core::LeaveOneOut` batch kernel. This module re-derives the same
//! payments *independently*, carrying every intermediate in [`TwoF64`]
//! double-double arithmetic:
//!
//! ```text
//! P_i = C_i + L_{-i} − L(x, t̃)
//! C_i = compensation(x_i, t̃_i)          (per the valuation model)
//! L_{-i} = R² / Σ_{j≠i} 1/b_j           (linear-model leave-one-out optimum)
//! L(x, t̃) = Σ_j t̃_j · x_j²             (realised total latency)
//! ```
//!
//! The leave-one-out sums use prefix/suffix accumulation so the whole
//! reference is O(n) — cheap enough to run on sampled production rounds,
//! not only in offline tests. Agreement between the two implementations is
//! the drift check: a persistent gap means the fast path has been corrupted
//! (a bad build, a tampered binary, silent numerical regression).

use lb_core::TwoF64;
use lb_mechanism::traits::ValuationModel;

/// Realised total latency `Σ t̃_j · x_j²` in double-double arithmetic.
///
/// # Panics
/// Panics if the slices differ in length (a caller bug).
#[must_use]
pub fn reference_total_latency(rates: &[f64], exec_values: &[f64]) -> f64 {
    assert_eq!(
        rates.len(),
        exec_values.len(),
        "reference_total_latency: length mismatch"
    );
    let mut acc = TwoF64::ZERO;
    for (&x, &t) in rates.iter().zip(exec_values) {
        acc = acc.add(TwoF64::from_f64(t).mul_f64(x).mul_f64(x));
    }
    acc.value()
}

/// Independent double-double payments for one settled round, in machine
/// order over the *respondent* sub-vector (the same sub-vector the
/// coordinator hands its mechanism).
///
/// Returns `None` when the inputs cannot support the computation: fewer
/// than two machines (the `L_{-i}` term is undefined), mismatched arities,
/// or a non-positive / non-finite bid or rate parameter — the monitor
/// treats that as "reference unavailable", not as a violation (the
/// feasibility checks own those complaints).
#[must_use]
pub fn reference_payments(
    bids: &[f64],
    rates: &[f64],
    exec_values: &[f64],
    total_rate: f64,
    model: ValuationModel,
) -> Option<Vec<f64>> {
    let n = bids.len();
    if n < 2 || rates.len() != n || exec_values.len() != n {
        return None;
    }
    if !(total_rate.is_finite() && total_rate > 0.0) {
        return None;
    }
    if bids.iter().any(|&b| !(b.is_finite() && b > 0.0)) {
        return None;
    }
    if exec_values.iter().any(|&t| !(t.is_finite() && t > 0.0)) {
        return None;
    }

    // Prefix/suffix double-double sums of 1/b_j, so each S_{-i} is an exact
    // recombination rather than the cancellation-prone `S − 1/b_i`.
    let mut prefix = vec![TwoF64::ZERO; n + 1];
    for i in 0..n {
        prefix[i + 1] = prefix[i].add(TwoF64::recip(bids[i]));
    }
    let mut suffix = vec![TwoF64::ZERO; n + 1];
    for i in (0..n).rev() {
        suffix[i] = suffix[i + 1].add(TwoF64::recip(bids[i]));
    }

    let mut latency = TwoF64::ZERO;
    for (&x, &t) in rates.iter().zip(exec_values) {
        latency = latency.add(TwoF64::from_f64(t).mul_f64(x).mul_f64(x));
    }
    let r_squared = TwoF64::from_f64(total_rate).mul_f64(total_rate);

    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let s_excluding = prefix[i].add(suffix[i + 1]);
        if s_excluding.value() <= 0.0 {
            return None;
        }
        let loo = r_squared.div(s_excluding);
        let compensation = match model {
            ValuationModel::PerJobLatency => TwoF64::from_f64(exec_values[i]).mul_f64(rates[i]),
            ValuationModel::ContributedLatency => TwoF64::from_f64(exec_values[i])
                .mul_f64(rates[i])
                .mul_f64(rates[i]),
        };
        out.push(compensation.add(loo).sub(latency).value());
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_core::scenario::{paper_system, PAPER_ARRIVAL_RATE};
    use lb_mechanism::{run_mechanism, CompensationBonusMechanism, Profile};

    #[test]
    fn reference_matches_the_deployed_payment_path() {
        let mech = CompensationBonusMechanism::paper();
        let profile = Profile::truthful(&paper_system(), PAPER_ARRIVAL_RATE).unwrap();
        let out = run_mechanism(&mech, &profile).unwrap();
        let rates: Vec<f64> = (0..profile.len()).map(|i| out.allocation.rate(i)).collect();
        let reference = reference_payments(
            profile.bids(),
            &rates,
            profile.exec_values(),
            PAPER_ARRIVAL_RATE,
            ValuationModel::PerJobLatency,
        )
        .unwrap();
        for (i, (&fast, &slow)) in out.payments.iter().zip(&reference).enumerate() {
            let scale = 1.0 + fast.abs();
            assert!(
                (fast - slow).abs() / scale < 1e-9,
                "machine {i}: fast {fast} vs dd {slow}"
            );
        }
    }

    #[test]
    fn contributed_model_reference_matches_too() {
        let mech = CompensationBonusMechanism::contributed();
        let profile = Profile::truthful(&paper_system(), PAPER_ARRIVAL_RATE).unwrap();
        let out = run_mechanism(&mech, &profile).unwrap();
        let rates: Vec<f64> = (0..profile.len()).map(|i| out.allocation.rate(i)).collect();
        let reference = reference_payments(
            profile.bids(),
            &rates,
            profile.exec_values(),
            PAPER_ARRIVAL_RATE,
            ValuationModel::ContributedLatency,
        )
        .unwrap();
        for (i, (&fast, &slow)) in out.payments.iter().zip(&reference).enumerate() {
            let scale = 1.0 + fast.abs();
            assert!(
                (fast - slow).abs() / scale < 1e-9,
                "machine {i}: fast {fast} vs dd {slow}"
            );
        }
    }

    #[test]
    fn degenerate_inputs_yield_no_reference() {
        let m = ValuationModel::PerJobLatency;
        assert!(reference_payments(&[1.0], &[5.0], &[1.0], 5.0, m).is_none());
        assert!(reference_payments(&[1.0, 0.0], &[2.0, 3.0], &[1.0, 1.0], 5.0, m).is_none());
        assert!(reference_payments(&[1.0, 2.0], &[2.0, 3.0], &[1.0, 1.0], f64::NAN, m).is_none());
        assert!(reference_payments(&[1.0, 2.0], &[2.0], &[1.0, 1.0], 5.0, m).is_none());
    }

    #[test]
    fn total_latency_matches_direct_sum() {
        let rates = [1.0, 2.0, 3.5];
        let execs = [0.5, 1.25, 2.0];
        let direct: f64 = rates.iter().zip(&execs).map(|(&x, &t)| t * x * x).sum();
        let dd = reference_total_latency(&rates, &execs);
        assert!((direct - dd).abs() < 1e-12, "{direct} vs {dd}");
    }
}
