//! Offline verification of the tamper-evident round ledger.
//!
//! The coordinator threads a [`LedgerChain`] over every framed byte it
//! appends to the durable journal and, immediately before each
//! `RoundSealed`, writes a `LedgerSealed { digest }` record carrying the
//! chain head over everything that precedes it. [`verify_ledger`] replays
//! that construction from the raw journal bytes alone:
//!
//! * walk the CRC-valid frames exactly as crash recovery does
//!   ([`JournalReplay::boundaries`]);
//! * absorb each frame into a fresh chain, and at every `LedgerSealed`
//!   record compare the journalled digest against the running head
//!   **before** absorbing the seal frame itself;
//! * report the first divergence with its record index and byte offset,
//!   which localises tampering to one frame interval.
//!
//! The per-record CRC already catches accidental corruption; the chain
//! exists for *deliberate* edits that recompute the CRC — flip a payment
//! byte and fix the frame checksum, and every subsequent seal digest
//! diverges. The digest is a non-cryptographic 64-bit mix, so the trust
//! model is tamper-*evidence* against an adversary who cannot also rewrite
//! every later seal plus the out-of-band copy of the head published on
//! `/health` — not cryptographic authentication.
//!
//! Frames whose payload no longer decodes (possible only under deliberate
//! corruption, since `read_journal` would refuse them) are absorbed as
//! opaque bytes and counted, so verification never aborts early.

use lb_proto::journal::{JournalRecord, LedgerChain};
use lb_proto::{decode, JournalReplay};

/// The first point where the journalled seal digests stop matching the
/// recomputed chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerDivergence {
    /// Index of the diverging `LedgerSealed` record in the frame walk.
    pub record_index: usize,
    /// Byte offset of that record's frame in the journal.
    pub offset: usize,
    /// Ordinal of the seal among all seals (0-based).
    pub seal_index: usize,
    /// The head the verifier recomputed from the preceding bytes.
    pub expected: u64,
    /// The digest the journal claims.
    pub found: u64,
}

/// The outcome of verifying one journal byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerVerdict {
    /// CRC-valid frames walked (sealed or not).
    pub records: usize,
    /// `LedgerSealed` records encountered and checked.
    pub seals: usize,
    /// Frames whose payload failed to decode and were absorbed opaquely.
    pub undecodable: usize,
    /// The recomputed chain head over the full valid prefix — compare
    /// against an out-of-band copy (e.g. the `/health` document).
    pub head: u64,
    /// Bytes past the last CRC-valid frame (a torn tail from a crash, or
    /// CRC-breaking corruption).
    pub truncated_tail: usize,
    /// The first seal whose digest did not match, if any.
    pub divergence: Option<LedgerDivergence>,
}

impl LedgerVerdict {
    /// Whether every seal digest matched the recomputed chain.
    #[must_use]
    pub fn is_intact(&self) -> bool {
        self.divergence.is_none()
    }
}

/// Recomputes the ledger chain over `bytes` and checks every journalled
/// seal digest against it.
#[must_use]
pub fn verify_ledger(bytes: &[u8]) -> LedgerVerdict {
    let boundaries = JournalReplay::boundaries(bytes);
    let mut chain = LedgerChain::new();
    let mut verdict = LedgerVerdict {
        records: boundaries.len() - 1,
        seals: 0,
        undecodable: 0,
        head: LedgerChain::SEED,
        truncated_tail: bytes.len() - boundaries.last().copied().unwrap_or(0),
        divergence: None,
    };
    for (index, window) in boundaries.windows(2).enumerate() {
        let (start, end) = (window[0], window[1]);
        let frame = &bytes[start..end];
        // Frame layout: len:u32 crc:u32 payload.
        match decode::<JournalRecord>(&frame[8..]) {
            Ok(JournalRecord::LedgerSealed { digest }) => {
                verdict.seals += 1;
                if digest != chain.head() && verdict.divergence.is_none() {
                    verdict.divergence = Some(LedgerDivergence {
                        record_index: index,
                        offset: start,
                        seal_index: verdict.seals - 1,
                        expected: chain.head(),
                        found: digest,
                    });
                }
            }
            Ok(_) => {}
            Err(_) => verdict.undecodable += 1,
        }
        chain.absorb_frame(frame);
    }
    verdict.head = chain.head();
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_proto::journal::{crc32, encode_record, ExclusionReason};
    use lb_proto::RoundId;

    /// A miniature sealed journal: open, exclude, commit payments, seal.
    fn sealed_journal() -> Vec<u8> {
        let mut bytes = Vec::new();
        let mut chain = LedgerChain::new();
        let records = [
            JournalRecord::RoundOpened {
                round: RoundId(0),
                n: 3,
                total_rate: 10.0,
            },
            JournalRecord::ExclusionDecided {
                machine: 2,
                reason: ExclusionReason::Quarantine,
            },
            JournalRecord::BidAccepted {
                machine: 0,
                value: 1.5,
            },
            JournalRecord::PaymentsCommitted {
                payments: vec![3.25, 1.5, 0.0],
            },
        ];
        for record in &records {
            let frame = encode_record(record).unwrap();
            chain.absorb_frame(&frame);
            bytes.extend_from_slice(&frame);
        }
        let seal = encode_record(&JournalRecord::LedgerSealed {
            digest: chain.head(),
        })
        .unwrap();
        chain.absorb_frame(&seal);
        bytes.extend_from_slice(&seal);
        let sealed = encode_record(&JournalRecord::RoundSealed).unwrap();
        bytes.extend_from_slice(&sealed);
        bytes
    }

    #[test]
    fn clean_journal_verifies_intact() {
        let bytes = sealed_journal();
        let verdict = verify_ledger(&bytes);
        assert!(verdict.is_intact(), "{verdict:?}");
        assert_eq!(verdict.seals, 1);
        assert_eq!(verdict.records, 6);
        assert_eq!(verdict.undecodable, 0);
        assert_eq!(verdict.truncated_tail, 0);
        assert_eq!(verdict.head, LedgerChain::replay(&bytes).head());
    }

    #[test]
    fn torn_tail_is_reported_but_not_a_divergence() {
        let mut bytes = sealed_journal();
        bytes.extend_from_slice(&[0xAB; 5]);
        let verdict = verify_ledger(&bytes);
        assert!(verdict.is_intact());
        assert_eq!(verdict.truncated_tail, 5);
    }

    #[test]
    fn crc_fixed_payload_edit_diverges_at_the_seal() {
        let mut bytes = sealed_journal();
        let boundaries = JournalReplay::boundaries(&bytes);
        // Tamper with the payments record (index 3), then recompute its CRC
        // so the frame still parses — the adversarial edit the chain is for.
        let (start, end) = (boundaries[3], boundaries[4]);
        bytes[end - 1] ^= 0x01;
        let crc = crc32(&bytes[start + 8..end]).to_le_bytes();
        bytes[start + 4..start + 8].copy_from_slice(&crc);

        let verdict = verify_ledger(&bytes);
        let div = verdict.divergence.expect("tamper must be flagged");
        assert_eq!(div.record_index, 4, "caught at the seal record");
        assert_eq!(div.seal_index, 0);
        assert_eq!(div.offset, boundaries[4]);
        assert_ne!(div.expected, div.found);
    }

    #[test]
    fn dropped_record_diverges() {
        let bytes = sealed_journal();
        let boundaries = JournalReplay::boundaries(&bytes);
        let mut shorter = bytes[..boundaries[1]].to_vec();
        shorter.extend_from_slice(&bytes[boundaries[2]..]);
        let verdict = verify_ledger(&shorter);
        assert!(!verdict.is_intact());
    }

    #[test]
    fn second_generation_seal_checks_against_the_full_prefix() {
        // Simulate a crash-recovery generation: more frames and a second
        // seal after the first sealed round. Each seal must match the head
        // over *everything* before it.
        let mut bytes = sealed_journal();
        let mut chain = LedgerChain::replay(&bytes);
        let more = encode_record(&JournalRecord::RoundOpened {
            round: RoundId(1),
            n: 3,
            total_rate: 10.0,
        })
        .unwrap();
        chain.absorb_frame(&more);
        bytes.extend_from_slice(&more);
        let seal = encode_record(&JournalRecord::LedgerSealed {
            digest: chain.head(),
        })
        .unwrap();
        chain.absorb_frame(&seal);
        bytes.extend_from_slice(&seal);

        let verdict = verify_ledger(&bytes);
        assert!(verdict.is_intact(), "{verdict:?}");
        assert_eq!(verdict.seals, 2);

        // Tampering with generation-0 bytes now breaks *both* seals; the
        // divergence localises to the first.
        let boundaries = JournalReplay::boundaries(&bytes);
        let (start, end) = (boundaries[0], boundaries[1]);
        bytes[end - 1] ^= 0x80;
        let crc = crc32(&bytes[start + 8..end]).to_le_bytes();
        bytes[start + 4..start + 8].copy_from_slice(&crc);
        let tampered = verify_ledger(&bytes);
        assert_eq!(tampered.divergence.map(|d| d.seal_index), Some(0));
    }
}
