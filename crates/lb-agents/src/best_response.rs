//! Numerical best-response search.
//!
//! Given the other agents' bids and execution values, find the `(bid, exec)`
//! pair maximising one agent's utility under a mechanism. The search is a
//! coarse multiplicative grid followed by golden-section refinement of the
//! bid (utility is unimodal in the own bid for the mechanisms in this
//! workspace; the refinement tolerates mild non-unimodality by starting from
//! the best grid cell).

use lb_mechanism::{run_mechanism, MechanismError, Profile, VerifiedMechanism};

/// Search configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchOptions {
    /// Smallest bid multiplier explored.
    pub bid_lo: f64,
    /// Largest bid multiplier explored.
    pub bid_hi: f64,
    /// Number of coarse grid points per axis.
    pub grid: usize,
    /// Largest execution multiplier explored (lower bound is always 1).
    pub exec_hi: f64,
    /// Golden-section refinement iterations.
    pub refine_iters: u32,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            bid_lo: 0.05,
            bid_hi: 20.0,
            grid: 24,
            exec_hi: 5.0,
            refine_iters: 60,
        }
    }
}

/// Result of a best-response search for one agent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestResponse {
    /// Optimal bid found.
    pub bid: f64,
    /// Optimal execution value found.
    pub exec_value: f64,
    /// Utility at the optimum.
    pub utility: f64,
    /// Utility of truthful full-capacity play in the same environment.
    pub truthful_utility: f64,
}

impl BestResponse {
    /// Gain of the best response over truthful play (`<= tol` certifies
    /// truthfulness numerically).
    #[must_use]
    pub fn gain(&self) -> f64 {
        self.utility - self.truthful_utility
    }

    /// Whether the best response *is* (numerically) the truthful strategy.
    #[must_use]
    pub fn truth_is_best(&self, tol: f64) -> bool {
        self.gain() <= tol
    }
}

/// Evaluates agent `agent`'s utility when it plays `(bid, exec)` against the
/// fixed environment in `base` (which supplies everyone else's behaviour).
fn utility_of<M: VerifiedMechanism + ?Sized>(
    mechanism: &M,
    base: &Profile,
    agent: usize,
    bid: f64,
    exec: f64,
) -> Result<f64, MechanismError> {
    let profile = base.replace_agent(agent, bid, exec)?;
    Ok(run_mechanism(mechanism, &profile)?.utilities[agent])
}

/// Finds agent `agent`'s best response in the environment described by
/// `base` (the other agents' entries of `base` are held fixed; the agent's
/// own entry is ignored).
///
/// # Errors
/// Propagates mechanism errors.
///
/// # Panics
/// Panics if `agent` is out of range or options are degenerate.
pub fn best_response<M: VerifiedMechanism + ?Sized>(
    mechanism: &M,
    base: &Profile,
    agent: usize,
    options: &SearchOptions,
) -> Result<BestResponse, MechanismError> {
    assert!(agent < base.len(), "best_response: agent out of range");
    assert!(options.grid >= 2 && options.bid_lo > 0.0 && options.bid_hi > options.bid_lo);
    let t = base.true_values()[agent];

    let truthful_utility = utility_of(mechanism, base, agent, t, t)?;

    // Coarse log-spaced grid over (bid multiplier, exec multiplier).
    let mut best = (t, t, truthful_utility);
    let ln_lo = options.bid_lo.ln();
    let ln_hi = options.bid_hi.ln();
    for bi in 0..options.grid {
        let frac = bi as f64 / (options.grid - 1) as f64;
        let bid = t * (ln_lo + frac * (ln_hi - ln_lo)).exp();
        for ei in 0..options.grid {
            let efrac = ei as f64 / (options.grid - 1) as f64;
            let exec = t * (1.0 + efrac * (options.exec_hi - 1.0));
            let u = utility_of(mechanism, base, agent, bid, exec)?;
            if u > best.2 {
                best = (bid, exec, u);
            }
        }
    }

    // Golden-section refinement of the bid at the best exec value.
    let exec = best.1;
    let phi = (5.0_f64.sqrt() - 1.0) / 2.0;
    let mut lo = best.0 / 2.0;
    let mut hi = best.0 * 2.0;
    let mut x1 = hi - phi * (hi - lo);
    let mut x2 = lo + phi * (hi - lo);
    let mut f1 = utility_of(mechanism, base, agent, x1, exec)?;
    let mut f2 = utility_of(mechanism, base, agent, x2, exec)?;
    for _ in 0..options.refine_iters {
        if f1 < f2 {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + phi * (hi - lo);
            f2 = utility_of(mechanism, base, agent, x2, exec)?;
        } else {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - phi * (hi - lo);
            f1 = utility_of(mechanism, base, agent, x1, exec)?;
        }
    }
    let refined_bid = 0.5 * (lo + hi);
    let refined_u = utility_of(mechanism, base, agent, refined_bid, exec)?;
    if refined_u > best.2 {
        best = (refined_bid, exec, refined_u);
    }

    Ok(BestResponse {
        bid: best.0,
        exec_value: best.1,
        utility: best.2,
        truthful_utility,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_core::scenario::{paper_system, PAPER_ARRIVAL_RATE};
    use lb_mechanism::CompensationBonusMechanism;

    #[test]
    fn truth_is_best_response_under_cb_mechanism() {
        let sys = paper_system();
        let base = Profile::truthful(&sys, PAPER_ARRIVAL_RATE).unwrap();
        let mech = CompensationBonusMechanism::paper();
        for agent in [0usize, 4, 12] {
            let br = best_response(&mech, &base, agent, &SearchOptions::default()).unwrap();
            assert!(br.truth_is_best(1e-6), "agent {agent}: gain {}", br.gain());
            let t = base.true_values()[agent];
            assert!(
                (br.bid - t).abs() / t < 0.05,
                "agent {agent}: best bid {} vs t {t}",
                br.bid
            );
            assert!(
                (br.exec_value - t).abs() / t < 1e-9,
                "agent {agent}: exec {}",
                br.exec_value
            );
        }
    }

    #[test]
    fn truth_is_best_even_against_liars() {
        // Others over-bid consistently; truth should still be agent 0's best.
        let sys = paper_system();
        let trues = sys.true_values();
        let mut bids = trues.clone();
        let mut exec = trues.clone();
        for j in 1..bids.len() {
            bids[j] = trues[j] * 2.0;
            exec[j] = bids[j];
        }
        let base = Profile::new(trues, bids, exec, PAPER_ARRIVAL_RATE).unwrap();
        let mech = CompensationBonusMechanism::paper();
        let br = best_response(&mech, &base, 0, &SearchOptions::default()).unwrap();
        assert!(br.truth_is_best(1e-6), "gain {}", br.gain());
    }

    #[test]
    fn search_finds_profitable_deviation_when_one_exists() {
        // Sanity check that the search is not vacuous: under a broken
        // "mechanism" that pays proportionally to the declared value, lying
        // high must be found profitable.
        struct PayTheBid;
        impl VerifiedMechanism for PayTheBid {
            fn name(&self) -> &'static str {
                "pay-the-bid (broken)"
            }
            fn allocate(
                &self,
                bids: &[f64],
                total_rate: f64,
            ) -> Result<lb_core::Allocation, MechanismError> {
                Ok(lb_core::pr_allocate(bids, total_rate)?)
            }
            fn payments(
                &self,
                bids: &[f64],
                allocation: &lb_core::Allocation,
                _exec: &[f64],
                _total_rate: f64,
            ) -> Result<Vec<f64>, MechanismError> {
                // Pays each agent its bid times its load — trivially gameable.
                Ok(bids
                    .iter()
                    .zip(allocation.rates())
                    .map(|(&b, &x)| 10.0 * b * x)
                    .collect())
            }
        }
        let sys = paper_system();
        let base = Profile::truthful(&sys, PAPER_ARRIVAL_RATE).unwrap();
        let br = best_response(&PayTheBid, &base, 0, &SearchOptions::default()).unwrap();
        assert!(
            br.gain() > 1.0,
            "search failed to find the obvious deviation"
        );
        assert!(br.bid > base.true_values()[0], "deviation should over-bid");
    }

    #[test]
    #[should_panic(expected = "agent out of range")]
    fn out_of_range_agent_panics() {
        let sys = paper_system();
        let base = Profile::truthful(&sys, PAPER_ARRIVAL_RATE).unwrap();
        let _ = best_response(
            &CompensationBonusMechanism::paper(),
            &base,
            99,
            &SearchOptions::default(),
        );
    }
}
