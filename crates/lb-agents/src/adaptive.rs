//! Adaptive agents: learning to be truthful from payoff feedback alone.
//!
//! The paper's incentive argument assumes rational agents that *compute*
//! their dominant strategy. A more demanding (and realistic) test: agents
//! that know nothing about the mechanism and just run ε-greedy bandits over
//! a menu of (bid factor, execution factor) arms, observing only their own
//! realised utility each round. Under a truthful mechanism the truthful arm
//! has the highest mean payoff *whatever the others do*, so every learner's
//! arm-choice frequency should concentrate on it — demonstrated by the
//! tests and the `repeated_play` simulation.

use crate::game::StrategyOption;
use lb_mechanism::{run_mechanism, MechanismError, Profile, VerifiedMechanism};
use lb_stats::online::OnlineStats;
use lb_stats::rng::{Rng, Xoshiro256StarStar};

/// An ε-greedy bandit over a strategy menu.
#[derive(Debug, Clone)]
pub struct EpsilonGreedyAgent {
    /// Strategy arms.
    pub menu: Vec<StrategyOption>,
    epsilon: f64,
    arm_stats: Vec<OnlineStats>,
    pulls: Vec<u64>,
    rng: Xoshiro256StarStar,
}

impl EpsilonGreedyAgent {
    /// Creates a learner with exploration rate `epsilon` in `[0, 1]`.
    ///
    /// # Panics
    /// Panics if the menu is empty or `epsilon` is out of range.
    #[must_use]
    pub fn new(menu: Vec<StrategyOption>, epsilon: f64, rng: Xoshiro256StarStar) -> Self {
        assert!(!menu.is_empty(), "EpsilonGreedyAgent: empty menu");
        assert!(
            (0.0..=1.0).contains(&epsilon),
            "EpsilonGreedyAgent: epsilon out of range"
        );
        let k = menu.len();
        Self {
            menu,
            epsilon,
            arm_stats: vec![OnlineStats::new(); k],
            pulls: vec![0; k],
            rng,
        }
    }

    /// Picks the next arm (explore with probability ε, else exploit; unplayed
    /// arms are tried first).
    pub fn choose(&mut self) -> usize {
        if let Some(unplayed) = self.pulls.iter().position(|&p| p == 0) {
            return unplayed;
        }
        if self.rng.next_bool(self.epsilon) {
            self.rng.next_below(self.menu.len() as u64) as usize
        } else {
            self.best_arm()
        }
    }

    /// Feeds the observed utility for arm `arm`.
    ///
    /// # Panics
    /// Panics if `arm` is out of range.
    pub fn observe(&mut self, arm: usize, utility: f64) {
        self.arm_stats[arm].push(utility);
        self.pulls[arm] += 1;
    }

    /// The arm with the best empirical mean (ties to the lower index).
    #[must_use]
    pub fn best_arm(&self) -> usize {
        let mut best = 0;
        for i in 1..self.menu.len() {
            if self.arm_stats[i].mean() > self.arm_stats[best].mean() {
                best = i;
            }
        }
        best
    }

    /// Number of times each arm was played.
    #[must_use]
    pub fn pulls(&self) -> &[u64] {
        &self.pulls
    }

    /// Empirical mean utility of an arm.
    ///
    /// # Panics
    /// Panics if `arm` is out of range.
    #[must_use]
    pub fn mean_utility(&self, arm: usize) -> f64 {
        self.arm_stats[arm].mean()
    }
}

/// Outcome of a repeated-play simulation.
#[derive(Debug, Clone)]
pub struct RepeatedPlayReport {
    /// Final best arm per agent.
    pub best_arms: Vec<usize>,
    /// Pull counts per agent per arm.
    pub pulls: Vec<Vec<u64>>,
    /// Mean realised total latency over the last quarter of the rounds.
    pub late_mean_latency: f64,
    /// Agent 0's cumulative regret trace: after each round, the gap between
    /// the truthful-arm counterfactual (against the *same* opponent play)
    /// and the utility actually earned, summed over rounds. For a truthful
    /// mechanism the per-round regret is non-negative and vanishes as the
    /// learner locks onto the truthful arm, so this trace is sublinear.
    pub cumulative_regret: Vec<f64>,
}

impl RepeatedPlayReport {
    /// Average per-round regret of agent 0 over the final quarter of play.
    ///
    /// # Panics
    /// Panics if the report holds fewer than 4 rounds.
    #[must_use]
    pub fn late_average_regret(&self) -> f64 {
        let n = self.cumulative_regret.len();
        assert!(n >= 4, "late_average_regret: too few rounds");
        let late = n / 4;
        let span = &self.cumulative_regret[n - late - 1..];
        (span[span.len() - 1] - span[0]) / late as f64
    }
}

/// Simulates `rounds` of repeated play: every agent is an independent
/// ε-greedy learner over `menu`; each round they pick arms, the mechanism
/// runs, and they observe only their own utility.
///
/// # Errors
/// Propagates mechanism errors.
///
/// # Panics
/// Panics if `rounds == 0` or the system is empty.
pub fn repeated_play<M: VerifiedMechanism + ?Sized>(
    mechanism: &M,
    true_values: &[f64],
    total_rate: f64,
    menu: &[StrategyOption],
    rounds: u32,
    epsilon: f64,
    seed: u64,
) -> Result<RepeatedPlayReport, MechanismError> {
    assert!(rounds > 0, "repeated_play: need at least one round");
    let n = true_values.len();
    let base = Xoshiro256StarStar::seed_from_u64(seed);
    let mut agents: Vec<EpsilonGreedyAgent> = (0..n)
        .map(|i| EpsilonGreedyAgent::new(menu.to_vec(), epsilon, base.stream(i as u64)))
        .collect();

    let mut late_latency = OnlineStats::new();
    let late_start = rounds - rounds / 4;
    let mut cumulative_regret = Vec::with_capacity(rounds as usize);
    let mut regret_acc = 0.0;
    for round in 0..rounds {
        let arms: Vec<usize> = agents.iter_mut().map(EpsilonGreedyAgent::choose).collect();
        let bids: Vec<f64> = arms
            .iter()
            .zip(true_values)
            .map(|(&a, &t)| t * menu[a].bid_factor)
            .collect();
        let exec: Vec<f64> = arms
            .iter()
            .zip(true_values)
            .map(|(&a, &t)| t * menu[a].exec_factor.max(1.0))
            .collect();
        let profile = Profile::new(true_values.to_vec(), bids, exec, total_rate)?;
        let outcome = run_mechanism(mechanism, &profile)?;

        // Counterfactual for agent 0: the truthful arm against the same
        // opponent play this round.
        let counterfactual = {
            let profile = profile.replace_agent(0, true_values[0], true_values[0])?;
            run_mechanism(mechanism, &profile)?.utilities[0]
        };
        regret_acc += counterfactual - outcome.utilities[0];
        cumulative_regret.push(regret_acc);

        for (i, agent) in agents.iter_mut().enumerate() {
            agent.observe(arms[i], outcome.utilities[i]);
        }
        if round >= late_start {
            late_latency.push(outcome.total_latency);
        }
    }

    Ok(RepeatedPlayReport {
        best_arms: agents.iter().map(EpsilonGreedyAgent::best_arm).collect(),
        pulls: agents.iter().map(|a| a.pulls().to_vec()).collect(),
        late_mean_latency: late_latency.mean(),
        cumulative_regret,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::consistent_strategy_menu;
    use lb_core::optimal_latency_linear;
    use lb_mechanism::CompensationBonusMechanism;

    #[test]
    fn learners_discover_truthfulness() {
        let trues = [1.0, 2.0, 5.0, 10.0];
        let mech = CompensationBonusMechanism::paper();
        let report = repeated_play(
            &mech,
            &trues,
            10.0,
            &consistent_strategy_menu(),
            3_000,
            0.1,
            42,
        )
        .unwrap();
        // Arm 0 is "truthful" in the consistent menu.
        for (i, &arm) in report.best_arms.iter().enumerate() {
            assert_eq!(arm, 0, "agent {i} learned arm {arm}");
        }
        // Exploitation concentrates on the truthful arm.
        for pulls in &report.pulls {
            let total: u64 = pulls.iter().sum();
            assert!(
                pulls[0] as f64 / total as f64 > 0.6,
                "truthful arm underplayed: {pulls:?}"
            );
        }
        // The realised latency approaches the optimum as everyone learns.
        let optimal = optimal_latency_linear(&trues, 10.0).unwrap();
        assert!(
            report.late_mean_latency < 1.25 * optimal,
            "late latency {} vs optimal {optimal}",
            report.late_mean_latency
        );
    }

    #[test]
    fn regret_is_nonnegative_and_flattens() {
        let trues = [1.0, 2.0, 5.0, 10.0];
        let mech = CompensationBonusMechanism::paper();
        let report = repeated_play(
            &mech,
            &trues,
            10.0,
            &consistent_strategy_menu(),
            2_000,
            0.1,
            5,
        )
        .unwrap();
        let regret = &report.cumulative_regret;
        // Per-round regret against the truthful counterfactual is always
        // >= 0 for a truthful mechanism: the cumulative trace is monotone.
        for w in regret.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "regret decreased: {} -> {}",
                w[0],
                w[1]
            );
        }
        // Sublinearity in practice: late per-round regret far below early.
        let early = regret[regret.len() / 10] / (regret.len() / 10) as f64;
        let late = report.late_average_regret();
        assert!(late < 0.5 * early, "late {late} vs early {early}");
    }

    #[test]
    fn bandit_mechanics() {
        let menu = consistent_strategy_menu();
        let mut agent =
            EpsilonGreedyAgent::new(menu.clone(), 0.0, Xoshiro256StarStar::seed_from_u64(1));
        // Unplayed arms first, in order.
        for expected in 0..menu.len() {
            let arm = agent.choose();
            assert_eq!(arm, expected);
            agent.observe(arm, if expected == 2 { 10.0 } else { 1.0 });
        }
        // With epsilon 0 it now exploits the best arm (2).
        assert_eq!(agent.choose(), 2);
        assert_eq!(agent.best_arm(), 2);
        assert_eq!(agent.pulls(), &[1, 1, 1, 1]);
        assert!((agent.mean_utility(2) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn exploration_rate_is_respected() {
        let menu = consistent_strategy_menu();
        let mut agent =
            EpsilonGreedyAgent::new(menu.clone(), 1.0, Xoshiro256StarStar::seed_from_u64(2));
        for i in 0..menu.len() {
            let a = agent.choose();
            agent.observe(a, i as f64);
        }
        // epsilon = 1: pure exploration, all arms keep being played.
        let mut seen = vec![false; menu.len()];
        for _ in 0..200 {
            let a = agent.choose();
            agent.observe(a, 0.0);
            seen[a] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty menu")]
    fn empty_menu_panics() {
        let _ = EpsilonGreedyAgent::new(vec![], 0.1, Xoshiro256StarStar::seed_from_u64(0));
    }
}
