//! Empirical normal-form game analysis.
//!
//! Discretise each agent's strategy space into a handful of named options
//! (truthful, over-bid, under-bid, lazy…), evaluate the mechanism on every
//! joint profile, and analyse the resulting finite game: per-agent dominant
//! strategies and pure Nash equilibria. For the paper's mechanism the
//! truthful option should be dominant for every agent and the all-truthful
//! profile a Nash equilibrium.

use lb_core::System;
use lb_mechanism::{run_mechanism, MechanismError, Profile, VerifiedMechanism};

/// A named pure strategy: multiplicative bid and execution factors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategyOption {
    /// Display name.
    pub name: &'static str,
    /// Bid = `bid_factor × t`.
    pub bid_factor: f64,
    /// Execution = `max(exec_factor, 1) × t`.
    pub exec_factor: f64,
}

/// The canonical strategy menu mirroring the paper's Table 2 families.
#[must_use]
pub fn paper_strategy_menu() -> Vec<StrategyOption> {
    vec![
        StrategyOption {
            name: "truthful",
            bid_factor: 1.0,
            exec_factor: 1.0,
        },
        StrategyOption {
            name: "high-consistent",
            bid_factor: 3.0,
            exec_factor: 3.0,
        },
        StrategyOption {
            name: "high-fast",
            bid_factor: 3.0,
            exec_factor: 1.0,
        },
        StrategyOption {
            name: "low",
            bid_factor: 0.5,
            exec_factor: 1.0,
        },
        StrategyOption {
            name: "lazy",
            bid_factor: 1.0,
            exec_factor: 2.0,
        },
    ]
}

/// A menu of *consistent* strategies (execution equals bid, at or above
/// capacity) — the opponent class against which the paper's Theorem 3.1
/// proof is exact, and within which truth-telling is weakly dominant.
#[must_use]
pub fn consistent_strategy_menu() -> Vec<StrategyOption> {
    vec![
        StrategyOption {
            name: "truthful",
            bid_factor: 1.0,
            exec_factor: 1.0,
        },
        StrategyOption {
            name: "slow-1.5x",
            bid_factor: 1.5,
            exec_factor: 1.5,
        },
        StrategyOption {
            name: "slow-2x",
            bid_factor: 2.0,
            exec_factor: 2.0,
        },
        StrategyOption {
            name: "slow-3x",
            bid_factor: 3.0,
            exec_factor: 3.0,
        },
    ]
}

/// A fully evaluated finite game.
#[derive(Debug, Clone)]
pub struct EmpiricalGame {
    /// Strategy menu (same for every agent).
    pub menu: Vec<StrategyOption>,
    /// Number of agents.
    pub n: usize,
    /// `payoff[flat_profile][agent]` — utilities per joint profile.
    pub payoffs: Vec<Vec<f64>>,
    /// Strides for flattening joint profiles.
    strides: Vec<usize>,
}

impl EmpiricalGame {
    /// Flat index of a joint profile.
    ///
    /// # Panics
    /// Panics if the profile length or any strategy index is out of range.
    #[must_use]
    pub fn index(&self, profile: &[usize]) -> usize {
        assert_eq!(profile.len(), self.n, "profile arity mismatch");
        profile
            .iter()
            .zip(&self.strides)
            .map(|(&s, &stride)| {
                assert!(s < self.menu.len(), "strategy index out of range");
                s * stride
            })
            .sum()
    }

    /// Utility of `agent` under a joint profile.
    #[must_use]
    pub fn payoff(&self, profile: &[usize], agent: usize) -> f64 {
        self.payoffs[self.index(profile)][agent]
    }

    /// Whether strategy `s` is weakly dominant for `agent` (best against
    /// every opponent profile, within `tol`).
    #[must_use]
    pub fn is_dominant(&self, agent: usize, s: usize, tol: f64) -> bool {
        let k = self.menu.len();
        let mut opponents = vec![0usize; self.n];
        loop {
            // For this opponent configuration, compare s against all
            // alternatives for `agent`.
            let mut profile = opponents.clone();
            profile[agent] = s;
            let base = self.payoff(&profile, agent);
            for alt in 0..k {
                profile[agent] = alt;
                if self.payoff(&profile, agent) > base + tol {
                    return false;
                }
            }
            // Advance opponents odometer (skipping `agent`'s digit).
            let mut pos = 0;
            loop {
                if pos == self.n {
                    return true;
                }
                if pos == agent {
                    pos += 1;
                    continue;
                }
                opponents[pos] += 1;
                if opponents[pos] < k {
                    break;
                }
                opponents[pos] = 0;
                pos += 1;
            }
        }
    }

    /// All pure Nash equilibria (as strategy-index profiles).
    #[must_use]
    pub fn pure_nash(&self, tol: f64) -> Vec<Vec<usize>> {
        let k = self.menu.len();
        let mut out = Vec::new();
        let mut profile = vec![0usize; self.n];
        loop {
            let mut is_nash = true;
            'agents: for agent in 0..self.n {
                let base = self.payoff(&profile, agent);
                let mut alt_profile = profile.clone();
                for alt in 0..k {
                    alt_profile[agent] = alt;
                    if self.payoff(&alt_profile, agent) > base + tol {
                        is_nash = false;
                        break 'agents;
                    }
                }
            }
            if is_nash {
                out.push(profile.clone());
            }
            // Odometer over all joint profiles.
            let mut pos = 0;
            loop {
                if pos == self.n {
                    return out;
                }
                profile[pos] += 1;
                if profile[pos] < k {
                    break;
                }
                profile[pos] = 0;
                pos += 1;
            }
        }
    }
}

/// Evaluates the full payoff table of the finite game induced by `menu` on
/// `system` under `mechanism`.
///
/// Cost is `|menu|^n` mechanism evaluations — intended for small `n`.
///
/// # Errors
/// Propagates mechanism errors.
///
/// # Panics
/// Panics if the menu is empty or the table would exceed 10⁶ entries.
pub fn empirical_game<M: VerifiedMechanism + ?Sized>(
    mechanism: &M,
    system: &System,
    total_rate: f64,
    menu: &[StrategyOption],
) -> Result<EmpiricalGame, MechanismError> {
    assert!(!menu.is_empty(), "empirical_game: empty menu");
    let n = system.len();
    let k = menu.len();
    let size = k
        .checked_pow(u32::try_from(n).expect("n fits u32"))
        .expect("table too large");
    assert!(
        size <= 1_000_000,
        "empirical_game: table too large ({size} entries)"
    );

    let trues = system.true_values();
    let mut strides = vec![0usize; n];
    let mut acc = 1;
    for i in 0..n {
        strides[i] = acc;
        acc *= k;
    }

    let mut payoffs = Vec::with_capacity(size);
    let mut profile = vec![0usize; n];
    for _ in 0..size {
        let bids: Vec<f64> = profile
            .iter()
            .zip(&trues)
            .map(|(&s, &t)| t * menu[s].bid_factor)
            .collect();
        let exec: Vec<f64> = profile
            .iter()
            .zip(&trues)
            .map(|(&s, &t)| t * menu[s].exec_factor.max(1.0))
            .collect();
        let p = Profile::new(trues.clone(), bids, exec, total_rate)?;
        payoffs.push(run_mechanism(mechanism, &p)?.utilities);
        // Odometer.
        for pos in 0..n {
            profile[pos] += 1;
            if profile[pos] < k {
                break;
            }
            profile[pos] = 0;
        }
    }
    Ok(EmpiricalGame {
        menu: menu.to_vec(),
        n,
        payoffs,
        strides,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_mechanism::CompensationBonusMechanism;

    fn game() -> EmpiricalGame {
        let sys = System::from_true_values(&[1.0, 2.0, 5.0]).unwrap();
        empirical_game(
            &CompensationBonusMechanism::paper(),
            &sys,
            10.0,
            &paper_strategy_menu(),
        )
        .unwrap()
    }

    fn consistent_game() -> EmpiricalGame {
        let sys = System::from_true_values(&[1.0, 2.0, 5.0]).unwrap();
        empirical_game(
            &CompensationBonusMechanism::paper(),
            &sys,
            10.0,
            &consistent_strategy_menu(),
        )
        .unwrap()
    }

    #[test]
    fn truthful_is_dominant_within_consistent_menu() {
        // Theorem 3.1's exact scope: against consistent opponents
        // (execution = bid), truth is weakly dominant for every agent.
        let g = consistent_game();
        for agent in 0..3 {
            assert!(
                g.is_dominant(agent, 0, 1e-9),
                "truthful not dominant for agent {agent}"
            );
        }
    }

    #[test]
    fn no_lazy_strategy_is_dominant_in_consistent_menu() {
        let g = consistent_game();
        for s in 1..g.menu.len() {
            assert!(
                !g.is_dominant(0, s, 1e-9),
                "strategy {} should not be dominant",
                g.menu[s].name
            );
        }
    }

    #[test]
    fn dominance_fails_against_inconsistent_opponents() {
        // Scale-invariance of PR: when every opponent plays high-fast
        // (bid 3t, execute t), the best reply is to rescale one's own bid —
        // literal truth-telling is *not* dominant over the full menu. This is
        // the boundary of Theorem 3.1 the crate documents.
        let g = game();
        assert!(
            !g.is_dominant(0, 0, 1e-9),
            "truth unexpectedly dominant over inconsistent menu"
        );
    }

    #[test]
    fn all_truthful_is_a_pure_nash_equilibrium() {
        let g = game();
        let nash = g.pure_nash(1e-9);
        assert!(
            nash.contains(&vec![0, 0, 0]),
            "all-truthful missing from Nash set: {nash:?}"
        );
    }

    #[test]
    fn payoff_indexing_is_consistent() {
        let g = game();
        // Spot check: payoff() must agree with the raw table through index().
        let profile = vec![1usize, 0, 2];
        let idx = g.index(&profile);
        assert_eq!(g.payoff(&profile, 1), g.payoffs[idx][1]);
    }

    #[test]
    #[should_panic(expected = "strategy index out of range")]
    fn bad_strategy_index_panics() {
        let g = game();
        let _ = g.index(&[9, 0, 0]);
    }
}
