//! Coalition (collusion) analysis.
//!
//! Theorem 3.1 is about *unilateral* deviations. Compensation-and-bonus
//! payments — like all VCG-flavoured schemes — are **not** group-strategy-
//! proof: one machine's inflated bid raises every other machine's `L_{-j}`
//! benchmark, so a pair can coordinate (one takes a small hit, the partner's
//! bonus rises more) and split the joint gain through a side payment. This
//! module searches for the best pair deviation and quantifies the coalition
//! gain — an honest boundary of the paper's guarantee that single-agent
//! scans cannot see.

use lb_mechanism::{run_mechanism, MechanismError, Profile, VerifiedMechanism};

/// Result of a two-machine coalition search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoalitionReport {
    /// The two colluding machines.
    pub pair: (usize, usize),
    /// Joint utility when both play truthfully.
    pub truthful_joint_utility: f64,
    /// Best joint utility found over the deviation grid.
    pub best_joint_utility: f64,
    /// Bid factors achieving the best joint utility.
    pub best_factors: (f64, f64),
}

impl CoalitionReport {
    /// Joint gain from colluding (`> 0` means the mechanism is manipulable
    /// by this pair with side payments).
    #[must_use]
    pub fn gain(&self) -> f64 {
        self.best_joint_utility - self.truthful_joint_utility
    }
}

/// Searches bid-factor deviations for machines `a` and `b` (executing at
/// full capacity, so only the reporting dimension colludes) and reports the
/// best *joint* utility, with everyone else truthful.
///
/// # Errors
/// Propagates mechanism errors.
///
/// # Panics
/// Panics if `a == b` or either index is out of range.
pub fn coalition_search<M: VerifiedMechanism + ?Sized>(
    mechanism: &M,
    true_values: &[f64],
    total_rate: f64,
    a: usize,
    b: usize,
    factors: &[f64],
) -> Result<CoalitionReport, MechanismError> {
    assert!(a != b, "coalition_search: need two distinct machines");
    assert!(
        a < true_values.len() && b < true_values.len(),
        "coalition_search: index out of range"
    );

    let joint = |fa: f64, fb: f64| -> Result<f64, MechanismError> {
        let mut bids = true_values.to_vec();
        bids[a] *= fa;
        bids[b] *= fb;
        let profile = Profile::new(true_values.to_vec(), bids, true_values.to_vec(), total_rate)?;
        let out = run_mechanism(mechanism, &profile)?;
        Ok(out.utilities[a] + out.utilities[b])
    };

    let truthful_joint_utility = joint(1.0, 1.0)?;
    let mut best = (truthful_joint_utility, (1.0, 1.0));
    for &fa in factors {
        for &fb in factors {
            let u = joint(fa, fb)?;
            if u > best.0 {
                best = (u, (fa, fb));
            }
        }
    }
    Ok(CoalitionReport {
        pair: (a, b),
        truthful_joint_utility,
        best_joint_utility: best.0,
        best_factors: best.1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_core::scenario::{paper_system, PAPER_ARRIVAL_RATE};
    use lb_mechanism::CompensationBonusMechanism;

    fn factors() -> Vec<f64> {
        vec![0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0, 5.0]
    }

    #[test]
    fn pairs_can_profitably_collude() {
        // The documented boundary: compensation-and-bonus is not group
        // strategyproof. A fast pair on the paper system can gain jointly by
        // coordinated over-bidding (each raises the other's L_{-j} benchmark).
        let sys = paper_system();
        let mech = CompensationBonusMechanism::paper();
        let report = coalition_search(
            &mech,
            &sys.true_values(),
            PAPER_ARRIVAL_RATE,
            0,
            1,
            &factors(),
        )
        .unwrap();
        assert!(
            report.gain() > 0.0,
            "expected a profitable coalition, gain {}",
            report.gain()
        );
        // The profitable direction is upward misreporting.
        assert!(report.best_factors.0 > 1.0 || report.best_factors.1 > 1.0);
    }

    #[test]
    fn coalition_gain_is_jointly_real_but_unilaterally_absent() {
        // Precise decomposition of the collusion: each member's *unilateral*
        // deviation (partner truthful) cannot gain — that is Theorem 3.1 —
        // yet the *joint* deviation gains for both members simultaneously,
        // because each member's inflated bid raises the other's L_{-j}
        // benchmark. This strict complementarity is the signature of
        // VCG-style non-group-strategyproofness.
        let sys = paper_system();
        let trues = sys.true_values();
        let mech = CompensationBonusMechanism::paper();
        let report = coalition_search(&mech, &trues, PAPER_ARRIVAL_RATE, 0, 1, &factors()).unwrap();
        let (fa, fb) = report.best_factors;

        let evaluate = |f0: f64, f1: f64| {
            let mut bids = trues.clone();
            bids[0] *= f0;
            bids[1] *= f1;
            let profile =
                Profile::new(trues.clone(), bids, trues.clone(), PAPER_ARRIVAL_RATE).unwrap();
            run_mechanism(&mech, &profile).unwrap().utilities
        };

        let truthful = evaluate(1.0, 1.0);
        // Unilateral deviations do not gain (Theorem 3.1).
        let solo0 = evaluate(fa, 1.0);
        let solo1 = evaluate(1.0, fb);
        assert!(solo0[0] <= truthful[0] + 1e-9, "unilateral gain for 0");
        assert!(solo1[1] <= truthful[1] + 1e-9, "unilateral gain for 1");

        // The joint deviation gains — here even for both members at once,
        // so no side payment is needed to sustain the cartel.
        let joint = evaluate(fa, fb);
        let gain0 = joint[0] - truthful[0];
        let gain1 = joint[1] - truthful[1];
        assert!((gain0 + gain1 - report.gain()).abs() < 1e-9);
        assert!(report.gain() > 0.0);
        // And the collusion damages the system: total latency exceeds L*.
        let mut bids = trues.clone();
        bids[0] *= fa;
        bids[1] *= fb;
        let out = run_mechanism(
            &mech,
            &Profile::new(trues.clone(), bids, trues.clone(), PAPER_ARRIVAL_RATE).unwrap(),
        )
        .unwrap();
        let optimal = lb_core::optimal_latency_linear(&trues, PAPER_ARRIVAL_RATE).unwrap();
        assert!(out.total_latency > optimal + 1e-9);
    }

    #[test]
    fn singleton_grid_returns_truthful_baseline() {
        let sys = paper_system();
        let mech = CompensationBonusMechanism::paper();
        let report =
            coalition_search(&mech, &sys.true_values(), PAPER_ARRIVAL_RATE, 3, 9, &[1.0]).unwrap();
        assert_eq!(report.gain(), 0.0);
        assert_eq!(report.best_factors, (1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "two distinct machines")]
    fn same_machine_panics() {
        let sys = paper_system();
        let mech = CompensationBonusMechanism::paper();
        let _ = coalition_search(&mech, &sys.true_values(), PAPER_ARRIVAL_RATE, 1, 1, &[1.0]);
    }
}
