//! Bidding strategies.

use lb_stats::rng::{Rng, Xoshiro256StarStar};

/// How an agent chooses the bid it reports to the mechanism.
#[derive(Debug, Clone)]
pub enum BiddingStrategy {
    /// Report the true value (the paper's dominant strategy).
    Truthful,
    /// Report `factor × true value` — the paper's High/Low experiment
    /// families are `Scaled(3.0)` and `Scaled(0.5)`.
    Scaled(f64),
    /// Report a fixed value regardless of the truth.
    Fixed(f64),
    /// Report `true value × U(lo, hi)` with a private RNG stream.
    Random {
        /// Lower multiplier bound (> 0).
        lo: f64,
        /// Upper multiplier bound (≥ lo).
        hi: f64,
        /// Private randomness.
        rng: Xoshiro256StarStar,
    },
}

impl BiddingStrategy {
    /// Produces this round's bid for an agent with the given true value.
    ///
    /// # Panics
    /// Panics on invalid strategy parameters (non-positive scales, bad
    /// random bounds).
    pub fn bid(&mut self, true_value: f64) -> f64 {
        match self {
            Self::Truthful => true_value,
            Self::Scaled(factor) => {
                assert!(
                    factor.is_finite() && *factor > 0.0,
                    "Scaled: invalid factor"
                );
                true_value * *factor
            }
            Self::Fixed(value) => {
                assert!(value.is_finite() && *value > 0.0, "Fixed: invalid value");
                *value
            }
            Self::Random { lo, hi, rng } => {
                assert!(*lo > 0.0 && hi >= lo, "Random: invalid bounds");
                true_value * rng.next_range(*lo, *hi)
            }
        }
    }

    /// Whether this strategy always reports the truth.
    #[must_use]
    pub fn is_truthful(&self) -> bool {
        matches!(self, Self::Truthful)
            || matches!(self, Self::Scaled(f) if (*f - 1.0).abs() < 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthful_reports_truth() {
        let mut s = BiddingStrategy::Truthful;
        assert_eq!(s.bid(2.5), 2.5);
        assert!(s.is_truthful());
    }

    #[test]
    fn scaled_multiplies() {
        let mut s = BiddingStrategy::Scaled(3.0);
        assert_eq!(s.bid(2.0), 6.0);
        assert!(!s.is_truthful());
        assert!(BiddingStrategy::Scaled(1.0).is_truthful());
    }

    #[test]
    fn fixed_ignores_truth() {
        let mut s = BiddingStrategy::Fixed(4.0);
        assert_eq!(s.bid(1.0), 4.0);
        assert_eq!(s.bid(100.0), 4.0);
    }

    #[test]
    fn random_is_within_bounds_and_deterministic_per_seed() {
        let mk = || BiddingStrategy::Random {
            lo: 0.5,
            hi: 2.0,
            rng: Xoshiro256StarStar::seed_from_u64(3),
        };
        let mut a = mk();
        let mut b = mk();
        for _ in 0..100 {
            let x = a.bid(2.0);
            assert!((1.0..4.0).contains(&x));
            assert_eq!(x, b.bid(2.0));
        }
    }

    #[test]
    #[should_panic(expected = "invalid factor")]
    fn scaled_rejects_nonpositive() {
        let mut s = BiddingStrategy::Scaled(0.0);
        let _ = s.bid(1.0);
    }
}
