//! Fictitious play over a discrete strategy menu.
//!
//! A second learning dynamic besides the ε-greedy bandit: each agent tracks
//! the *empirical frequencies* of every opponent's past strategies and plays
//! a best response to that belief (expected utility under independent
//! opponent mixing, computed exactly from the [`EmpiricalGame`] payoff
//! table). For a mechanism whose truthful strategy is dominant within the
//! menu, truth is a best response to *every* belief, so fictitious play
//! locks onto it immediately and never leaves — a stronger convergence
//! statement than the bandit's stochastic one, verified by the tests.

use crate::game::EmpiricalGame;

/// State of one fictitious-play run.
#[derive(Debug, Clone)]
pub struct FictitiousPlay<'g> {
    game: &'g EmpiricalGame,
    /// `counts[agent][strategy]`: how often each agent has played each arm.
    counts: Vec<Vec<u64>>,
    /// Strategy each agent chose last round.
    last: Vec<usize>,
    rounds: u64,
}

impl<'g> FictitiousPlay<'g> {
    /// Starts fictitious play from an initial joint strategy profile.
    ///
    /// # Panics
    /// Panics if the profile arity or any index is out of range.
    #[must_use]
    pub fn new(game: &'g EmpiricalGame, initial: &[usize]) -> Self {
        assert_eq!(
            initial.len(),
            game.n,
            "FictitiousPlay: profile arity mismatch"
        );
        let k = game.menu.len();
        let mut counts = vec![vec![0u64; k]; game.n];
        for (agent, &s) in initial.iter().enumerate() {
            assert!(s < k, "FictitiousPlay: strategy index out of range");
            counts[agent][s] = 1;
        }
        Self {
            game,
            counts,
            last: initial.to_vec(),
            rounds: 1,
        }
    }

    /// Empirical mixed strategy of `agent` (its belief held by others).
    ///
    /// # Panics
    /// Panics if `agent` is out of range.
    #[must_use]
    pub fn belief(&self, agent: usize) -> Vec<f64> {
        let total: u64 = self.counts[agent].iter().sum();
        self.counts[agent]
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// Expected utility of `agent` playing `strategy` against the current
    /// beliefs about everyone else (exact expectation over the product of
    /// opponent mixtures).
    #[must_use]
    pub fn expected_utility(&self, agent: usize, strategy: usize) -> f64 {
        let k = self.game.menu.len();
        let n = self.game.n;
        // Enumerate opponent profiles with an odometer, weighting by belief
        // products. Cost k^(n-1) — fictitious play is for small panels.
        let beliefs: Vec<Vec<f64>> = (0..n).map(|a| self.belief(a)).collect();
        let mut profile = vec![0usize; n];
        profile[agent] = strategy;
        let mut expected = 0.0;
        loop {
            let mut weight = 1.0;
            for a in 0..n {
                if a != agent {
                    weight *= beliefs[a][profile[a]];
                }
            }
            if weight > 0.0 {
                expected += weight * self.game.payoff(&profile, agent);
            }
            // Advance the odometer over everyone but `agent`.
            let mut pos = 0;
            loop {
                if pos == n {
                    return expected;
                }
                if pos == agent {
                    pos += 1;
                    continue;
                }
                profile[pos] += 1;
                if profile[pos] < k {
                    break;
                }
                profile[pos] = 0;
                pos += 1;
            }
        }
    }

    /// Plays one simultaneous round: every agent best-responds to current
    /// beliefs (ties to the lowest index), then all beliefs update.
    pub fn step(&mut self) {
        let k = self.game.menu.len();
        let mut next = Vec::with_capacity(self.game.n);
        for agent in 0..self.game.n {
            let mut best = 0;
            let mut best_u = self.expected_utility(agent, 0);
            for s in 1..k {
                let u = self.expected_utility(agent, s);
                if u > best_u + 1e-12 {
                    best = s;
                    best_u = u;
                }
            }
            next.push(best);
        }
        for (agent, &s) in next.iter().enumerate() {
            self.counts[agent][s] += 1;
        }
        self.last = next;
        self.rounds += 1;
    }

    /// Strategies chosen in the latest round.
    #[must_use]
    pub fn current_profile(&self) -> &[usize] {
        &self.last
    }

    /// Rounds played (including the initial profile).
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::{consistent_strategy_menu, empirical_game};
    use lb_core::System;
    use lb_mechanism::CompensationBonusMechanism;

    fn game() -> EmpiricalGame {
        let sys = System::from_true_values(&[1.0, 2.0, 5.0]).unwrap();
        empirical_game(
            &CompensationBonusMechanism::paper(),
            &sys,
            10.0,
            &consistent_strategy_menu(),
        )
        .unwrap()
    }

    #[test]
    fn converges_to_truth_from_any_pure_start() {
        let g = game();
        let k = g.menu.len();
        for start in 0..k {
            let mut fp = FictitiousPlay::new(&g, &[start, start, start]);
            for _ in 0..20 {
                fp.step();
            }
            assert_eq!(fp.current_profile(), &[0, 0, 0], "start {start}");
        }
    }

    #[test]
    fn truth_is_best_response_to_every_sampled_belief() {
        // Dominance within the consistent menu: after arbitrary histories,
        // the truthful arm's expected utility tops every alternative.
        let g = game();
        let mut fp = FictitiousPlay::new(&g, &[3, 1, 2]);
        for _ in 0..5 {
            fp.step();
        }
        for agent in 0..3 {
            let truthful = fp.expected_utility(agent, 0);
            for s in 1..g.menu.len() {
                assert!(
                    fp.expected_utility(agent, s) <= truthful + 1e-9,
                    "agent {agent} prefers {s}"
                );
            }
        }
    }

    #[test]
    fn beliefs_are_probability_vectors() {
        let g = game();
        let mut fp = FictitiousPlay::new(&g, &[1, 2, 3]);
        fp.step();
        fp.step();
        for agent in 0..3 {
            let b = fp.belief(agent);
            assert!((b.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(b.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
        assert_eq!(fp.rounds(), 3);
    }

    #[test]
    #[should_panic(expected = "profile arity mismatch")]
    fn wrong_arity_panics() {
        let g = game();
        let _ = FictitiousPlay::new(&g, &[0, 0]);
    }
}
