//! Iterated best-response dynamics.
//!
//! A strong empirical signature of dominant-strategy truthfulness: start the
//! population anywhere, let agents best-respond in round-robin order, and
//! the profile should land on (truth, full capacity) after a single sweep —
//! under a dominant-strategy mechanism, the best response does not depend on
//! what the others are doing.

use crate::best_response::{best_response, SearchOptions};
use lb_mechanism::{MechanismError, Profile, VerifiedMechanism};

/// Options for the dynamics loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicsOptions {
    /// Maximum round-robin sweeps.
    pub max_sweeps: u32,
    /// Convergence tolerance on relative bid movement within a sweep.
    pub tolerance: f64,
    /// Inner best-response search options.
    pub search: SearchOptions,
}

impl Default for DynamicsOptions {
    fn default() -> Self {
        Self {
            max_sweeps: 10,
            tolerance: 1e-4,
            search: SearchOptions::default(),
        }
    }
}

/// Trace of one dynamics run.
#[derive(Debug, Clone)]
pub struct DynamicsReport {
    /// Bids after each sweep (row per sweep).
    pub bid_history: Vec<Vec<f64>>,
    /// Execution values after each sweep.
    pub exec_history: Vec<Vec<f64>>,
    /// Sweeps performed before convergence (== `bid_history.len()`).
    pub sweeps: u32,
    /// Whether the loop converged within the sweep budget.
    pub converged: bool,
}

impl DynamicsReport {
    /// Final bids.
    ///
    /// # Panics
    /// Panics if the report is empty (cannot happen for a completed run).
    #[must_use]
    pub fn final_bids(&self) -> &[f64] {
        self.bid_history.last().expect("at least one sweep")
    }

    /// Final execution values.
    ///
    /// # Panics
    /// Panics if the report is empty.
    #[must_use]
    pub fn final_exec(&self) -> &[f64] {
        self.exec_history.last().expect("at least one sweep")
    }

    /// Maximum relative distance of the final profile from truth *up to a
    /// common bid scale*.
    ///
    /// The PR allocation depends only on bid ratios, so any profile with
    /// bids proportional to the true values and full-capacity execution is
    /// outcome-identical to the truthful one (same allocation, same total
    /// latency, same utilities). Best-response dynamics therefore converge
    /// to this *equivalence class*, not to the literal truthful point; this
    /// metric measures distance to the class.
    #[must_use]
    pub fn distance_from_truth_up_to_scale(&self, true_values: &[f64]) -> f64 {
        let bids = self.final_bids();
        // Median scale is robust to a single straggler agent.
        let mut scales: Vec<f64> = bids.iter().zip(true_values).map(|(b, t)| b / t).collect();
        scales.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let scale = scales[scales.len() / 2];
        let bid_d = bids
            .iter()
            .zip(true_values)
            .map(|(b, t)| (b - scale * t).abs() / (scale * t))
            .fold(0.0, f64::max);
        let exec_d = self
            .final_exec()
            .iter()
            .zip(true_values)
            .map(|(e, t)| (e - t).abs() / t)
            .fold(0.0, f64::max);
        bid_d.max(exec_d)
    }

    /// Maximum relative distance of the final profile from full truth.
    #[must_use]
    pub fn distance_from_truth(&self, true_values: &[f64]) -> f64 {
        let bid_d = self
            .final_bids()
            .iter()
            .zip(true_values)
            .map(|(b, t)| (b - t).abs() / t)
            .fold(0.0, f64::max);
        let exec_d = self
            .final_exec()
            .iter()
            .zip(true_values)
            .map(|(e, t)| (e - t).abs() / t)
            .fold(0.0, f64::max);
        bid_d.max(exec_d)
    }
}

/// Runs round-robin best-response dynamics from `start` until no agent moves
/// its bid by more than `tolerance` (relative) within a sweep.
///
/// # Errors
/// Propagates mechanism errors from the inner searches.
pub fn run_dynamics<M: VerifiedMechanism + ?Sized>(
    mechanism: &M,
    start: &Profile,
    options: &DynamicsOptions,
) -> Result<DynamicsReport, MechanismError> {
    let n = start.len();
    let mut current = start.clone();
    let mut bid_history = Vec::new();
    let mut exec_history = Vec::new();
    let mut converged = false;
    let mut sweeps = 0;

    for _ in 0..options.max_sweeps {
        sweeps += 1;
        let mut moved = 0.0f64;
        for agent in 0..n {
            let br = best_response(mechanism, &current, agent, &options.search)?;
            let old_bid = current.bids()[agent];
            moved = moved.max((br.bid - old_bid).abs() / old_bid.abs().max(1e-12));
            current = current.replace_agent(agent, br.bid, br.exec_value)?;
        }
        bid_history.push(current.bids().to_vec());
        exec_history.push(current.exec_values().to_vec());
        if moved <= options.tolerance {
            converged = true;
            break;
        }
    }

    Ok(DynamicsReport {
        bid_history,
        exec_history,
        sweeps,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_core::scenario::PAPER_ARRIVAL_RATE;
    use lb_core::System;
    use lb_mechanism::CompensationBonusMechanism;

    fn small_system() -> System {
        System::from_true_values(&[1.0, 2.0, 5.0, 10.0]).unwrap()
    }

    #[test]
    fn dynamics_converge_to_truth_equivalent_profile_from_liar_start() {
        let sys = small_system();
        let trues = sys.true_values();
        // Start: everyone over-bids 3x and throttles 2x.
        let bids: Vec<f64> = trues.iter().map(|t| t * 3.0).collect();
        let exec: Vec<f64> = trues.iter().map(|t| t * 2.0).collect();
        let start = Profile::new(trues.clone(), bids, exec, PAPER_ARRIVAL_RATE).unwrap();

        let mech = CompensationBonusMechanism::paper();
        let report = run_dynamics(&mech, &start, &DynamicsOptions::default()).unwrap();
        assert!(
            report.converged,
            "did not converge in {} sweeps",
            report.sweeps
        );
        // Scale-invariance of PR: the dynamics land on bids *proportional*
        // to the true values with full-capacity execution — outcome-identical
        // to truth (same allocation, same optimal latency).
        assert!(
            report.distance_from_truth_up_to_scale(&trues) < 0.05,
            "final profile not truth-equivalent: {:?}",
            report.final_bids()
        );

        // Certify outcome equivalence directly: the realised total latency at
        // the final profile equals the truthful optimum.
        let final_profile = Profile::new(
            trues.clone(),
            report.final_bids().to_vec(),
            report.final_exec().to_vec(),
            PAPER_ARRIVAL_RATE,
        )
        .unwrap();
        let out = lb_mechanism::run_mechanism(&mech, &final_profile).unwrap();
        let optimal = lb_core::optimal_latency_linear(&trues, PAPER_ARRIVAL_RATE).unwrap();
        assert!(
            (out.total_latency - optimal).abs() / optimal < 0.01,
            "latency {} vs optimal {optimal}",
            out.total_latency
        );
    }

    #[test]
    fn dynamics_from_truth_stay_at_truth_in_one_sweep() {
        let sys = small_system();
        let start = Profile::truthful(&sys, PAPER_ARRIVAL_RATE).unwrap();
        let mech = CompensationBonusMechanism::paper();
        let report = run_dynamics(&mech, &start, &DynamicsOptions::default()).unwrap();
        assert!(report.converged);
        assert_eq!(report.sweeps, 1);
        assert!(report.distance_from_truth(&sys.true_values()) < 0.05);
    }

    #[test]
    fn history_is_recorded_per_sweep() {
        let sys = small_system();
        let start = Profile::truthful(&sys, PAPER_ARRIVAL_RATE).unwrap();
        let mech = CompensationBonusMechanism::paper();
        let report = run_dynamics(&mech, &start, &DynamicsOptions::default()).unwrap();
        assert_eq!(report.bid_history.len() as u32, report.sweeps);
        assert_eq!(report.exec_history.len() as u32, report.sweeps);
    }
}
