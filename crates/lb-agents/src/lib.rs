//! Strategic agent models for the load balancing mechanism.
//!
//! The paper's central claim (Theorem 3.1) is that truth-telling plus
//! full-capacity execution is a dominant strategy. This crate provides the
//! machinery to probe that claim the way a strategic participant would:
//!
//! * [`bidding`] / [`execution`] — a library of bidding and execution
//!   strategies (truthful, scaled liars, random, adaptive).
//! * [`mod@best_response`] — numerical best-response search: given the others'
//!   behaviour, find the (bid, exec) pair maximising one agent's utility
//!   under a given mechanism.
//! * [`dynamics`] — iterated best-response dynamics: under a truthful
//!   mechanism they converge to the truthful profile from any start.
//! * [`game`] — small normal-form game analysis over discretised strategy
//!   spaces: empirical payoff tables, dominant-strategy and pure-Nash
//!   checks.

pub mod adaptive;
pub mod best_response;
pub mod bidding;
pub mod collusion;
pub mod dynamics;
pub mod execution;
pub mod fictitious;
pub mod game;

pub use adaptive::{repeated_play, EpsilonGreedyAgent, RepeatedPlayReport};
pub use best_response::{best_response, BestResponse, SearchOptions};
pub use bidding::BiddingStrategy;
pub use collusion::{coalition_search, CoalitionReport};
pub use dynamics::{run_dynamics, DynamicsOptions, DynamicsReport};
pub use execution::ExecutionStrategy;
pub use fictitious::FictitiousPlay;
pub use game::{empirical_game, EmpiricalGame, StrategyOption};
