//! Execution strategies.
//!
//! After receiving its allocation, a machine chooses how fast to actually
//! run. The paper's constraint (Def. 3.1): the execution value `t̃` can be
//! anything **at or above** the true value — machines can stall, not
//! overclock. Every strategy here clamps to that constraint.

/// How an agent executes its assigned jobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecutionStrategy {
    /// Run at full capacity: `t̃ = t` (the paper's dominant strategy).
    FullCapacity,
    /// Run `factor ≥ 1` times slower than capacity: `t̃ = factor × t`.
    Throttled(f64),
    /// Execute exactly as declared: `t̃ = max(bid, t)` — the "consistent"
    /// behaviour under which the paper's theorems are exact.
    MatchBid,
    /// Execute at a fixed value, clamped up to the true value.
    Fixed(f64),
}

impl ExecutionStrategy {
    /// The execution value this strategy realises.
    ///
    /// # Panics
    /// Panics on invalid parameters (throttle factor < 1, non-positive
    /// fixed values).
    #[must_use]
    pub fn exec_value(&self, true_value: f64, bid: f64) -> f64 {
        match *self {
            Self::FullCapacity => true_value,
            Self::Throttled(factor) => {
                assert!(
                    factor.is_finite() && factor >= 1.0,
                    "Throttled: factor must be >= 1"
                );
                true_value * factor
            }
            Self::MatchBid => bid.max(true_value),
            Self::Fixed(value) => {
                assert!(value.is_finite() && value > 0.0, "Fixed: invalid value");
                value.max(true_value)
            }
        }
    }

    /// Whether this strategy always runs at full capacity.
    #[must_use]
    pub fn is_full_capacity(&self) -> bool {
        matches!(self, Self::FullCapacity)
            || matches!(self, Self::Throttled(f) if (*f - 1.0).abs() < 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_capacity_is_truth() {
        assert_eq!(ExecutionStrategy::FullCapacity.exec_value(2.0, 99.0), 2.0);
        assert!(ExecutionStrategy::FullCapacity.is_full_capacity());
    }

    #[test]
    fn throttled_scales_up() {
        assert_eq!(ExecutionStrategy::Throttled(2.0).exec_value(2.0, 1.0), 4.0);
        assert!(ExecutionStrategy::Throttled(1.0).is_full_capacity());
    }

    #[test]
    fn match_bid_clamps_to_capacity() {
        // Bid above truth: run at the bid (consistent slow liar).
        assert_eq!(ExecutionStrategy::MatchBid.exec_value(2.0, 3.0), 3.0);
        // Bid below truth: physically impossible — clamps to capacity.
        assert_eq!(ExecutionStrategy::MatchBid.exec_value(2.0, 1.0), 2.0);
    }

    #[test]
    fn fixed_clamps_to_capacity() {
        assert_eq!(ExecutionStrategy::Fixed(5.0).exec_value(2.0, 1.0), 5.0);
        assert_eq!(ExecutionStrategy::Fixed(1.0).exec_value(2.0, 1.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "factor must be >= 1")]
    fn throttle_below_one_panics() {
        let _ = ExecutionStrategy::Throttled(0.5).exec_value(1.0, 1.0);
    }
}
