//! Publication glue: profiler and sentinel documents onto the live
//! [`Exposition`] endpoint.
//!
//! The exposition server (`lb-telemetry`) serves whatever JSON was last
//! published under `/profile` and `/regressions`; these helpers render
//! the profiler's rollup document and the sentinel's verdicts into those
//! slots. Publishing is a mutex-guarded string swap on the caller's
//! thread — it never blocks the protocol on a scraper.

use crate::rollup::RoundProfiler;
use crate::sentinel::{verdicts_json, Baseline, SentinelConfig, Verdict};
use lb_telemetry::Exposition;

/// Renders the profiler's current state and publishes it as `/profile`.
pub fn publish_profile(share: &Exposition, profiler: &RoundProfiler) {
    let mut text = profiler.to_json().render();
    text.push('\n');
    share.publish_profile(text);
}

/// Renders a verdict set and publishes it as `/regressions`.
pub fn publish_regressions(
    share: &Exposition,
    verdicts: &[Verdict],
    n: u64,
    baseline: &Baseline,
    cfg: &SentinelConfig,
) {
    let mut text = verdicts_json(verdicts, n, baseline, cfg).render();
    text.push('\n');
    share.publish_regressions(text);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rollup::PHASES;
    use crate::sentinel::check;
    use lb_stats::OnlineStats;
    use lb_telemetry::{ExposeServer, Json};
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response
    }

    fn body_json(response: &str) -> Json {
        let body = response.split("\r\n\r\n").nth(1).expect("body");
        Json::parse(body).expect("json body")
    }

    #[test]
    fn profile_and_regressions_are_served_end_to_end() {
        let share = Exposition::new();
        let server = ExposeServer::bind("127.0.0.1:0", share.clone()).expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = std::thread::spawn(move || server.serve_requests(2));

        let mut profiler = RoundProfiler::new();
        profiler.finish_round(0, [0.01, 0.02, 0.015, 0.005]);
        profiler.finish_round(1, [0.01, 0.02, 0.015, 0.005]);
        publish_profile(&share, &profiler);

        let log = r#"{"bench":"round-scaling","unit":"ms","entries":[
            {"label":"seed","rows":[{"n":64,
             "p99_collect_ms":10.0,"p99_allocate_ms":20.0,
             "p99_execute_ms":15.0,"p99_settle_ms":1.0}]}]}"#;
        let baseline = Baseline::parse(log, "seed").unwrap();
        let cfg = SentinelConfig::default();
        let mut series = [OnlineStats::new(); 4];
        for round in 0..4 {
            #[allow(clippy::cast_precision_loss)]
            let wobble = 1e-5 * f64::from(round % 2);
            for (i, s) in series.iter_mut().enumerate() {
                let base = [0.01, 0.02, 0.015, 0.005][i];
                s.push(base + wobble);
            }
        }
        let verdicts = check(&series, 64, &baseline, &cfg);
        publish_regressions(&share, &verdicts, 64, &baseline, &cfg);

        let profile = body_json(&http_get(addr, "/profile"));
        assert_eq!(
            profile.get("rounds_profiled").and_then(Json::as_u64),
            Some(2)
        );
        let regressions = body_json(&http_get(addr, "/regressions"));
        // Settle runs at 5 ms against a 1 ms baseline: flagged.
        assert_eq!(
            regressions.get("regressed").and_then(Json::as_bool),
            Some(true)
        );
        let listed = regressions
            .get("verdicts")
            .and_then(Json::as_array)
            .expect("verdicts");
        assert_eq!(listed.len(), PHASES.len());

        handle.join().expect("server thread").expect("serve");
    }
}
