//! Critical-path analysis over a replayed round trace.
//!
//! A round's wall-time decomposes along the coordinator→shard chain: the
//! root's phase spans are sequential and partition the round span, and
//! within each phase the barrier joins on its *straggler* — the shard span
//! with the latest end, since the root cannot proceed until every worker
//! has reported. [`analyze`] walks that structure over the
//! [`CompletedSpan`] forest of [`lb_telemetry::replay_spans`]:
//!
//! 1. find the round root (the `round` span, or `sim.round` for pure
//!    simulator recordings);
//! 2. its direct phase children, in start order, are the top-level path —
//!    their summed durations over the round duration is the profile's
//!    **coverage** (≥95 % on a healthy sharded round; the gap is
//!    inter-phase coordinator work that belongs to no phase span);
//! 3. each path node descends into its latest-ending non-simulator child
//!    (the barrier-gating straggler), recording per-node **self-time**
//!    (duration not covered by any child's interval — coordination
//!    overhead) and **blocked-time** (the interval union of its children —
//!    time spent waiting on deeper work);
//! 4. per phase, shard children are ranked by duration into the straggler
//!    table.
//!
//! Simulator (`sim.*`) spans are deliberately excluded from the wall-time
//! path: the discrete-event simulator stamps them on the *simulation*
//! clock (`0 → horizon`), so their durations are not wall-time. The
//! machine link of the chain comes from the rollup's `Instant`-timed
//! machine sketches instead ([`RoundProfile::attach_machine_leaf`]).
//!
//! The resulting [`RoundProfile`] serializes to JSONL ([`to_jsonl`] /
//! [`from_jsonl`]) and renders as text for terminal dashboards.

use lb_telemetry::{replay_spans, CompletedSpan, Json, ReplayError, Subsystem, TelemetryEvent};
use std::fmt;
use std::fmt::Write as _;

/// Why a trace could not be profiled.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// The recording does not replay cleanly.
    Replay(ReplayError),
    /// No `round` (or `sim.round`) span in the trace.
    NoRoundSpan,
    /// The round span has zero (or negative) duration, so attribution is
    /// undefined.
    EmptyRound,
    /// A serialized profile failed to parse back.
    BadDocument(String),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Replay(e) => write!(f, "trace does not replay: {e}"),
            ProfileError::NoRoundSpan => write!(f, "no round span in trace"),
            ProfileError::EmptyRound => write!(f, "round span has no duration"),
            ProfileError::BadDocument(m) => write!(f, "bad profile document: {m}"),
        }
    }
}

impl std::error::Error for ProfileError {}

impl From<ReplayError> for ProfileError {
    fn from(e: ReplayError) -> Self {
        ProfileError::Replay(e)
    }
}

/// One node on the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathNode {
    /// Span name (`round`, `phase.allocate`, `shard.verify`, `machine`).
    pub name: String,
    /// Nesting depth on the path (0 = the round span).
    pub depth: usize,
    /// Start timestamp, seconds on the recording clock.
    pub start: f64,
    /// End timestamp.
    pub end: f64,
    /// Duration not covered by any child interval: the node's own work.
    pub self_time: f64,
    /// Interval-union of the node's children: time waiting on deeper work.
    pub blocked_time: f64,
    /// Shard index, when the node is a shard span.
    pub shard: Option<u64>,
    /// Machine id, when the node is a machine leaf.
    pub machine: Option<u64>,
}

impl PathNode {
    /// Node duration in seconds.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// One entry of the per-phase straggler ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct Straggler {
    /// Phase span name the shard gated.
    pub phase: String,
    /// Shard index.
    pub shard: u64,
    /// The shard span's wall duration.
    pub duration: f64,
}

/// The structured report of one profiled round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundProfile {
    /// Round span wall duration, seconds.
    pub round_wall: f64,
    /// Σ top-level path segment durations / round duration.
    pub coverage: f64,
    /// The critical path, root first.
    pub path: Vec<PathNode>,
    /// Per-phase shard ranking, slowest first (top 3 per phase).
    pub stragglers: Vec<Straggler>,
}

/// Shards ranked per phase, slowest first, retained per phase.
const STRAGGLERS_PER_PHASE: usize = 3;

fn field_u64(span: &CompletedSpan, key: &str) -> Option<u64> {
    match span.field(key) {
        Some(lb_telemetry::FieldValue::U64(v)) => Some(*v),
        _ => None,
    }
}

/// Length of the union of `intervals` clipped to `[lo, hi]`.
fn union_length(mut intervals: Vec<(f64, f64)>, lo: f64, hi: f64) -> f64 {
    intervals.retain(|&(s, e)| e > lo && s < hi);
    for iv in &mut intervals {
        iv.0 = iv.0.max(lo);
        iv.1 = iv.1.min(hi);
    }
    intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite timestamps"));
    let mut covered = 0.0;
    let mut cursor = lo;
    for (s, e) in intervals {
        let s = s.max(cursor);
        if e > s {
            covered += e - s;
            cursor = e;
        }
    }
    covered
}

/// Profiles a replayed span forest. See the module docs for the algorithm.
///
/// # Errors
/// [`ProfileError::NoRoundSpan`] when the trace has no round root,
/// [`ProfileError::EmptyRound`] when the root has no duration.
pub fn analyze(spans: &[CompletedSpan]) -> Result<RoundProfile, ProfileError> {
    let root = spans
        .iter()
        .find(|s| s.name == "round")
        .or_else(|| spans.iter().find(|s| s.name == "sim.round"))
        .ok_or(ProfileError::NoRoundSpan)?;
    let round_wall = root.duration();
    if round_wall <= 0.0 {
        return Err(ProfileError::EmptyRound);
    }

    let children = |id| -> Vec<&CompletedSpan> {
        let mut kids: Vec<&CompletedSpan> = spans
            .iter()
            .filter(|s| s.parent == Some(id) && s.cat != Subsystem::Sim)
            .collect();
        kids.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite timestamps"));
        kids
    };

    // Top level: the root's phase children in start order.
    let phases = children(root.id);
    let covered: f64 = phases.iter().map(|p| p.duration()).sum();
    let coverage = covered / round_wall;

    let mut path = Vec::new();
    let mut stragglers = Vec::new();
    let node_of = |span: &CompletedSpan, depth: usize, kids: &[&CompletedSpan]| PathNode {
        name: span.name.clone(),
        depth,
        start: span.start,
        end: span.end,
        self_time: span.duration()
            - union_length(
                kids.iter().map(|k| (k.start, k.end)).collect(),
                span.start,
                span.end,
            ),
        blocked_time: union_length(
            kids.iter().map(|k| (k.start, k.end)).collect(),
            span.start,
            span.end,
        ),
        shard: field_u64(span, "shard").filter(|_| span.cat == Subsystem::Shard),
        machine: None,
    };

    path.push(node_of(root, 0, &phases));
    for phase in &phases {
        // Descend the barrier chain: at each level the latest-ending child
        // is the straggler that gated the join.
        let mut depth = 1;
        let mut current = *phase;
        loop {
            let kids = children(current.id);
            path.push(node_of(current, depth, &kids));
            if current.cat == Subsystem::Shard {
                // Shard ranking is recorded at the phase level below.
            }
            let Some(straggler) = kids
                .iter()
                .max_by(|a, b| a.end.partial_cmp(&b.end).expect("finite timestamps"))
            else {
                break;
            };
            current = straggler;
            depth += 1;
        }
        // Straggler table: this phase's shard children by duration.
        let mut shard_kids: Vec<&CompletedSpan> = children(phase.id)
            .into_iter()
            .filter(|s| s.cat == Subsystem::Shard)
            .collect();
        shard_kids.sort_by(|a, b| {
            b.duration()
                .partial_cmp(&a.duration())
                .expect("finite timestamps")
        });
        for s in shard_kids.iter().take(STRAGGLERS_PER_PHASE) {
            if let Some(shard) = field_u64(s, "shard") {
                stragglers.push(Straggler {
                    phase: phase.name.clone(),
                    shard,
                    duration: s.duration(),
                });
            }
        }
    }

    Ok(RoundProfile {
        round_wall,
        coverage,
        path,
        stragglers,
    })
}

/// Replays `events` (with shard-lineage validation) and profiles the result.
///
/// # Errors
/// Propagates replay errors and [`analyze`] errors.
pub fn profile_events(events: &[TelemetryEvent]) -> Result<RoundProfile, ProfileError> {
    let spans = replay_spans(events)?;
    Ok(analyze(&spans)?)
}

impl RoundProfile {
    /// Appends a machine leaf under the deepest shard node of the path —
    /// the rollup's `Instant`-timed slowest machine, which the sim-clock
    /// trace cannot provide. `wall` is the machine's verification
    /// wall-time; the leaf inherits the shard node's interval endpoints.
    pub fn attach_machine_leaf(&mut self, machine: u64, wall: f64) {
        let Some(deepest) = self
            .path
            .iter()
            .filter(|n| n.shard.is_some())
            .max_by_key(|n| n.depth)
            .cloned()
        else {
            return;
        };
        self.path.push(PathNode {
            name: "machine".to_string(),
            depth: deepest.depth + 1,
            start: deepest.start,
            end: deepest.start + wall,
            self_time: wall,
            blocked_time: 0.0,
            shard: deepest.shard,
            machine: Some(machine),
        });
    }

    /// The profile as a JSON document. Inverse of [`Self::from_json`].
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn to_json(&self) -> Json {
        let node = |n: &PathNode| {
            let mut pairs = vec![
                ("name".to_string(), Json::Str(n.name.clone())),
                ("depth".to_string(), Json::Num(n.depth as f64)),
                ("start".to_string(), Json::Num(n.start)),
                ("end".to_string(), Json::Num(n.end)),
                ("self_time".to_string(), Json::Num(n.self_time)),
                ("blocked_time".to_string(), Json::Num(n.blocked_time)),
            ];
            if let Some(s) = n.shard {
                pairs.push(("shard".to_string(), Json::Num(s as f64)));
            }
            if let Some(m) = n.machine {
                pairs.push(("machine".to_string(), Json::Num(m as f64)));
            }
            Json::obj(pairs)
        };
        Json::obj([
            ("round_wall", Json::Num(self.round_wall)),
            ("coverage", Json::Num(self.coverage)),
            ("path", Json::Arr(self.path.iter().map(node).collect())),
            (
                "stragglers",
                Json::Arr(
                    self.stragglers
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("phase", Json::Str(s.phase.clone())),
                                ("shard", Json::Num(s.shard as f64)),
                                ("duration", Json::Num(s.duration)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a document produced by [`Self::to_json`].
    ///
    /// # Errors
    /// [`ProfileError::BadDocument`] on missing keys or non-finite numbers.
    pub fn from_json(doc: &Json) -> Result<Self, ProfileError> {
        let bad = |m: &str| ProfileError::BadDocument(m.to_string());
        let num = |j: &Json, key: &str| -> Result<f64, ProfileError> {
            let v = j
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| bad(&format!("missing number {key}")))?;
            if v.is_finite() {
                Ok(v)
            } else {
                Err(bad(&format!("non-finite {key}")))
            }
        };
        let round_wall = num(doc, "round_wall")?;
        let coverage = num(doc, "coverage")?;
        let path = doc
            .get("path")
            .and_then(Json::as_array)
            .ok_or_else(|| bad("missing path"))?
            .iter()
            .map(|n| {
                Ok(PathNode {
                    name: n
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("missing node name"))?
                        .to_string(),
                    depth: n
                        .get("depth")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("missing node depth"))?
                        as usize,
                    start: num(n, "start")?,
                    end: num(n, "end")?,
                    self_time: num(n, "self_time")?,
                    blocked_time: num(n, "blocked_time")?,
                    shard: n.get("shard").and_then(Json::as_u64),
                    machine: n.get("machine").and_then(Json::as_u64),
                })
            })
            .collect::<Result<Vec<_>, ProfileError>>()?;
        let stragglers = doc
            .get("stragglers")
            .and_then(Json::as_array)
            .ok_or_else(|| bad("missing stragglers"))?
            .iter()
            .map(|s| {
                Ok(Straggler {
                    phase: s
                        .get("phase")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("missing straggler phase"))?
                        .to_string(),
                    shard: s
                        .get("shard")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("missing straggler shard"))?,
                    duration: num(s, "duration")?,
                })
            })
            .collect::<Result<Vec<_>, ProfileError>>()?;
        Ok(Self {
            round_wall,
            coverage,
            path,
            stragglers,
        })
    }

    /// Renders the profile as a fixed-width text block.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "round wall {:.3} ms, critical-path coverage {:.1}%",
            self.round_wall * 1e3,
            self.coverage * 100.0
        );
        for n in &self.path {
            let mut label = n.name.clone();
            if let Some(s) = n.shard {
                let _ = write!(label, "[{s}]");
            }
            if let Some(m) = n.machine {
                let _ = write!(label, " m{m}");
            }
            let _ = writeln!(
                out,
                "{:indent$}{label:<28} {:>10.3} ms  self {:>10.3} ms  blocked {:>10.3} ms",
                "",
                n.duration() * 1e3,
                n.self_time * 1e3,
                n.blocked_time * 1e3,
                indent = n.depth * 2,
            );
        }
        if !self.stragglers.is_empty() {
            let _ = writeln!(out, "stragglers:");
            for s in &self.stragglers {
                let _ = writeln!(
                    out,
                    "  {:<22} shard {:>3}  {:>10.3} ms",
                    s.phase,
                    s.shard,
                    s.duration * 1e3
                );
            }
        }
        out
    }
}

/// Serializes profiles as JSONL, one profile per line.
#[must_use]
pub fn to_jsonl(profiles: &[RoundProfile]) -> String {
    let mut out = String::new();
    for p in profiles {
        out.push_str(&p.to_json().render());
        out.push('\n');
    }
    out
}

/// Parses a JSONL stream produced by [`to_jsonl`]. Blank lines are skipped.
///
/// # Errors
/// [`ProfileError::BadDocument`] on the first malformed line.
pub fn from_jsonl(text: &str) -> Result<Vec<RoundProfile>, ProfileError> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|line| {
            let doc = Json::parse(line)
                .map_err(|e| ProfileError::BadDocument(format!("line does not parse: {e}")))?;
            RoundProfile::from_json(&doc)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_telemetry::{Collector, Field, RingCollector};

    /// A synthetic two-shard round: phases sequential under the round span,
    /// shard spans under each phase, one shard clearly the straggler.
    fn synthetic_round() -> Vec<TelemetryEvent> {
        let ring = RingCollector::new(256);
        let round = ring.span_start(0.0, "round", Subsystem::Coordinator, vec![]);
        let collect = ring.span_start_in(
            0.0,
            "phase.collect_bids",
            Subsystem::Coordinator,
            round,
            vec![],
        );
        let s0 = ring.span_start_in(
            0.0,
            "shard.collect",
            Subsystem::Shard,
            collect,
            vec![Field::u64("shard", 0)],
        );
        let s1 = ring.span_start_in(
            0.0,
            "shard.collect",
            Subsystem::Shard,
            collect,
            vec![Field::u64("shard", 1)],
        );
        ring.span_end(0.2, s0);
        ring.span_end(0.5, s1); // straggler
        ring.span_end(0.6, collect);
        let allocate =
            ring.span_start_in(0.6, "phase.allocate", Subsystem::Coordinator, round, vec![]);
        ring.span_end(1.0, allocate);
        ring.span_end(1.05, round);
        ring.snapshot()
    }

    #[test]
    fn synthetic_round_profiles_with_high_coverage() {
        let profile = profile_events(&synthetic_round()).unwrap();
        assert!((profile.round_wall - 1.05).abs() < 1e-12);
        // Phases cover 0.0..0.6 and 0.6..1.0 of a 1.05 s round.
        assert!((profile.coverage - 1.0 / 1.05).abs() < 1e-9);
        // Path: round → collect → shard 1 (the straggler), then allocate.
        let names: Vec<&str> = profile.path.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "round",
                "phase.collect_bids",
                "shard.collect",
                "phase.allocate"
            ]
        );
        let shard_node = &profile.path[2];
        assert_eq!(shard_node.shard, Some(1), "latest-ending shard wins");
        assert!((shard_node.duration() - 0.5).abs() < 1e-12);
        // Collect phase: children cover 0.0..0.5 of its 0.6 s → 0.1 s self.
        let collect_node = &profile.path[1];
        assert!((collect_node.blocked_time - 0.5).abs() < 1e-12);
        assert!((collect_node.self_time - 0.1).abs() < 1e-12);
        // Straggler table ranks shard 1 first for the collect phase.
        assert_eq!(profile.stragglers[0].shard, 1);
        assert_eq!(profile.stragglers[0].phase, "phase.collect_bids");
        assert_eq!(profile.stragglers[1].shard, 0);
    }

    #[test]
    fn missing_round_span_is_an_error() {
        let ring = RingCollector::new(16);
        let s = ring.span_start(0.0, "phase.allocate", Subsystem::Coordinator, vec![]);
        ring.span_end(1.0, s);
        assert_eq!(
            profile_events(&ring.snapshot()),
            Err(ProfileError::NoRoundSpan)
        );
    }

    #[test]
    fn sim_round_is_an_accepted_root() {
        let ring = RingCollector::new(16);
        let s = ring.span_start(0.0, "sim.round", Subsystem::Sim, vec![]);
        ring.span_end(2.0, s);
        let profile = profile_events(&ring.snapshot()).unwrap();
        assert_eq!(profile.round_wall, 2.0);
        assert_eq!(profile.path.len(), 1);
    }

    #[test]
    fn machine_leaf_attaches_under_the_deepest_shard() {
        let mut profile = profile_events(&synthetic_round()).unwrap();
        profile.attach_machine_leaf(17, 0.3);
        let leaf = profile.path.last().unwrap();
        assert_eq!(leaf.machine, Some(17));
        assert_eq!(leaf.shard, Some(1));
        assert!((leaf.self_time - 0.3).abs() < 1e-12);
    }

    #[test]
    fn jsonl_round_trip_is_identity() {
        let mut profile = profile_events(&synthetic_round()).unwrap();
        profile.attach_machine_leaf(3, 0.2);
        let text = to_jsonl(&[profile.clone(), profile.clone()]);
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], profile);
    }

    #[test]
    fn malformed_jsonl_is_rejected_not_panicked() {
        assert!(from_jsonl("{\"round_wall\": 1.0}").is_err());
        assert!(from_jsonl("not json at all").is_err());
        assert!(from_jsonl("{\"round_wall\": 1.0, \"coverage\": \"NaN\"}").is_err());
    }

    #[test]
    fn render_text_mentions_coverage_and_stragglers() {
        let profile = profile_events(&synthetic_round()).unwrap();
        let text = profile.render_text();
        assert!(text.contains("coverage"));
        assert!(text.contains("stragglers:"));
        assert!(text.contains("shard"));
    }
}
