//! Perf-regression sentinel: live phase timings vs a named `BENCH_*.json`
//! baseline.
//!
//! The bench harness (`lb-bench`) persists labelled result sets in its
//! bench-log schema: `{bench, unit, entries: [{label, rows: [...]}]}`,
//! where each row of the `round-scaling` bench carries `n` plus
//! `p99_<phase>_ms` for the four protocol phases. [`Baseline::parse`]
//! reads that document (via [`lb_telemetry::Json`]; lb-prof deliberately
//! does not depend on lb-bench) and selects one labelled entry.
//!
//! [`check`] then compares a live series of per-round phase wall-times
//! (the [`RoundProfiler`](crate::rollup::RoundProfiler) accumulates one
//! [`OnlineStats`] per phase) against the baseline row for the same fleet
//! size. A phase is flagged **regressed** when the lower bound of the
//! Student-t confidence interval of its observed mean exceeds the
//! baseline p99 by more than the configured slack:
//!
//! ```text
//! regressed  ⇔  rounds ≥ min_rounds  ∧  CI_lo(mean) > p99_base · (1 + slack)
//! ```
//!
//! Using the CI lower bound (not the point mean) keeps the sentinel quiet
//! under noise: a single slow round widens the interval instead of
//! tripping the alarm, while a genuine slowdown tightens around the new
//! mean and clears the threshold. The slack absorbs hardware drift
//! between the machine that produced the baseline and the live one.

use crate::rollup::PHASES;
use lb_stats::{mean_confidence_interval, OnlineStats};
use lb_telemetry::Json;
use std::fmt;
use std::fmt::Write as _;

/// Why a baseline document could not be used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The text is not a bench-log document.
    BadLog(String),
    /// No entry with the requested label.
    UnknownLabel(String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::BadLog(m) => write!(f, "bad bench log: {m}"),
            BaselineError::UnknownLabel(l) => write!(f, "no bench-log entry labelled {l:?}"),
        }
    }
}

impl std::error::Error for BaselineError {}

/// One fleet size's baseline phase p99s, milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineRow {
    /// Fleet size the row was measured at.
    pub n: u64,
    /// p99 per phase, ms, in [`PHASES`] order (collect, allocate,
    /// execute, settle).
    pub phase_p99_ms: [f64; 4],
}

/// A labelled entry of a bench-log document, ready for [`check`].
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Bench name from the document (e.g. `round-scaling`).
    pub bench: String,
    /// The entry label selected at parse time (e.g. `seed`).
    pub label: String,
    /// One row per fleet size.
    pub rows: Vec<BaselineRow>,
}

impl Baseline {
    /// Parses a bench-log document and selects the entry named `label`.
    ///
    /// # Errors
    /// [`BaselineError::BadLog`] on malformed documents or rows missing
    /// the `n` / `p99_<phase>_ms` keys; [`BaselineError::UnknownLabel`]
    /// when no entry carries `label`.
    pub fn parse(text: &str, label: &str) -> Result<Self, BaselineError> {
        let bad = |m: &str| BaselineError::BadLog(m.to_string());
        let doc = Json::parse(text).map_err(|e| bad(&format!("does not parse: {e}")))?;
        let bench = doc
            .get("bench")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing bench name"))?
            .to_string();
        let entries = doc
            .get("entries")
            .and_then(Json::as_array)
            .ok_or_else(|| bad("missing entries"))?;
        let entry = entries
            .iter()
            .find(|e| e.get("label").and_then(Json::as_str) == Some(label))
            .ok_or_else(|| BaselineError::UnknownLabel(label.to_string()))?;
        let rows_json = entry
            .get("rows")
            .and_then(Json::as_array)
            .ok_or_else(|| bad("entry has no rows"))?;
        let mut rows = Vec::with_capacity(rows_json.len());
        for row in rows_json {
            let n = row
                .get("n")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("row missing n"))?;
            let mut phase_p99_ms = [0.0_f64; 4];
            for (i, phase) in PHASES.iter().enumerate() {
                let key = format!("p99_{phase}_ms");
                let v = row
                    .get(&key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad(&format!("row missing {key}")))?;
                if !v.is_finite() || v < 0.0 {
                    return Err(bad(&format!("row has invalid {key}")));
                }
                phase_p99_ms[i] = v;
            }
            rows.push(BaselineRow { n, phase_p99_ms });
        }
        Ok(Self {
            bench,
            label: label.to_string(),
            rows,
        })
    }

    /// The row measured at fleet size `n`, if the baseline has one.
    #[must_use]
    pub fn row_for(&self, n: u64) -> Option<&BaselineRow> {
        self.rows.iter().find(|r| r.n == n)
    }
}

/// Sentinel thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SentinelConfig {
    /// Student-t confidence level for the mean interval (0.90/0.95/0.99).
    pub confidence: f64,
    /// Fractional headroom over the baseline p99 before flagging
    /// (absorbs cross-machine drift).
    pub slack: f64,
    /// Minimum profiled rounds before any phase may be flagged.
    pub min_rounds: u64,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        Self {
            confidence: 0.99,
            slack: 0.25,
            min_rounds: 3,
        }
    }
}

/// One phase's comparison against the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Phase name (`collect`, `allocate`, `execute`, `settle`).
    pub phase: &'static str,
    /// Profiled rounds behind the verdict.
    pub rounds: u64,
    /// Observed mean phase wall-time, ms.
    pub observed_mean_ms: f64,
    /// CI lower bound of the mean, ms (equals the mean when too few
    /// rounds for an interval).
    pub ci_lo_ms: f64,
    /// CI upper bound of the mean, ms.
    pub ci_hi_ms: f64,
    /// Baseline p99 for the phase, ms.
    pub baseline_p99_ms: f64,
    /// Flagging threshold: `baseline_p99_ms * (1 + slack)`.
    pub threshold_ms: f64,
    /// Whether the phase regressed past the threshold.
    pub regressed: bool,
}

/// Compares live per-phase series against the baseline row for fleet
/// size `n`. Returns one [`Verdict`] per phase, or an empty vector when
/// the baseline has no row at `n` (nothing comparable — not a failure).
#[must_use]
pub fn check(
    series: &[OnlineStats; 4],
    n: u64,
    baseline: &Baseline,
    cfg: &SentinelConfig,
) -> Vec<Verdict> {
    let Some(row) = baseline.row_for(n) else {
        return Vec::new();
    };
    // The t-interval needs >= 2 observations regardless of configuration.
    let min_rounds = cfg.min_rounds.max(2);
    PHASES
        .iter()
        .enumerate()
        .map(|(i, phase)| {
            let stats = &series[i];
            let rounds = stats.count();
            let mean_ms = if rounds == 0 { 0.0 } else { stats.mean() * 1e3 };
            let (ci_lo_ms, ci_hi_ms) = if rounds >= 2 {
                let ci = mean_confidence_interval(stats, cfg.confidence);
                (ci.lo() * 1e3, ci.hi() * 1e3)
            } else {
                (mean_ms, mean_ms)
            };
            let baseline_p99_ms = row.phase_p99_ms[i];
            let threshold_ms = baseline_p99_ms * (1.0 + cfg.slack);
            Verdict {
                phase,
                rounds,
                observed_mean_ms: mean_ms,
                ci_lo_ms,
                ci_hi_ms,
                baseline_p99_ms,
                threshold_ms,
                regressed: rounds >= min_rounds && ci_lo_ms > threshold_ms,
            }
        })
        .collect()
}

/// The `/regressions` document for a verdict set.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn verdicts_json(
    verdicts: &[Verdict],
    n: u64,
    baseline: &Baseline,
    cfg: &SentinelConfig,
) -> Json {
    Json::obj([
        ("bench", Json::Str(baseline.bench.clone())),
        ("label", Json::Str(baseline.label.clone())),
        ("n", Json::Num(n as f64)),
        ("confidence", Json::Num(cfg.confidence)),
        ("slack", Json::Num(cfg.slack)),
        (
            "regressed",
            Json::Bool(verdicts.iter().any(|v| v.regressed)),
        ),
        (
            "verdicts",
            Json::Arr(
                verdicts
                    .iter()
                    .map(|v| {
                        Json::obj([
                            ("phase", Json::Str(v.phase.to_string())),
                            ("rounds", Json::Num(v.rounds as f64)),
                            ("observed_mean_ms", Json::Num(v.observed_mean_ms)),
                            ("ci_lo_ms", Json::Num(v.ci_lo_ms)),
                            ("ci_hi_ms", Json::Num(v.ci_hi_ms)),
                            ("baseline_p99_ms", Json::Num(v.baseline_p99_ms)),
                            ("threshold_ms", Json::Num(v.threshold_ms)),
                            ("regressed", Json::Bool(v.regressed)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Renders verdicts as a fixed-width text table for terminal dashboards.
#[must_use]
pub fn render(verdicts: &[Verdict]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>7} {:>12} {:>12} {:>12} {:>12}  verdict",
        "phase", "rounds", "mean ms", "ci-lo ms", "base p99", "threshold"
    );
    for v in verdicts {
        let _ = writeln!(
            out,
            "{:<10} {:>7} {:>12.3} {:>12.3} {:>12.3} {:>12.3}  {}",
            v.phase,
            v.rounds,
            v.observed_mean_ms,
            v.ci_lo_ms,
            v.baseline_p99_ms,
            v.threshold_ms,
            if v.regressed { "REGRESSED" } else { "ok" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_log_text() -> String {
        r#"{"bench":"round-scaling","unit":"ms","entries":[
            {"label":"seed","rows":[
                {"n":1024,"shards":8,"rounds":8,
                 "p99_collect_ms":4.0,"p99_allocate_ms":10.0,
                 "p99_execute_ms":6.0,"p99_settle_ms":8.0},
                {"n":100000,"shards":8,"rounds":8,
                 "p99_collect_ms":40.0,"p99_allocate_ms":372.2,
                 "p99_execute_ms":60.0,"p99_settle_ms":34.7}]},
            {"label":"other","rows":[
                {"n":1024,"p99_collect_ms":1.0,"p99_allocate_ms":1.0,
                 "p99_execute_ms":1.0,"p99_settle_ms":1.0}]}
        ]}"#
        .to_string()
    }

    fn series(ms_per_phase: [f64; 4], rounds: u64, jitter: f64) -> [OnlineStats; 4] {
        let mut out = [OnlineStats::new(); 4];
        for (i, stats) in out.iter_mut().enumerate() {
            for r in 0..rounds {
                // Small deterministic jitter so variance is nonzero.
                #[allow(clippy::cast_precision_loss)]
                let wobble = jitter * ((r % 3) as f64 - 1.0);
                stats.push((ms_per_phase[i] + wobble) * 1e-3);
            }
        }
        out
    }

    #[test]
    fn parse_selects_the_labelled_entry() {
        let b = Baseline::parse(&bench_log_text(), "seed").unwrap();
        assert_eq!(b.bench, "round-scaling");
        assert_eq!(b.rows.len(), 2);
        assert_eq!(b.row_for(1024).unwrap().phase_p99_ms[1], 10.0);
        assert_eq!(b.row_for(100_000).unwrap().phase_p99_ms[3], 34.7);
        assert!(b.row_for(7).is_none());

        let other = Baseline::parse(&bench_log_text(), "other").unwrap();
        assert_eq!(other.row_for(1024).unwrap().phase_p99_ms[0], 1.0);
    }

    #[test]
    fn unknown_label_and_malformed_rows_are_errors() {
        assert_eq!(
            Baseline::parse(&bench_log_text(), "nope"),
            Err(BaselineError::UnknownLabel("nope".to_string()))
        );
        assert!(matches!(
            Baseline::parse("{\"entries\":[]}", "seed"),
            Err(BaselineError::BadLog(_))
        ));
        let missing_key = r#"{"bench":"b","unit":"ms","entries":[
            {"label":"seed","rows":[{"n":10,"p99_collect_ms":1.0}]}]}"#;
        assert!(matches!(
            Baseline::parse(missing_key, "seed"),
            Err(BaselineError::BadLog(_))
        ));
    }

    #[test]
    fn healthy_series_is_not_flagged() {
        let baseline = Baseline::parse(&bench_log_text(), "seed").unwrap();
        let cfg = SentinelConfig::default();
        // Means sit at the baseline p99s themselves: inside the slack band.
        let verdicts = check(
            &series([4.0, 10.0, 6.0, 8.0], 8, 0.05),
            1024,
            &baseline,
            &cfg,
        );
        assert_eq!(verdicts.len(), 4);
        assert!(verdicts.iter().all(|v| !v.regressed));
    }

    #[test]
    fn doubled_settle_is_flagged_and_only_settle() {
        let baseline = Baseline::parse(&bench_log_text(), "seed").unwrap();
        let cfg = SentinelConfig::default();
        // Settle at 2x its 8 ms baseline; threshold is 10 ms.
        let verdicts = check(
            &series([4.0, 10.0, 6.0, 16.0], 8, 0.05),
            1024,
            &baseline,
            &cfg,
        );
        let settle = verdicts.iter().find(|v| v.phase == "settle").unwrap();
        assert!(settle.regressed);
        assert!(settle.ci_lo_ms > settle.threshold_ms);
        assert_eq!(verdicts.iter().filter(|v| v.regressed).count(), 1);
    }

    #[test]
    fn too_few_rounds_never_flags() {
        let baseline = Baseline::parse(&bench_log_text(), "seed").unwrap();
        let cfg = SentinelConfig::default();
        let verdicts = check(
            &series([4.0, 10.0, 6.0, 50.0], 2, 0.05),
            1024,
            &baseline,
            &cfg,
        );
        assert!(verdicts.iter().all(|v| !v.regressed));
        // And a fleet size the baseline never measured yields no verdicts.
        assert!(check(&series([4.0; 4], 8, 0.05), 999, &baseline, &cfg).is_empty());
    }

    #[test]
    fn wide_noise_keeps_the_sentinel_quiet() {
        let baseline = Baseline::parse(&bench_log_text(), "seed").unwrap();
        let cfg = SentinelConfig::default();
        // Mean above threshold but jitter so large the CI dips below it.
        let verdicts = check(
            &series([4.0, 10.0, 6.0, 11.0], 4, 9.0),
            1024,
            &baseline,
            &cfg,
        );
        let settle = verdicts.iter().find(|v| v.phase == "settle").unwrap();
        assert!(!settle.regressed, "wide CI must not trip the alarm");
    }

    #[test]
    fn verdicts_json_round_trips_and_render_mentions_regression() {
        let baseline = Baseline::parse(&bench_log_text(), "seed").unwrap();
        let cfg = SentinelConfig::default();
        let verdicts = check(
            &series([4.0, 10.0, 6.0, 16.0], 8, 0.05),
            1024,
            &baseline,
            &cfg,
        );
        let doc = verdicts_json(&verdicts, 1024, &baseline, &cfg);
        let back = Json::parse(&doc.render()).unwrap();
        assert_eq!(back.get("regressed").and_then(Json::as_bool), Some(true));
        assert_eq!(
            back.get("verdicts")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(4)
        );
        let text = render(&verdicts);
        assert!(text.contains("REGRESSED"));
        assert!(text.contains("settle"));
    }
}
