//! Cross-shard telemetry rollup: per-shard and fleet-wide phase/machine
//! latency distributions without shipping raw spans off-shard.
//!
//! Each shard worker of the hierarchical round summarizes its own
//! per-machine verification wall-times into one [`WireShardProfile`] — a
//! fixed-size [`WireSketch`] plus the identity of its slowest machine —
//! that travels to the root alongside the `ShardSum`/`ShardEstimates`
//! frames. The root feeds those frames plus its own per-shard, per-phase
//! stage timings into a [`RoundProfiler`], which accumulates:
//!
//! * a per-shard [`ShardRollup`] — one [`LatencySketch`] per protocol phase
//!   (one sample per profiled round) and one machine-wall sketch (one
//!   sample per machine per profiled round);
//! * a root-level phase series ([`OnlineStats`] per phase) that the
//!   regression sentinel tests against named baselines;
//! * profile-frame accounting, kept **separate** from the protocol's
//!   `MessageStats` so attaching a profiler never changes the audited
//!   message counts.
//!
//! Fleet-wide views are merges over the per-shard sketches
//! ([`Rollup::fleet_phase`] / [`Rollup::fleet_machine`]) — exact, because
//! sketch merge is exact.

use crate::sketch::{LatencySketch, WireError, WireSketch};
use lb_stats::OnlineStats;
use lb_telemetry::Json;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Phase labels, in protocol order — the same vocabulary as the
/// `ShardPhaseTimings` fields and the `p99_<phase>_ms` columns of
/// `BENCH_round_scaling.json`.
pub const PHASES: [&str; 4] = ["collect", "allocate", "execute", "settle"];

/// What one shard worker ships to the root when a round is profiled: its
/// machine-wall sketch and the slowest machine it saw. Indices are
/// shard-local respondent ordinals; the root maps them to global machine
/// ids (the worker does not know the global index space).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireShardProfile {
    /// Shard index.
    pub shard: u32,
    /// Machines this shard simulated this round.
    pub machines: u64,
    /// Per-machine verification wall-times, sketched.
    pub machine_wall: WireSketch,
    /// `(local respondent index, wall seconds)` of the slowest machine.
    pub slowest: Option<(u64, f64)>,
}

/// Accumulated profile of one shard across profiled rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRollup {
    /// Shard index.
    pub shard: u32,
    /// One sketch per phase; each profiled round contributes one sample.
    pub phases: [LatencySketch; 4],
    /// Per-machine verification wall-times across profiled rounds.
    pub machine_wall: LatencySketch,
    /// Slowest machine of the most recent profiled round
    /// `(global machine id, wall seconds)`.
    pub slowest_machine: Option<(u64, f64)>,
}

impl ShardRollup {
    fn new(shard: u32) -> Self {
        Self {
            shard,
            phases: [
                LatencySketch::new(),
                LatencySketch::new(),
                LatencySketch::new(),
                LatencySketch::new(),
            ],
            machine_wall: LatencySketch::new(),
            slowest_machine: None,
        }
    }
}

/// The per-shard rollup table plus fleet-wide merged views.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Rollup {
    shards: BTreeMap<u32, ShardRollup>,
}

impl Rollup {
    /// Per-shard rollups in shard order.
    pub fn shards(&self) -> impl Iterator<Item = &ShardRollup> {
        self.shards.values()
    }

    /// Whether no shard has contributed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The rollup of one shard, if it has contributed.
    #[must_use]
    pub fn shard(&self, shard: u32) -> Option<&ShardRollup> {
        self.shards.get(&shard)
    }

    fn entry(&mut self, shard: u32) -> &mut ShardRollup {
        self.shards
            .entry(shard)
            .or_insert_with(|| ShardRollup::new(shard))
    }

    /// Fleet-wide sketch of one phase: the merge of every shard's sketch.
    ///
    /// # Panics
    /// Panics if `phase >= 4`.
    #[must_use]
    pub fn fleet_phase(&self, phase: usize) -> LatencySketch {
        assert!(phase < PHASES.len(), "Rollup: phase index out of range");
        let mut fleet = LatencySketch::new();
        for s in self.shards.values() {
            fleet.merge(&s.phases[phase]);
        }
        fleet
    }

    /// Fleet-wide machine-wall sketch: the merge of every shard's sketch.
    #[must_use]
    pub fn fleet_machine(&self) -> LatencySketch {
        let mut fleet = LatencySketch::new();
        for s in self.shards.values() {
            fleet.merge(&s.machine_wall);
        }
        fleet
    }
}

/// Summarizes a sketch for the JSON documents: count + p50/p99/max/mean.
fn sketch_json(sketch: &LatencySketch) -> Json {
    if sketch.is_empty() {
        return Json::obj([("count", Json::Num(0.0))]);
    }
    #[allow(clippy::cast_precision_loss)]
    Json::obj([
        ("count", Json::Num(sketch.count() as f64)),
        ("mean_s", Json::Num(sketch.mean())),
        ("p50_s", Json::Num(sketch.p50())),
        ("p99_s", Json::Num(sketch.p99())),
        ("max_s", Json::Num(sketch.max())),
    ])
}

/// Collects per-shard rollup frames and root phase timings across rounds;
/// the attachable end of the profiled sharded drive.
///
/// A profiler is *sampled* when built with [`RoundProfiler::sampled`]: only
/// every `every`-th round (by round id) is profiled; the rest behave as if
/// the profiler were detached.
#[derive(Debug, Clone)]
pub struct RoundProfiler {
    every: u64,
    rollup: Rollup,
    series: [OnlineStats; 4],
    last_round: Option<(u64, [f64; 4])>,
    rounds_profiled: u64,
    prof_frames: u64,
    prof_bytes: u64,
}

impl Default for RoundProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl RoundProfiler {
    /// A profiler that profiles every round.
    #[must_use]
    pub fn new() -> Self {
        Self::sampled(1)
    }

    /// A profiler that profiles every `every`-th round (round id modulo).
    ///
    /// # Panics
    /// Panics if `every == 0`.
    #[must_use]
    pub fn sampled(every: u64) -> Self {
        assert!(every >= 1, "RoundProfiler: sampling period must be >= 1");
        Self {
            every,
            rollup: Rollup::default(),
            series: [OnlineStats::new(); 4],
            last_round: None,
            rounds_profiled: 0,
            prof_frames: 0,
            prof_bytes: 0,
        }
    }

    /// Whether round `round` should be profiled under the sampling period.
    #[must_use]
    pub fn should_profile(&self, round: u64) -> bool {
        round % self.every == 0
    }

    /// Accounts one profile frame. Deliberately separate from the
    /// protocol's `MessageStats`: profile frames are observability traffic
    /// and must not perturb the audited control-plane counts.
    pub fn note_frame(&mut self, bytes: usize) {
        self.prof_frames += 1;
        self.prof_bytes += bytes as u64;
    }

    /// `(frames, bytes)` of profile traffic accounted so far.
    #[must_use]
    pub fn frames(&self) -> (u64, u64) {
        (self.prof_frames, self.prof_bytes)
    }

    /// Ingests one shard's profile frame. `slowest_global` is the frame's
    /// `slowest` entry with the local index already mapped to a global
    /// machine id by the root.
    ///
    /// # Errors
    /// Propagates [`WireError`] for corrupt frames; the rollup is left
    /// unchanged.
    pub fn ingest_shard(
        &mut self,
        wire: &WireShardProfile,
        slowest_global: Option<(u64, f64)>,
    ) -> Result<(), WireError> {
        let sketch = LatencySketch::from_wire(&wire.machine_wall)?;
        let entry = self.rollup.entry(wire.shard);
        entry.machine_wall.merge(&sketch);
        if slowest_global.is_some() {
            entry.slowest_machine = slowest_global;
        }
        Ok(())
    }

    /// Records one phase's wall-time for one shard in the current round.
    ///
    /// # Panics
    /// Panics if `phase >= 4`.
    pub fn record_phase(&mut self, shard: u32, phase: usize, seconds: f64) {
        assert!(phase < PHASES.len(), "RoundProfiler: phase out of range");
        self.rollup.entry(shard).phases[phase].record(seconds);
    }

    /// Closes one profiled round: feeds the root's phase wall-times into
    /// the sentinel series and remembers them as the latest round.
    pub fn finish_round(&mut self, round: u64, phase_wall: [f64; 4]) {
        for (stats, secs) in self.series.iter_mut().zip(phase_wall) {
            stats.push(secs);
        }
        self.last_round = Some((round, phase_wall));
        self.rounds_profiled += 1;
    }

    /// The accumulated per-shard rollup.
    #[must_use]
    pub fn rollup(&self) -> &Rollup {
        &self.rollup
    }

    /// Root phase wall-time series across profiled rounds, in
    /// [`PHASES`] order — the regression sentinel's observations.
    #[must_use]
    pub fn series(&self) -> &[OnlineStats; 4] {
        &self.series
    }

    /// The most recent profiled round's `(round, phase wall seconds)`.
    #[must_use]
    pub fn last_round(&self) -> Option<(u64, [f64; 4])> {
        self.last_round
    }

    /// Number of rounds profiled so far.
    #[must_use]
    pub fn rounds_profiled(&self) -> u64 {
        self.rounds_profiled
    }

    /// The `/profile` document: sampling state, frame accounting, the
    /// latest round's phase breakdown, per-shard and fleet-wide sketch
    /// summaries.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn to_json(&self) -> Json {
        let last = match self.last_round {
            Some((round, walls)) => Json::obj([
                ("round", Json::Num(round as f64)),
                (
                    "phase_wall_s",
                    Json::obj(
                        PHASES
                            .iter()
                            .zip(walls)
                            .map(|(name, w)| (name.to_string(), Json::Num(w))),
                    ),
                ),
            ]),
            None => Json::Null,
        };
        let shards: Vec<Json> = self
            .rollup
            .shards()
            .map(|s| {
                Json::obj([
                    ("shard", Json::Num(f64::from(s.shard))),
                    (
                        "phases",
                        Json::obj(
                            PHASES
                                .iter()
                                .zip(&s.phases)
                                .map(|(name, sk)| (name.to_string(), sketch_json(sk))),
                        ),
                    ),
                    ("machine_wall", sketch_json(&s.machine_wall)),
                    (
                        "slowest_machine",
                        match s.slowest_machine {
                            Some((m, w)) => Json::obj([
                                ("machine", Json::Num(m as f64)),
                                ("wall_s", Json::Num(w)),
                            ]),
                            None => Json::Null,
                        },
                    ),
                ])
            })
            .collect();
        let fleet = Json::obj(
            PHASES
                .iter()
                .enumerate()
                .map(|(i, name)| (name.to_string(), sketch_json(&self.rollup.fleet_phase(i))))
                .chain(std::iter::once((
                    "machine_wall".to_string(),
                    sketch_json(&self.rollup.fleet_machine()),
                ))),
        );
        Json::obj([
            ("rounds_profiled", Json::Num(self.rounds_profiled as f64)),
            ("sampling_period", Json::Num(self.every as f64)),
            ("profile_frames", Json::Num(self.prof_frames as f64)),
            ("profile_bytes", Json::Num(self.prof_bytes as f64)),
            ("last_round", last),
            ("shards", Json::Arr(shards)),
            ("fleet", fleet),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_period_gates_rounds() {
        let always = RoundProfiler::new();
        assert!(always.should_profile(0) && always.should_profile(1));
        let every3 = RoundProfiler::sampled(3);
        assert!(every3.should_profile(0));
        assert!(!every3.should_profile(1));
        assert!(!every3.should_profile(2));
        assert!(every3.should_profile(3));
    }

    #[test]
    fn fleet_views_merge_per_shard_sketches_exactly() {
        let mut p = RoundProfiler::new();
        let a = LatencySketch::from_slice(&[1e-3, 2e-3, 3e-3]);
        let b = LatencySketch::from_slice(&[4e-3, 5e-3]);
        p.ingest_shard(
            &WireShardProfile {
                shard: 0,
                machines: 3,
                machine_wall: a.to_wire(),
                slowest: Some((2, 3e-3)),
            },
            Some((2, 3e-3)),
        )
        .unwrap();
        p.ingest_shard(
            &WireShardProfile {
                shard: 1,
                machines: 2,
                machine_wall: b.to_wire(),
                slowest: Some((1, 5e-3)),
            },
            Some((4, 5e-3)),
        )
        .unwrap();

        let mut whole = a;
        whole.merge(&b);
        let fleet = p.rollup().fleet_machine();
        assert_eq!(fleet, whole);
        assert_eq!(
            p.rollup().shard(1).unwrap().slowest_machine,
            Some((4, 5e-3))
        );
    }

    #[test]
    fn corrupt_shard_frame_is_rejected_without_mutation() {
        let mut p = RoundProfiler::new();
        let mut wire = LatencySketch::from_slice(&[1e-3]).to_wire();
        wire.m2 = -1.0;
        let err = p.ingest_shard(
            &WireShardProfile {
                shard: 0,
                machines: 1,
                machine_wall: wire,
                slowest: None,
            },
            None,
        );
        assert!(err.is_err());
        assert!(p.rollup().is_empty());
    }

    #[test]
    fn series_and_document_reflect_finished_rounds() {
        let mut p = RoundProfiler::new();
        p.record_phase(0, 0, 0.01);
        p.record_phase(0, 3, 0.02);
        p.finish_round(0, [0.01, 0.005, 0.002, 0.02]);
        p.finish_round(1, [0.012, 0.005, 0.002, 0.022]);
        assert_eq!(p.series()[0].count(), 2);
        assert_eq!(p.last_round(), Some((1, [0.012, 0.005, 0.002, 0.022])));

        let doc = p.to_json();
        assert_eq!(doc.get("rounds_profiled").and_then(Json::as_u64), Some(2));
        let text = doc.render();
        let back = Json::parse(&text).expect("document is real JSON");
        assert_eq!(back.get("sampling_period").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn frame_accounting_is_separate_state() {
        let mut p = RoundProfiler::new();
        p.note_frame(100);
        p.note_frame(50);
        assert_eq!(p.frames(), (2, 150));
    }
}
