//! Mergeable latency sketches: the unit of the cross-shard rollup.
//!
//! A [`LatencySketch`] summarizes a population of wall-clock durations with
//! two mergeable structures from `lb-stats`:
//!
//! * [`OnlineStats`] — exact count / mean / variance / extrema, merged with
//!   the Chan et al. parallel update, so the fleet-wide mean and max are
//!   exact regardless of how the population was partitioned;
//! * a log₁₀-domain [`Histogram`] with *fixed geometry* — every sketch in
//!   the workspace covers `[10^-7.5, 10^4.5)` seconds with 40 bins per
//!   decade, so any two sketches merge by bin addition and the merged
//!   quantiles are **identical** to the quantiles of a sketch built from
//!   the concatenated population (merge is exact; only the quantile *read*
//!   is approximate).
//!
//! The log domain buys a scale-free accuracy contract: a quantile read is
//! off by at most [`SKETCH_RTOL`] *relative* (two bin widths,
//! `10^0.05 - 1 ≈ 12%`) whether the population is microseconds or hours.
//! Reads are additionally clamped to the exact `[min, max]` tracked by the
//! stats side, so out-of-range mass (and the q→0/q→1 edges) degrade to the
//! exact extrema instead of the domain bounds.
//!
//! [`WireSketch`] is the serde-serializable frame payload: the raw Welford
//! state plus the raw bin counts. Decoding *validates* — NaN moments,
//! negative `m2`, mismatched geometry or count mismatches between the two
//! structures are rejected as corrupt rather than merged into the fleet
//! rollup.

use lb_stats::{Histogram, OnlineStats};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Lower edge of the sketch domain, in log₁₀ seconds (`10^-7.5 ≈ 32 ns`).
pub const SKETCH_LOG_LO: f64 = -7.5;
/// Exclusive upper edge of the sketch domain, in log₁₀ seconds
/// (`10^4.5 ≈ 8.8 hours`).
pub const SKETCH_LOG_HI: f64 = 4.5;
/// Bin count: 12 decades × 40 bins per decade.
pub const SKETCH_BINS: usize = 480;
/// Documented relative quantile tolerance of a sketch read: two log-domain
/// bin widths, `10^(2/40) - 1 ≈ 0.122`, rounded up. Populations whose
/// adjacent order statistics straddle a bin boundary can shift a read by
/// one extra bin, hence two widths rather than one.
pub const SKETCH_RTOL: f64 = 0.13;

/// Why a [`WireSketch`] was rejected on decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The Welford state was not a valid accumulator (NaN, negative `m2`,
    /// inverted extrema, or a phantom non-empty empty state).
    Stats,
    /// The histogram geometry differs from the workspace constant, or the
    /// bin counts overflow.
    Geometry,
    /// The two structures disagree about how many observations they hold.
    CountMismatch,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Stats => write!(f, "invalid Welford state in sketch frame"),
            WireError::Geometry => write!(f, "sketch frame histogram geometry mismatch"),
            WireError::CountMismatch => {
                write!(f, "sketch frame stats/histogram count mismatch")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A mergeable summary of a wall-clock duration population (seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySketch {
    stats: OnlineStats,
    hist: Histogram,
}

impl Default for LatencySketch {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencySketch {
    /// An empty sketch over the workspace-standard log domain.
    #[must_use]
    pub fn new() -> Self {
        Self {
            stats: OnlineStats::new(),
            hist: Histogram::new(SKETCH_LOG_LO, SKETCH_LOG_HI, SKETCH_BINS),
        }
    }

    /// Builds a sketch from a slice in one pass.
    #[must_use]
    pub fn from_slice(seconds: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in seconds {
            s.record(v);
        }
        s
    }

    /// Records one duration in seconds. Zero durations (below the clock's
    /// resolution) land in the histogram's underflow bin and read back as
    /// the exact minimum.
    ///
    /// # Panics
    /// Panics (in debug builds) on NaN or negative durations.
    pub fn record(&mut self, seconds: f64) {
        debug_assert!(
            seconds >= 0.0 && !seconds.is_nan(),
            "LatencySketch: duration must be a non-negative number, got {seconds}"
        );
        self.stats.push(seconds);
        // log10(0) = -inf falls below the domain and is counted as underflow.
        self.hist.record(seconds.log10());
    }

    /// Merges another sketch into this one. Exact: the result is identical
    /// to a sketch built from the concatenated populations.
    pub fn merge(&mut self, other: &Self) {
        self.stats.merge(&other.stats);
        self.hist.merge(&other.hist);
    }

    /// Number of recorded durations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Whether the sketch holds no observations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Exact mean duration (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Exact sum of durations (0 when empty).
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.stats.sum()
    }

    /// Exact minimum (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.stats.min()
    }

    /// Exact maximum (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.stats.max()
    }

    /// Approximate `q`-quantile in seconds, within [`SKETCH_RTOL`] relative
    /// of the population quantile, clamped to the exact `[min, max]`.
    ///
    /// # Panics
    /// Panics if the sketch is empty or `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.is_empty(), "LatencySketch: quantile of empty sketch");
        let log_q = self.hist.quantile(q);
        // The histogram answers underflow ranks with its lower domain edge;
        // those are sub-resolution durations, so read them as the exact min.
        if log_q <= self.hist.lo() {
            return self.stats.min();
        }
        10f64.powf(log_q).clamp(self.stats.min(), self.stats.max())
    }

    /// Median (approximate, see [`Self::quantile`]).
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.quantile(0.5)
    }

    /// 99th percentile (approximate, see [`Self::quantile`]).
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Serializes the sketch for the wire. Inverse of [`Self::from_wire`].
    #[must_use]
    pub fn to_wire(&self) -> WireSketch {
        let (count, mean, m2, min, max, sum) = self.stats.parts();
        WireSketch {
            count,
            mean,
            m2,
            min,
            max,
            sum,
            log_lo: self.hist.lo(),
            log_hi: self.hist.hi(),
            bins: self.hist.bins().to_vec(),
            underflow: self.hist.underflow(),
            overflow: self.hist.overflow(),
        }
    }

    /// Validates and rebuilds a sketch from a wire frame.
    ///
    /// # Errors
    /// Returns a [`WireError`] when the frame could not have been produced
    /// by [`Self::to_wire`] — corrupt moments, foreign geometry, or
    /// disagreeing counts.
    pub fn from_wire(wire: &WireSketch) -> Result<Self, WireError> {
        let stats =
            OnlineStats::from_parts(wire.count, wire.mean, wire.m2, wire.min, wire.max, wire.sum)
                .ok_or(WireError::Stats)?;
        if wire.log_lo != SKETCH_LOG_LO
            || wire.log_hi != SKETCH_LOG_HI
            || wire.bins.len() != SKETCH_BINS
        {
            return Err(WireError::Geometry);
        }
        let hist = Histogram::from_parts(
            wire.log_lo,
            wire.log_hi,
            wire.bins.clone(),
            wire.underflow,
            wire.overflow,
        )
        .ok_or(WireError::Geometry)?;
        if hist.count() != stats.count() {
            return Err(WireError::CountMismatch);
        }
        Ok(Self { stats, hist })
    }
}

/// The serde-serializable form of a [`LatencySketch`]: raw Welford state
/// plus raw bin counts, validated on decode by [`LatencySketch::from_wire`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireSketch {
    /// Observation count (must match the histogram mass).
    pub count: u64,
    /// Welford mean.
    pub mean: f64,
    /// Welford second central moment.
    pub m2: f64,
    /// Exact minimum.
    pub min: f64,
    /// Exact maximum.
    pub max: f64,
    /// Exact sum.
    pub sum: f64,
    /// Histogram domain lower edge, log₁₀ seconds ([`SKETCH_LOG_LO`]).
    pub log_lo: f64,
    /// Histogram domain upper edge, log₁₀ seconds ([`SKETCH_LOG_HI`]).
    pub log_hi: f64,
    /// Raw per-bin counts ([`SKETCH_BINS`] of them).
    pub bins: Vec<u64>,
    /// Mass below the domain (sub-nanosecond durations).
    pub underflow: u64,
    /// Mass at or above the domain.
    pub overflow: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_stats::{nearest_rank, Rng, Xoshiro256StarStar};

    fn log_uniform(rng: &mut Xoshiro256StarStar, lo: f64, hi: f64) -> f64 {
        let u = rng.next_f64();
        10f64.powf(lo + u * (hi - lo))
    }

    #[test]
    fn merge_is_exact_against_whole_population() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(42);
        let values: Vec<f64> = (0..1000)
            .map(|_| log_uniform(&mut rng, -6.0, 1.0))
            .collect();
        let whole = LatencySketch::from_slice(&values);
        let mut merged = LatencySketch::from_slice(&values[..313]);
        merged.merge(&LatencySketch::from_slice(&values[313..700]));
        merged.merge(&LatencySketch::from_slice(&values[700..]));
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.max(), whole.max());
        assert_eq!(merged.min(), whole.min());
        // The histogram side is bit-identical, so every quantile read agrees.
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), whole.quantile(q), "q = {q}");
        }
    }

    #[test]
    fn quantiles_track_exact_nearest_rank_within_tolerance() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let values: Vec<f64> = (0..5000)
            .map(|_| log_uniform(&mut rng, -5.0, 2.0))
            .collect();
        let sketch = LatencySketch::from_slice(&values);
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.01, 0.1, 0.5, 0.9, 0.99] {
            let exact = sorted[nearest_rank(q, sorted.len()) - 1];
            let approx = sketch.quantile(q);
            let rel = (approx - exact).abs() / exact;
            assert!(
                rel <= SKETCH_RTOL,
                "q = {q}: exact {exact}, sketch {approx}, rel {rel}"
            );
        }
    }

    #[test]
    fn extremes_read_back_exactly() {
        let sketch = LatencySketch::from_slice(&[3e-4, 1e-2, 0.5]);
        assert_eq!(sketch.quantile(0.0), 3e-4);
        assert_eq!(sketch.quantile(1.0), 0.5);
        assert_eq!(sketch.max(), 0.5);
        assert_eq!(sketch.mean(), (3e-4 + 1e-2 + 0.5) / 3.0);
    }

    #[test]
    fn zero_durations_underflow_and_clamp_to_min() {
        let sketch = LatencySketch::from_slice(&[0.0, 0.0, 1e-3]);
        assert_eq!(sketch.count(), 3);
        assert_eq!(sketch.min(), 0.0);
        assert_eq!(sketch.quantile(0.1), 0.0, "underflow mass reads as min");
    }

    #[test]
    fn wire_round_trip_is_identity() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let values: Vec<f64> = (0..200).map(|_| log_uniform(&mut rng, -4.0, 0.0)).collect();
        let sketch = LatencySketch::from_slice(&values);
        let back = LatencySketch::from_wire(&sketch.to_wire()).unwrap();
        assert_eq!(back, sketch);

        let empty = LatencySketch::new();
        let back = LatencySketch::from_wire(&empty.to_wire()).unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    fn corrupt_wire_frames_are_rejected() {
        let sketch = LatencySketch::from_slice(&[1.0, 2.0]);
        let good = sketch.to_wire();

        let mut bad = good.clone();
        bad.mean = f64::NAN;
        assert_eq!(LatencySketch::from_wire(&bad), Err(WireError::Stats));

        let mut bad = good.clone();
        bad.log_hi = 9.0;
        assert_eq!(LatencySketch::from_wire(&bad), Err(WireError::Geometry));

        let mut bad = good.clone();
        bad.bins.truncate(10);
        assert_eq!(LatencySketch::from_wire(&bad), Err(WireError::Geometry));

        let mut bad = good;
        bad.count += 1;
        bad.m2 = 0.1;
        assert_eq!(
            LatencySketch::from_wire(&bad),
            Err(WireError::CountMismatch)
        );
    }
}
