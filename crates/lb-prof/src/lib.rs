//! Round profiling for the load-balancing protocol: where does a round's
//! wall-time go, per shard and fleet-wide, and is it getting worse?
//!
//! Three layers, std-only, strictly observational — attaching the
//! profiler never changes allocations, payments, exclusions, or message
//! counts (the inertness differentials in `tests/prof.rs` enforce this
//! bit-for-bit across the deterministic, threaded, and sharded runtimes):
//!
//! * **Cross-shard rollup** ([`sketch`], [`rollup`]) — shard workers fold
//!   per-machine verification wall-times into mergeable
//!   [`LatencySketch`]es (exact-moment [`lb_stats::OnlineStats`] + a
//!   fixed-geometry log-domain [`lb_stats::Histogram`]) that travel to
//!   the coordinator as compact wire frames next to the `ShardSum`
//!   partials. The root merges them — histogram merge is exact bin
//!   addition, so fleet quantiles equal a whole-fleet recompute — and
//!   accumulates per-shard phase timings, without a single raw span
//!   leaving its shard.
//! * **Critical-path analyzer** ([`critical`]) — replays a recorded round
//!   trace and extracts the coordinator → phase → straggler-shard chain
//!   that bounded wall-time, with per-node self/blocked time, coverage,
//!   and a per-phase straggler ranking; structured as a
//!   [`RoundProfile`] (JSONL and text renderings).
//! * **Regression sentinel** ([`sentinel`]) — compares the live per-phase
//!   series against a labelled `BENCH_*.json` baseline using Student-t
//!   confidence intervals: flagged only when the CI lower bound clears
//!   the baseline p99 plus slack.
//!
//! [`publish`] pushes both documents onto the live exposition endpoint
//! (`/profile`, `/regressions`).

pub mod critical;
pub mod publish;
pub mod rollup;
pub mod sentinel;
pub mod sketch;

pub use critical::{
    analyze, from_jsonl, profile_events, to_jsonl, PathNode, ProfileError, RoundProfile, Straggler,
};
pub use publish::{publish_profile, publish_regressions};
pub use rollup::{Rollup, RoundProfiler, ShardRollup, WireShardProfile, PHASES};
pub use sentinel::{
    check, render, verdicts_json, Baseline, BaselineError, BaselineRow, SentinelConfig, Verdict,
};
pub use sketch::{
    LatencySketch, WireError, WireSketch, SKETCH_BINS, SKETCH_LOG_HI, SKETCH_LOG_LO, SKETCH_RTOL,
};
