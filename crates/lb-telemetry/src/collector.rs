//! The [`Collector`] trait and the free [`NoopCollector`].
//!
//! Instrumentation points accept `&dyn Collector` (usually through an
//! `Arc<dyn Collector>` so the threaded runtime can share one collector
//! across threads). Implementors provide three primitives — [`Collector::enabled`],
//! [`Collector::record`] and [`Collector::next_span_id`] — and inherit the
//! span/instant/counter/gauge/histogram convenience API, every method of
//! which returns immediately when the collector is disabled.

use crate::event::{EventKind, Field, SpanId, Subsystem, TelemetryEvent};
use std::borrow::Cow;
use std::sync::{Arc, OnceLock};

/// A sink for telemetry events.
///
/// All timestamps are caller-supplied seconds (see the crate docs for the
/// clock discipline). Implementations must be thread-safe: the threaded
/// runtime records from node threads and the coordinator concurrently.
pub trait Collector: Send + Sync {
    /// Whether events are being recorded. Hot paths check this before
    /// building field vectors; the default convenience methods already do.
    fn enabled(&self) -> bool;

    /// Records one event. Disabled collectors discard it.
    fn record(&self, event: TelemetryEvent);

    /// Allocates a fresh span id. Disabled collectors return
    /// [`SpanId::NULL`].
    fn next_span_id(&self) -> SpanId;

    /// Opens a top-level span; returns its id for the matching
    /// [`Collector::span_end`].
    fn span_start(
        &self,
        at: f64,
        name: &'static str,
        cat: Subsystem,
        fields: Vec<Field>,
    ) -> SpanId {
        self.span_start_in(at, name, cat, SpanId::NULL, fields)
    }

    /// Opens a span nested under `parent` (pass [`SpanId::NULL`] for a
    /// top-level span).
    fn span_start_in(
        &self,
        at: f64,
        name: &'static str,
        cat: Subsystem,
        parent: SpanId,
        fields: Vec<Field>,
    ) -> SpanId {
        if !self.enabled() {
            return SpanId::NULL;
        }
        let id = self.next_span_id();
        self.record(TelemetryEvent {
            at,
            name: Cow::Borrowed(name),
            cat,
            kind: EventKind::SpanStart {
                id,
                parent: if parent.is_null() { None } else { Some(parent) },
            },
            fields,
        });
        id
    }

    /// Closes a span. Null ids (from disabled collectors) are ignored.
    fn span_end(&self, at: f64, id: SpanId) {
        self.span_end_with(at, id, Vec::new());
    }

    /// Closes a span, attaching fields that only became known at the end
    /// (e.g. a simulator machine's final estimate).
    fn span_end_with(&self, at: f64, id: SpanId, fields: Vec<Field>) {
        if !self.enabled() || id.is_null() {
            return;
        }
        self.record(TelemetryEvent {
            at,
            name: Cow::Borrowed(""),
            cat: Subsystem::Coordinator,
            kind: EventKind::SpanEnd { id },
            fields,
        });
    }

    /// Records a point-in-time event.
    fn instant(&self, at: f64, name: &'static str, cat: Subsystem, fields: Vec<Field>) {
        if !self.enabled() {
            return;
        }
        self.record(TelemetryEvent {
            at,
            name: Cow::Borrowed(name),
            cat,
            kind: EventKind::Instant,
            fields,
        });
    }

    /// Adds `delta` to the named monotonic counter.
    fn counter(&self, at: f64, name: &'static str, cat: Subsystem, delta: u64) {
        if !self.enabled() {
            return;
        }
        self.record(TelemetryEvent {
            at,
            name: Cow::Borrowed(name),
            cat,
            kind: EventKind::Counter { delta },
            fields: Vec::new(),
        });
    }

    /// Sets the named gauge to `value`.
    fn gauge(&self, at: f64, name: &'static str, cat: Subsystem, value: f64) {
        if !self.enabled() {
            return;
        }
        self.record(TelemetryEvent {
            at,
            name: Cow::Borrowed(name),
            cat,
            kind: EventKind::Gauge { value },
            fields: Vec::new(),
        });
    }

    /// Records one sample of the named distribution.
    fn histogram(&self, at: f64, name: &'static str, cat: Subsystem, value: f64) {
        if !self.enabled() {
            return;
        }
        self.record(TelemetryEvent {
            at,
            name: Cow::Borrowed(name),
            cat,
            kind: EventKind::Histogram { value },
            fields: Vec::new(),
        });
    }
}

/// The do-nothing collector: every instrumented hot path costs one virtual
/// call returning `false`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopCollector;

impl Collector for NoopCollector {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: TelemetryEvent) {}

    fn next_span_id(&self) -> SpanId {
        SpanId::NULL
    }
}

/// A shared, lazily initialised `Arc<dyn Collector>` noop — the default
/// collector of every instrumented runtime, cloned without allocating.
#[must_use]
pub fn noop_collector() -> Arc<dyn Collector> {
    static NOOP: OnceLock<Arc<NoopCollector>> = OnceLock::new();
    NOOP.get_or_init(|| Arc::new(NoopCollector)).clone() as Arc<dyn Collector>
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_null() {
        let c = NoopCollector;
        assert!(!c.enabled());
        assert_eq!(c.next_span_id(), SpanId::NULL);
        // Convenience methods return without panicking and yield null ids.
        let id = c.span_start(0.0, "round", Subsystem::Coordinator, vec![]);
        assert!(id.is_null());
        c.span_end(1.0, id);
        c.instant(0.5, "x", Subsystem::Network, vec![]);
        c.counter(0.5, "n", Subsystem::Network, 3);
        c.gauge(0.5, "g", Subsystem::Sim, 1.0);
        c.histogram(0.5, "h", Subsystem::Chaos, 0.25);
    }

    #[test]
    fn shared_noop_is_cheap_to_clone() {
        let a = noop_collector();
        let b = noop_collector();
        assert!(!a.enabled());
        assert!(!b.enabled());
    }
}
