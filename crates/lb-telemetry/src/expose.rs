//! Live exposition: a minimal HTTP 1.0 endpoint for metrics and traces.
//!
//! [`Exposition`] is a cheaply clonable publish point: runtimes push
//! [`MetricsSnapshot`]s and recordings into it as rounds complete, and an
//! [`ExposeServer`] — a deliberately tiny single-threaded HTTP 1.0 server on
//! `std::net::TcpListener`, no external dependencies — serves whatever was
//! last published:
//!
//! * `GET /metrics` — Prometheus text format 0.0.4
//!   ([`MetricsSnapshot::to_prometheus`]), scrapeable by a stock Prometheus
//!   or by `curl`.
//! * `GET /trace` — the most recent recording as JSONL
//!   ([`crate::to_jsonl`]), re-parseable with [`crate::from_jsonl`] and
//!   consumed by the `lb-top` dashboard.
//!
//! The server is pull-based and stateless per request (`Connection: close`),
//! so it never back-pressures the protocol: publishing is a mutex-guarded
//! string swap, and a slow scraper only delays its own response. One request
//! is served per [`ExposeServer::serve_one`] call; callers own the accept
//! loop (a thread, a bounded `serve_requests`, or a test harness).

use crate::event::TelemetryEvent;
use crate::export::to_jsonl;
use crate::registry::MetricsSnapshot;
use parking_lot::Mutex;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// Upper bound on retained trace lines, so a long-running session exposes
/// its recent history instead of growing without bound.
const MAX_TRACE_LINES: usize = 10_000;

/// Upper bound on the request head we are willing to buffer.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

#[derive(Default)]
struct Published {
    metrics: String,
    trace: String,
    invariants: String,
    health: String,
    profile: String,
    regressions: String,
}

/// The publish point shared between a running protocol and its server.
///
/// Clones share state; publishing replaces the previously published
/// document atomically with respect to concurrent serves.
#[derive(Clone, Default)]
pub struct Exposition {
    inner: Arc<Mutex<Published>>,
}

impl std::fmt::Debug for Exposition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Exposition")
            .field("metrics_bytes", &inner.metrics.len())
            .field("trace_bytes", &inner.trace.len())
            .finish()
    }
}

impl Exposition {
    /// An empty publish point.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a metrics snapshot; `/metrics` serves it until replaced.
    pub fn publish_metrics(&self, snapshot: &MetricsSnapshot) {
        let text = snapshot.to_prometheus();
        self.inner.lock().metrics = text;
    }

    /// Publishes a recording; `/trace` serves it as JSONL until replaced.
    /// Only the most recent [`MAX_TRACE_LINES`] events are retained.
    pub fn publish_trace(&self, events: &[TelemetryEvent]) {
        let tail = if events.len() > MAX_TRACE_LINES {
            &events[events.len() - MAX_TRACE_LINES..]
        } else {
            events
        };
        let text = to_jsonl(tail);
        self.inner.lock().trace = text;
    }

    /// Publishes the invariant-monitor document (JSON, rendered by the
    /// caller — typically `lb-audit`); `/invariants` serves it until
    /// replaced.
    pub fn publish_invariants(&self, json: impl Into<String>) {
        self.inner.lock().invariants = json.into();
    }

    /// Publishes the verification-health document (JSON); `/health` serves
    /// it until replaced.
    pub fn publish_health(&self, json: impl Into<String>) {
        self.inner.lock().health = json.into();
    }

    /// Publishes the round-profile document (JSON, rendered by the caller
    /// — typically `lb-prof`); `/profile` serves it until replaced.
    pub fn publish_profile(&self, json: impl Into<String>) {
        self.inner.lock().profile = json.into();
    }

    /// Publishes the regression-sentinel document (JSON); `/regressions`
    /// serves it until replaced.
    pub fn publish_regressions(&self, json: impl Into<String>) {
        self.inner.lock().regressions = json.into();
    }

    /// The currently published Prometheus text.
    #[must_use]
    pub fn metrics_text(&self) -> String {
        self.inner.lock().metrics.clone()
    }

    /// The currently published trace JSONL.
    #[must_use]
    pub fn trace_text(&self) -> String {
        self.inner.lock().trace.clone()
    }

    /// The currently published invariant document (`{}` until one is
    /// published, so `/invariants` is always valid JSON).
    #[must_use]
    pub fn invariants_text(&self) -> String {
        let inner = self.inner.lock();
        if inner.invariants.is_empty() {
            "{}\n".to_owned()
        } else {
            inner.invariants.clone()
        }
    }

    /// The currently published health document (`{}` until one is
    /// published, so `/health` is always valid JSON).
    #[must_use]
    pub fn health_text(&self) -> String {
        let inner = self.inner.lock();
        if inner.health.is_empty() {
            "{}\n".to_owned()
        } else {
            inner.health.clone()
        }
    }

    /// The currently published round-profile document (`{}` until one is
    /// published, so `/profile` is always valid JSON).
    #[must_use]
    pub fn profile_text(&self) -> String {
        let inner = self.inner.lock();
        if inner.profile.is_empty() {
            "{}\n".to_owned()
        } else {
            inner.profile.clone()
        }
    }

    /// The currently published regression document (`{}` until one is
    /// published, so `/regressions` is always valid JSON).
    #[must_use]
    pub fn regressions_text(&self) -> String {
        let inner = self.inner.lock();
        if inner.regressions.is_empty() {
            "{}\n".to_owned()
        } else {
            inner.regressions.clone()
        }
    }
}

/// A single-threaded HTTP 1.0 server over an [`Exposition`].
#[derive(Debug)]
pub struct ExposeServer {
    listener: TcpListener,
    share: Exposition,
}

impl ExposeServer {
    /// Binds a listener (use port 0 for an OS-assigned port) serving
    /// `share`.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, share: Exposition) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            share,
        })
    }

    /// The bound address — needed when binding port 0.
    ///
    /// # Errors
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and serves exactly one request (blocking).
    ///
    /// Malformed requests are answered with `400`/`404` and reported as
    /// `Ok` — a hostile client is the client's problem, not the server's.
    ///
    /// # Errors
    /// Propagates accept/IO failures on the listener itself.
    pub fn serve_one(&self) -> io::Result<()> {
        let (mut stream, _) = self.listener.accept()?;
        // A stalled client must not wedge the (single-threaded) server.
        stream.set_read_timeout(Some(Duration::from_secs(2)))?;
        stream.set_write_timeout(Some(Duration::from_secs(2)))?;
        let _ = Self::handle(&mut stream, &self.share);
        Ok(())
    }

    /// Serves exactly `requests` requests, then returns.
    ///
    /// # Errors
    /// Propagates the first accept/IO failure.
    pub fn serve_requests(&self, requests: usize) -> io::Result<()> {
        for _ in 0..requests {
            self.serve_one()?;
        }
        Ok(())
    }

    fn handle(stream: &mut TcpStream, share: &Exposition) -> io::Result<()> {
        let request = Self::read_request_line(stream)?;
        let mut parts = request.split_whitespace();
        let (method, path) = match (parts.next(), parts.next()) {
            (Some(m), Some(p)) => (m, p),
            _ => return Self::respond(stream, 400, "text/plain", "bad request\n"),
        };
        if method != "GET" {
            return Self::respond(stream, 405, "text/plain", "method not allowed\n");
        }
        match path {
            "/metrics" => {
                let body = share.metrics_text();
                Self::respond(
                    stream,
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    &body,
                )
            }
            "/trace" => {
                let body = share.trace_text();
                Self::respond(stream, 200, "application/x-ndjson; charset=utf-8", &body)
            }
            "/invariants" => {
                let body = share.invariants_text();
                Self::respond(stream, 200, "application/json; charset=utf-8", &body)
            }
            "/health" => {
                let body = share.health_text();
                Self::respond(stream, 200, "application/json; charset=utf-8", &body)
            }
            "/profile" => {
                let body = share.profile_text();
                Self::respond(stream, 200, "application/json; charset=utf-8", &body)
            }
            "/regressions" => {
                let body = share.regressions_text();
                Self::respond(stream, 200, "application/json; charset=utf-8", &body)
            }
            _ => {
                // Echo the path so a misconfigured scraper's logs say what it
                // actually asked for. Capped: the request line is bounded, but
                // the 404 body stays short regardless.
                let shown: String = path.chars().take(256).collect();
                let body = format!("not found: {shown}\n");
                Self::respond(stream, 404, "text/plain", &body)
            }
        }
    }

    /// Reads until the first CRLF (the request line) or a hard cap.
    fn read_request_line(stream: &mut TcpStream) -> io::Result<String> {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 512];
        loop {
            if buf.windows(2).any(|w| w == b"\r\n") || buf.contains(&b'\n') {
                break;
            }
            if buf.len() >= MAX_REQUEST_BYTES {
                break;
            }
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                break;
            }
            buf.extend_from_slice(&chunk[..n]);
        }
        let line = buf.split(|&b| b == b'\n').next().unwrap_or(&[]);
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        Ok(String::from_utf8_lossy(line).into_owned())
    }

    fn respond(
        stream: &mut TcpStream,
        status: u16,
        content_type: &str,
        body: &str,
    ) -> io::Result<()> {
        let reason = match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            _ => "Error",
        };
        let head = format!(
            "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;
    use crate::event::Subsystem;
    use crate::registry::MetricsRegistry;
    use crate::ring::RingCollector;

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response
    }

    fn sample_share() -> Exposition {
        let ring = RingCollector::new(64);
        let round = ring.span_start(0.0, "round", Subsystem::Coordinator, vec![]);
        ring.counter(0.1, "net.messages", Subsystem::Network, 5);
        ring.histogram(0.2, "chaos.backoff", Subsystem::Chaos, 0.04);
        ring.span_end(0.5, round);

        let mut reg = MetricsRegistry::new();
        let events = ring.snapshot();
        reg.ingest(&events);
        let share = Exposition::new();
        share.publish_metrics(&reg.snapshot());
        share.publish_trace(&events);
        share
    }

    #[test]
    fn serves_metrics_and_trace_over_tcp() {
        let share = sample_share();
        let server = ExposeServer::bind("127.0.0.1:0", share).expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = std::thread::spawn(move || server.serve_requests(8));

        let metrics = http_get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.0 200 OK\r\n"), "{metrics}");
        assert!(metrics.contains("Content-Type: text/plain; version=0.0.4"));
        assert!(metrics.contains("net_messages_total 5"));
        assert!(metrics.contains("span_round_seconds_count 1"));

        let trace = http_get(addr, "/trace");
        assert!(trace.starts_with("HTTP/1.0 200 OK\r\n"));
        let body = trace.split("\r\n\r\n").nth(1).expect("body");
        let events = crate::export::from_jsonl(body).expect("reparse");
        assert_eq!(events.len(), 4);
        let spans = crate::replay::replay_spans(&events).expect("replay");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "round");

        // Verification documents default to `{}` before anything publishes.
        let invariants = http_get(addr, "/invariants");
        assert!(
            invariants.starts_with("HTTP/1.0 200 OK\r\n"),
            "{invariants}"
        );
        assert!(invariants.contains("Content-Type: application/json"));
        assert!(invariants.ends_with("{}\n"), "{invariants}");
        let health = http_get(addr, "/health");
        assert!(health.starts_with("HTTP/1.0 200 OK\r\n"), "{health}");
        assert!(health.ends_with("{}\n"), "{health}");
        let profile = http_get(addr, "/profile");
        assert!(profile.starts_with("HTTP/1.0 200 OK\r\n"), "{profile}");
        assert!(profile.ends_with("{}\n"), "{profile}");
        let regressions = http_get(addr, "/regressions");
        assert!(
            regressions.starts_with("HTTP/1.0 200 OK\r\n"),
            "{regressions}"
        );
        assert!(regressions.ends_with("{}\n"), "{regressions}");

        let missing = http_get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"));
        assert!(missing.contains("not found: /nope"), "{missing}");
        let bad = {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.write_all(b"\r\n\r\n").expect("send");
            let mut response = String::new();
            stream.read_to_string(&mut response).expect("read");
            response
        };
        assert!(bad.starts_with("HTTP/1.0 400"), "{bad}");

        // Every response path frames the body: correct Content-Length and an
        // explicit Connection: close.
        for response in [
            &metrics,
            &trace,
            &invariants,
            &health,
            &profile,
            &regressions,
            &missing,
            &bad,
        ] {
            assert!(response.contains("Connection: close\r\n"), "{response}");
            let (head, body) = response.split_once("\r\n\r\n").expect("head/body");
            let declared: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .expect("content-length")
                .parse()
                .expect("numeric");
            assert_eq!(declared, body.len(), "{response}");
        }

        handle.join().expect("server thread").expect("serve");
    }

    #[test]
    fn publishing_replaces_previous_documents() {
        let share = Exposition::new();
        assert!(share.metrics_text().is_empty());
        let mut reg = MetricsRegistry::new();
        reg.add("rounds", 1);
        share.publish_metrics(&reg.snapshot());
        assert!(share.metrics_text().contains("rounds_total 1"));
        reg.add("rounds", 1);
        share.publish_metrics(&reg.snapshot());
        assert!(share.metrics_text().contains("rounds_total 2"));

        assert_eq!(share.invariants_text(), "{}\n");
        share.publish_invariants("{\"ok\":true}\n");
        assert_eq!(share.invariants_text(), "{\"ok\":true}\n");
        assert_eq!(share.health_text(), "{}\n");
        share.publish_health("{\"ledger_head\":\"00ff\"}\n");
        assert_eq!(share.health_text(), "{\"ledger_head\":\"00ff\"}\n");
        assert_eq!(share.profile_text(), "{}\n");
        share.publish_profile("{\"rounds_profiled\":4}\n");
        assert_eq!(share.profile_text(), "{\"rounds_profiled\":4}\n");
        assert_eq!(share.regressions_text(), "{}\n");
        share.publish_regressions("{\"regressed\":false}\n");
        assert_eq!(share.regressions_text(), "{\"regressed\":false}\n");
    }

    #[test]
    fn trace_retention_is_bounded() {
        let ring = RingCollector::new(16);
        ring.counter(0.0, "n", Subsystem::Network, 1);
        let one = ring.snapshot();
        let many: Vec<_> = (0..MAX_TRACE_LINES + 50).map(|_| one[0].clone()).collect();
        let share = Exposition::new();
        share.publish_trace(&many);
        assert_eq!(share.trace_text().lines().count(), MAX_TRACE_LINES);
    }
}
