//! Plain-text timeline renderer for recordings.
//!
//! [`render_timeline`] turns an event list into a human-readable,
//! indentation-nested transcript — the terminal-friendly counterpart of the
//! Chrome trace exporter — followed by a summary of span durations, counter
//! totals and instant counts.

use crate::event::{EventKind, Field, SpanId, TelemetryEvent};
use crate::replay::replay_spans;
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn fields_suffix(fields: &[Field]) -> String {
    if fields.is_empty() {
        return String::new();
    }
    let mut out = String::from(" {");
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}={}", f.key, f.value);
    }
    out.push('}');
    out
}

/// Renders a recording as an indented plain-text timeline plus a summary.
///
/// The timeline tolerates structurally broken recordings (it simply prints
/// what happened, flagging unmatched span ends); the per-span duration
/// summary is only included when the recording replays cleanly.
#[must_use]
pub fn render_timeline(events: &[TelemetryEvent]) -> String {
    let mut out = String::new();
    let mut open: BTreeMap<SpanId, (String, f64, usize)> = BTreeMap::new();
    let mut depth = 0usize;

    for event in events {
        let indent = "  ".repeat(depth + 1);
        match &event.kind {
            EventKind::SpanStart { id, .. } => {
                let _ = writeln!(
                    out,
                    "[{:>11.6}] {}> {} ({}){}",
                    event.at,
                    "  ".repeat(depth),
                    event.name,
                    event.cat,
                    fields_suffix(&event.fields)
                );
                open.insert(*id, (event.name.clone().into_owned(), event.at, depth));
                depth += 1;
            }
            EventKind::SpanEnd { id } => match open.remove(id) {
                Some((name, start, d)) => {
                    depth = depth.saturating_sub(1);
                    let _ = writeln!(
                        out,
                        "[{:>11.6}] {}< {}  dur={:.6}s{}",
                        event.at,
                        "  ".repeat(d),
                        name,
                        event.at - start,
                        fields_suffix(&event.fields)
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "[{:>11.6}] {indent}! span end for unknown id {}",
                        event.at, id.0
                    );
                }
            },
            EventKind::Instant => {
                let _ = writeln!(
                    out,
                    "[{:>11.6}] {indent}. {} ({}){}",
                    event.at,
                    event.name,
                    event.cat,
                    fields_suffix(&event.fields)
                );
            }
            EventKind::Counter { delta } => {
                let _ = writeln!(
                    out,
                    "[{:>11.6}] {indent}+ {} +={delta}",
                    event.at, event.name
                );
            }
            EventKind::Gauge { value } => {
                let _ = writeln!(
                    out,
                    "[{:>11.6}] {indent}= {} = {value:.6}",
                    event.at, event.name
                );
            }
            EventKind::Histogram { value } => {
                let _ = writeln!(
                    out,
                    "[{:>11.6}] {indent}~ {} sample {value:.6}",
                    event.at, event.name
                );
            }
        }
    }

    // ---- summary ----------------------------------------------------
    let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
    let mut instants: BTreeMap<&str, u64> = BTreeMap::new();
    for event in events {
        match &event.kind {
            EventKind::Counter { delta } => {
                let slot = counters.entry(event.name.as_ref()).or_insert(0);
                *slot = slot.saturating_add(*delta);
            }
            EventKind::Instant => {
                *instants.entry(event.name.as_ref()).or_insert(0) += 1;
            }
            _ => {}
        }
    }

    let _ = writeln!(out, "---- summary ({} events) ----", events.len());
    if let Ok(spans) = replay_spans(events) {
        let mut durations: BTreeMap<&str, (u64, f64)> = BTreeMap::new();
        for span in &spans {
            let slot = durations.entry(span.name.as_str()).or_insert((0, 0.0));
            slot.0 += 1;
            slot.1 += span.duration();
        }
        for (name, (count, total)) in &durations {
            let _ = writeln!(
                out,
                "span     {name}: n={count} total={total:.6}s mean={:.6}s",
                total / *count as f64
            );
        }
    } else {
        out.push_str("span     (recording does not replay cleanly; durations omitted)\n");
    }
    for (name, total) in &counters {
        let _ = writeln!(out, "counter  {name}: {total}");
    }
    for (name, count) in &instants {
        let _ = writeln!(out, "instant  {name}: x{count}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;
    use crate::event::Subsystem;
    use crate::ring::RingCollector;

    #[test]
    fn timeline_nests_and_summarises() {
        let ring = RingCollector::new(64);
        let round = ring.span_start(
            0.0,
            "round",
            Subsystem::Coordinator,
            vec![Field::u64("round", 1)],
        );
        let collect = ring.span_start_in(
            0.0,
            "phase.collect_bids",
            Subsystem::Coordinator,
            round,
            vec![],
        );
        ring.instant(
            0.1,
            "anomaly",
            Subsystem::Coordinator,
            vec![Field::str("kind", "late_bid")],
        );
        ring.counter(0.1, "net.messages", Subsystem::Network, 4);
        ring.span_end(0.5, collect);
        ring.span_end(0.6, round);

        let text = render_timeline(&ring.snapshot());
        assert!(text.contains("> round (coordinator) {round=1}"));
        assert!(text.contains("  > phase.collect_bids"), "{text}");
        assert!(text.contains(". anomaly (coordinator) {kind=late_bid}"));
        assert!(text.contains("dur=0.500000s"));
        assert!(text.contains("counter  net.messages: 4"));
        assert!(text.contains("instant  anomaly: x1"));
        assert!(text.contains("span     round: n=1 total=0.600000s"));
    }

    #[test]
    fn broken_recordings_still_render() {
        let ring = RingCollector::new(8);
        ring.span_end(0.5, SpanId(9));
        let _ = ring.span_start(1.0, "round", Subsystem::Coordinator, vec![]);
        let text = render_timeline(&ring.snapshot());
        assert!(text.contains("! span end for unknown id 9"));
        assert!(text.contains("does not replay cleanly"));
    }
}
