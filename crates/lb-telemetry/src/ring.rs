//! [`RingCollector`]: a bounded in-memory recorder.
//!
//! Events are appended to a fixed-capacity ring buffer guarded by a
//! `parking_lot::Mutex` (uncontended lock/unlock is a couple of atomic
//! operations — "lock-free-ish" for the single-digit-nanosecond budget of an
//! instrumentation point). When the ring is full the *oldest* event is
//! overwritten and counted, so a long chaotic session keeps its most recent
//! history instead of aborting or reallocating.

use crate::collector::Collector;
use crate::event::{SpanId, TelemetryEvent};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default event capacity: enough for several heavy chaos rounds.
pub const DEFAULT_CAPACITY: usize = 16_384;

struct RingInner {
    buf: VecDeque<TelemetryEvent>,
    overwritten: u64,
}

/// A thread-safe, fixed-capacity event recorder.
pub struct RingCollector {
    capacity: usize,
    next_id: AtomicU64,
    inner: Mutex<RingInner>,
}

impl std::fmt::Debug for RingCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("RingCollector")
            .field("capacity", &self.capacity)
            .field("len", &inner.buf.len())
            .field("overwritten", &inner.overwritten)
            .finish()
    }
}

impl Default for RingCollector {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

impl RingCollector {
    /// Creates a recorder holding at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RingCollector: capacity must be positive");
        Self {
            capacity,
            next_id: AtomicU64::new(1),
            inner: Mutex::new(RingInner {
                buf: VecDeque::with_capacity(capacity),
                overwritten: 0,
            }),
        }
    }

    /// Maximum number of events retained.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().buf.len()
    }

    /// Whether no events have been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.lock().buf.is_empty()
    }

    /// Number of old events overwritten because the ring was full.
    #[must_use]
    pub fn overwritten(&self) -> u64 {
        self.inner.lock().overwritten
    }

    /// Copies the current contents, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TelemetryEvent> {
        self.inner.lock().buf.iter().cloned().collect()
    }

    /// Drains the recorder, returning everything recorded so far (oldest
    /// first) and resetting the overwrite counter.
    #[must_use]
    pub fn take(&self) -> Vec<TelemetryEvent> {
        let mut inner = self.inner.lock();
        inner.overwritten = 0;
        inner.buf.drain(..).collect()
    }
}

impl Collector for RingCollector {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: TelemetryEvent) {
        let mut inner = self.inner.lock();
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.overwritten = inner.overwritten.saturating_add(1);
        }
        inner.buf.push_back(event);
    }

    fn next_span_id(&self) -> SpanId {
        SpanId(self.next_id.fetch_add(1, Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Subsystem;

    #[test]
    fn records_in_order_and_allocates_distinct_ids() {
        let ring = RingCollector::new(8);
        let a = ring.span_start(0.0, "round", Subsystem::Coordinator, vec![]);
        let b = ring.span_start_in(0.1, "phase.collect_bids", Subsystem::Coordinator, a, vec![]);
        ring.span_end(0.4, b);
        ring.span_end(0.5, a);
        assert_ne!(a, b);
        assert!(!a.is_null() && !b.is_null());
        let events = ring.snapshot();
        assert_eq!(events.len(), 4);
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn full_ring_overwrites_oldest() {
        let ring = RingCollector::new(3);
        for i in 0..5 {
            ring.instant(f64::from(i), "tick", Subsystem::Network, vec![]);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.overwritten(), 2);
        let events = ring.snapshot();
        assert_eq!(events[0].at, 2.0, "oldest surviving event is tick #2");
    }

    #[test]
    fn take_drains_and_resets() {
        let ring = RingCollector::new(2);
        ring.instant(0.0, "a", Subsystem::Network, vec![]);
        ring.instant(1.0, "b", Subsystem::Network, vec![]);
        ring.instant(2.0, "c", Subsystem::Network, vec![]);
        assert_eq!(ring.overwritten(), 1);
        let drained = ring.take();
        assert_eq!(drained.len(), 2);
        assert!(ring.is_empty());
        assert_eq!(ring.overwritten(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = RingCollector::new(0);
    }
}
