//! Head-based trace sampling and per-collector overhead accounting.
//!
//! Sampling decisions are made **once, at the head of a round**, and are a
//! pure function of `(seed, round)` — never of a wall clock or a global RNG —
//! so a chaos replay of the same seed samples exactly the same rounds and
//! reproduces identical traces. The decision is then carried to every
//! participant in the `sampled` flag of the wire
//! [`TraceContext`](crate::context::TraceContext).
//!
//! [`MeteredCollector`] wraps any collector and counts the events and span
//! ids that actually flow through it, giving each collector an explicit
//! overhead account (events recorded ≈ allocations + ring traffic paid).

use crate::collector::Collector;
use crate::event::{SpanId, TelemetryEvent};
use lb_stats::derive_seed;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Salt so the sampling hash is independent of the trace-id derivation.
const SAMPLE_SALT: u64 = 0x7361_6D70_6C65_7221; // "sampler!"

/// A deterministic head-based sampling policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sampler {
    /// Sample every round.
    Always,
    /// Sample nothing.
    Never,
    /// Sample each round independently with this probability, decided by a
    /// hash of `(seed, round)`. Values ≤ 0 behave like [`Sampler::Never`],
    /// values ≥ 1 like [`Sampler::Always`].
    Ratio(f64),
    /// Sample every `n`-th round (rounds `0, n, 2n, …`). `PerRound(0)`
    /// samples nothing.
    PerRound(u64),
}

impl Sampler {
    /// Whether the round identified by `(seed, round)` is sampled.
    ///
    /// Pure and deterministic: the same inputs always give the same answer,
    /// on every machine, in every replay.
    #[must_use]
    pub fn admits(&self, seed: u64, round: u64) -> bool {
        match *self {
            Sampler::Always => true,
            Sampler::Never => false,
            Sampler::Ratio(r) => {
                if !(r > 0.0) {
                    return false;
                }
                if r >= 1.0 {
                    return true;
                }
                // 53 uniform bits → [0, 1); compare against the ratio.
                let h = derive_seed(seed ^ SAMPLE_SALT, round);
                #[allow(clippy::cast_precision_loss)]
                let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                u < r
            }
            Sampler::PerRound(n) => n != 0 && round % n == 0,
        }
    }
}

/// A collector wrapper that meters what flows through it.
///
/// Forwards everything to the inner collector while counting recorded
/// events and allocated span ids, so the overhead a given instrumentation
/// configuration pays is observable rather than guessed at. Disabled inner
/// collectors stay free: the convenience methods short-circuit on
/// [`Collector::enabled`] before ever reaching [`Collector::record`].
pub struct MeteredCollector {
    inner: Arc<dyn Collector>,
    events: AtomicU64,
    spans: AtomicU64,
}

impl std::fmt::Debug for MeteredCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeteredCollector")
            .field("events", &self.events_recorded())
            .field("spans", &self.spans_started())
            .finish()
    }
}

impl MeteredCollector {
    /// Wraps `inner`, metering everything recorded through the wrapper.
    #[must_use]
    pub fn new(inner: Arc<dyn Collector>) -> Self {
        Self {
            inner,
            events: AtomicU64::new(0),
            spans: AtomicU64::new(0),
        }
    }

    /// Events forwarded to the inner collector so far.
    #[must_use]
    pub fn events_recorded(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Span ids allocated through this wrapper so far.
    #[must_use]
    pub fn spans_started(&self) -> u64 {
        self.spans.load(Ordering::Relaxed)
    }
}

impl Collector for MeteredCollector {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn record(&self, event: TelemetryEvent) {
        self.events.fetch_add(1, Ordering::Relaxed);
        self.inner.record(event);
    }

    fn next_span_id(&self) -> SpanId {
        self.spans.fetch_add(1, Ordering::Relaxed);
        self.inner.next_span_id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{noop_collector, NoopCollector};
    use crate::event::Subsystem;
    use crate::ring::RingCollector;

    #[test]
    fn always_and_never_are_constant() {
        for round in 0..32 {
            assert!(Sampler::Always.admits(7, round));
            assert!(!Sampler::Never.admits(7, round));
        }
    }

    #[test]
    fn ratio_is_deterministic_and_roughly_calibrated() {
        let s = Sampler::Ratio(0.25);
        let first: Vec<bool> = (0..4000).map(|r| s.admits(99, r)).collect();
        let second: Vec<bool> = (0..4000).map(|r| s.admits(99, r)).collect();
        assert_eq!(first, second, "sampling must be a pure function");
        let hits = first.iter().filter(|b| **b).count();
        assert!(
            (800..=1200).contains(&hits),
            "0.25 ratio admitted {hits}/4000"
        );
        // Different seeds make independent decisions.
        let other_hits = (0..4000).filter(|&r| s.admits(100, r)).count();
        assert_ne!(hits, 0);
        assert!(other_hits > 0);
    }

    #[test]
    fn ratio_extremes_clamp() {
        assert!(!Sampler::Ratio(0.0).admits(1, 1));
        assert!(!Sampler::Ratio(-3.0).admits(1, 1));
        assert!(!Sampler::Ratio(f64::NAN).admits(1, 1));
        assert!(Sampler::Ratio(1.0).admits(1, 1));
        assert!(Sampler::Ratio(7.5).admits(1, 1));
    }

    #[test]
    fn per_round_samples_multiples() {
        let s = Sampler::PerRound(4);
        let admitted: Vec<u64> = (0..13).filter(|&r| s.admits(3, r)).collect();
        assert_eq!(admitted, vec![0, 4, 8, 12]);
        assert!(!Sampler::PerRound(0).admits(3, 0), "PerRound(0) is Never");
    }

    #[test]
    fn metered_collector_counts_what_flows_through() {
        let ring = Arc::new(RingCollector::new(32));
        let metered = MeteredCollector::new(ring.clone());
        let span = metered.span_start(0.0, "round", Subsystem::Coordinator, vec![]);
        metered.instant(0.1, "tick", Subsystem::Network, vec![]);
        metered.span_end(0.2, span);
        assert_eq!(metered.events_recorded(), 3);
        assert_eq!(metered.spans_started(), 1);
        assert_eq!(ring.len(), 3, "events reach the inner collector");
    }

    #[test]
    fn metered_noop_stays_free() {
        let metered = MeteredCollector::new(noop_collector());
        assert!(!metered.enabled());
        let id = metered.span_start(0.0, "round", Subsystem::Coordinator, vec![]);
        assert!(id.is_null());
        metered.instant(0.1, "tick", Subsystem::Network, vec![]);
        assert_eq!(
            metered.events_recorded(),
            0,
            "disabled paths record nothing"
        );
        assert_eq!(metered.spans_started(), 0);
        let _ = NoopCollector; // keep the import honest
    }
}
