//! Structured telemetry for the lbmv workspace — std-only, zero external
//! service dependencies.
//!
//! The mechanism's guarantees (Theorems 3.1/3.2, the `O(n)`-message protocol
//! bound) and the chaos runtime's behaviour were previously only visible
//! post-hoc through ad-hoc report structs. This crate is the instrumentation
//! plane that makes a session *watchable*: what phase the coordinator is in,
//! what every frame's fate was, when a bid was retransmitted, when a machine
//! was quarantined — all recorded as typed events on a caller-injected clock
//! so recordings are deterministic and replayable.
//!
//! * [`event`] — the typed event vocabulary: spans, instants, counters,
//!   gauges, histogram samples, with structured key/value fields.
//! * [`collector`] — the [`Collector`] trait every instrumentation point
//!   accepts, and the free [`NoopCollector`] that makes instrumented hot
//!   paths cost (almost) nothing when telemetry is off.
//! * [`ring`] — [`RingCollector`]: a fixed-capacity ring buffer behind a
//!   `parking_lot` mutex recording every event in order.
//! * [`registry`] — [`MetricsRegistry`]: named counters, gauges and
//!   histogram summaries built on `lb-stats` online/quantile types; can
//!   ingest a recording to derive per-phase latency, per-endpoint message
//!   counts and anomaly rates.
//! * [`replay`] — validates the span structure of a recording (every end
//!   matches a start, children close before parents) and extracts the
//!   completed spans.
//! * [`json`] — a minimal self-contained JSON emitter/parser (the build has
//!   no `serde_json`), used by the exporters and their round-trip tests.
//! * [`export`] — JSONL event logs (machine-greppable, re-parseable) and
//!   Chrome `trace_event` files loadable in `chrome://tracing` / Perfetto.
//! * [`timeline`] — a plain-text round-timeline/summary renderer for
//!   terminals and examples.
//! * [`context`] — the wire-propagated [`TraceContext`] (128-bit trace id,
//!   parent span id, sampled flag) and its fixed-size backward-compatible
//!   frame trailer, so one trace stitches across coordinator and nodes.
//! * [`sampler`] — deterministic head-based sampling
//!   (always/never/ratio/per-round as a pure function of the round seed)
//!   and the [`MeteredCollector`] overhead accountant.
//! * [`expose`] — a std-only HTTP 1.0 exposition server: Prometheus
//!   text-format `/metrics` and recent-recording `/trace` JSONL.
//!
//! # Clock discipline
//!
//! Every API takes the timestamp explicitly (`at`, in seconds). The caller
//! owns the clock: the deterministic runtimes pass the simulated network
//! clock, the threaded runtime passes a monotonic `Instant` offset, and the
//! simulator passes its own sim time. Telemetry never reads a wall clock by
//! itself, so a recording is a pure function of the run that produced it.
//!
//! # Overhead
//!
//! All convenience methods check [`Collector::enabled`] before building an
//! event, so call sites may construct field vectors inside an
//! `if collector.enabled()` guard (or rely on the default methods, which
//! return early). With [`NoopCollector`] the cost per instrumentation point
//! is one virtual call returning a constant.

pub mod collector;
pub mod context;
pub mod event;
pub mod export;
pub mod expose;
pub mod json;
pub mod registry;
pub mod replay;
pub mod ring;
pub mod sampler;
pub mod timeline;

pub use collector::{noop_collector, Collector, NoopCollector};
pub use context::{TraceContext, TRAILER_LEN, TRAILER_MAGIC, TRAILER_VERSION};
pub use event::{EventKind, Field, FieldValue, Phase, SpanId, Subsystem, TelemetryEvent};
pub use export::{from_jsonl, to_chrome_trace, to_jsonl, ExportError};
pub use expose::{ExposeServer, Exposition};
pub use json::{Json, JsonError};
pub use registry::{HistogramSummary, MetricsRegistry, MetricsSnapshot};
pub use replay::{replay_spans, CompletedSpan, ReplayError};
pub use ring::RingCollector;
pub use sampler::{MeteredCollector, Sampler};
pub use timeline::render_timeline;
