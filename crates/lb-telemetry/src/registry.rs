//! [`MetricsRegistry`]: named counters, gauges and histogram summaries.
//!
//! Histograms reuse `lb-stats` machinery — [`OnlineStats`] (Welford) for
//! moments and three streaming [`P2Quantile`] estimators for p50/p95/p99 —
//! so a registry stays O(1) memory per metric no matter how many samples
//! flow through it.
//!
//! A registry can be fed directly (`add` / `set_gauge` / `observe`) or can
//! [`MetricsRegistry::ingest`] a recording, deriving per-phase latency
//! histograms from span durations, per-machine message counts from network
//! instants and anomaly counts from coordinator instants.

use crate::event::{EventKind, FieldValue, SpanId, TelemetryEvent};
use crate::json::Json;
use lb_stats::online::OnlineStats;
use lb_stats::quantile::P2Quantile;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One histogram metric: Welford moments plus streaming quantiles.
#[derive(Debug, Clone)]
struct HistogramMetric {
    stats: OnlineStats,
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
}

impl HistogramMetric {
    fn new() -> Self {
        Self {
            stats: OnlineStats::new(),
            p50: P2Quantile::new(0.50),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
        }
    }

    fn observe(&mut self, value: f64) {
        self.stats.push(value);
        self.p50.observe(value);
        self.p95.observe(value);
        self.p99.observe(value);
    }

    fn merge(&mut self, other: &Self) {
        self.stats.merge(&other.stats);
        self.p50.merge_approx(&other.p50);
        self.p95.merge_approx(&other.p95);
        self.p99.merge_approx(&other.p99);
    }

    fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.stats.count(),
            mean: self.stats.mean(),
            std_dev: self.stats.std_dev(),
            min: self.stats.min(),
            max: self.stats.max(),
            p50: self.p50.estimate(),
            p95: self.p95.estimate(),
            p99: self.p99.estimate(),
        }
    }
}

/// Point-in-time summary of one histogram metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples observed.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Streaming median estimate (P² algorithm).
    pub p50: f64,
    /// Streaming 95th-percentile estimate.
    pub p95: f64,
    /// Streaming 99th-percentile estimate.
    pub p99: f64,
}

/// A registry of named metrics with deterministic (sorted) iteration order.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramMetric>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (created at zero on first use).
    pub fn add(&mut self, name: impl Into<String>, delta: u64) {
        let slot = self.counters.entry(name.into()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Sets the named gauge.
    pub fn set_gauge(&mut self, name: impl Into<String>, value: f64) {
        self.gauges.insert(name.into(), value);
    }

    /// Records one sample of the named distribution.
    pub fn observe(&mut self, name: impl Into<String>, value: f64) {
        self.histograms
            .entry(name.into())
            .or_insert_with(HistogramMetric::new)
            .observe(value);
    }

    /// Current value of a counter (zero if never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Summary of a histogram, if any samples were observed.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        self.histograms.get(name).map(HistogramMetric::summary)
    }

    /// Counters whose names start with `prefix`, in name order.
    #[must_use]
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(&str, u64)> {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
            .collect()
    }

    /// Feeds a recording through the registry.
    ///
    /// * counter / gauge / histogram events update the same-named metric;
    /// * `shard.phase.seconds` gauges carrying `shard`/`phase` fields (the
    ///   profiled sharded runtime's emission) derive a per-shard metric
    ///   `shard.<s>.<phase>.seconds`, so one fleet of gauges doesn't
    ///   collapse into a single last-writer cell;
    /// * each completed span contributes its duration to a
    ///   `span.<name>.seconds` histogram (so phase spans become per-phase
    ///   latency distributions);
    /// * `anomaly` instants bump `anomaly.total` and `anomaly.<kind>`;
    /// * `net.send` instants bump `net.fate.<fate>` and, when the frame's
    ///   node endpoint is known, `net.machine.<machine>`;
    /// * `chaos.retransmit` instants bump `chaos.retransmit.machine.<m>`.
    ///
    /// Span bookkeeping here is intentionally forgiving — it tracks open
    /// spans by id and skips unmatched ends, leaving structural validation
    /// to [`crate::replay_spans`].
    pub fn ingest(&mut self, events: &[TelemetryEvent]) {
        let mut open: BTreeMap<SpanId, (String, f64)> = BTreeMap::new();
        for event in events {
            match &event.kind {
                EventKind::Counter { delta } => self.add(event.name.clone(), *delta),
                EventKind::Gauge { value } => {
                    if event.name.as_ref() == "shard.phase.seconds" {
                        if let (Some(FieldValue::U64(shard)), Some(FieldValue::Str(phase))) =
                            (event.field("shard"), event.field("phase"))
                        {
                            self.set_gauge(format!("shard.{shard}.{phase}.seconds"), *value);
                            continue;
                        }
                    }
                    self.set_gauge(event.name.clone(), *value);
                }
                EventKind::Histogram { value } => self.observe(event.name.clone(), *value),
                EventKind::SpanStart { id, .. } => {
                    open.insert(*id, (event.name.clone().into_owned(), event.at));
                }
                EventKind::SpanEnd { id } => {
                    if let Some((name, start)) = open.remove(id) {
                        self.observe(format!("span.{name}.seconds"), event.at - start);
                    }
                }
                EventKind::Instant => match event.name.as_ref() {
                    "anomaly" => {
                        self.add("anomaly.total", 1);
                        if let Some(FieldValue::Str(kind)) = event.field("kind") {
                            self.add(format!("anomaly.{kind}"), 1);
                        }
                    }
                    "net.send" => {
                        if let Some(FieldValue::Str(fate)) = event.field("fate") {
                            self.add(format!("net.fate.{fate}"), 1);
                        }
                        if let Some(FieldValue::U64(node)) = event.field("node") {
                            self.add(format!("net.machine.{node}"), 1);
                        }
                    }
                    "chaos.retransmit" => {
                        if let Some(FieldValue::U64(machine)) = event.field("machine") {
                            self.add(format!("chaos.retransmit.machine.{machine}"), 1);
                        }
                    }
                    _ => {}
                },
            }
        }
    }

    /// Merges another registry into this one — the reduction step when each
    /// collector (per thread, per node, per round) fed its own registry.
    ///
    /// Counters add (saturating), gauges take the other side's value when it
    /// set one (last-writer-wins, matching `set_gauge` semantics), histogram
    /// moments merge exactly (Welford/Chan) and quantiles merge via
    /// [`P2Quantile::merge_approx`] — counts and sums stay exact, quantile
    /// estimates carry the approximation error documented there.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, delta) in &other.counters {
            self.add(name.clone(), *delta);
        }
        for (name, value) in &other.gauges {
            self.set_gauge(name.clone(), *value);
        }
        for (name, hist) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(hist),
                None => {
                    self.histograms.insert(name.clone(), hist.clone());
                }
            }
        }
    }

    /// A frozen, renderable copy of every metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }
}

/// A frozen view of a [`MetricsRegistry`], sorted by metric name.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter name/value pairs.
    pub counters: Vec<(String, u64)>,
    /// Gauge name/value pairs.
    pub gauges: Vec<(String, f64)>,
    /// Histogram name/summary pairs.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// Renders an aligned plain-text report.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let width = self
                .counters
                .iter()
                .map(|(k, _)| k.len())
                .max()
                .unwrap_or(0);
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<width$}  {value}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            let width = self.gauges.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name:<width$}  {value:.6}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            let width = self
                .histograms
                .iter()
                .map(|(k, _)| k.len())
                .max()
                .unwrap_or(0);
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<width$}  n={} mean={:.6} sd={:.6} min={:.6} p50={:.6} p95={:.6} p99={:.6} max={:.6}",
                    h.count, h.mean, h.std_dev, h.min, h.p50, h.p95, h.p99, h.max
                );
            }
        }
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4) — what the `/metrics` endpoint of
    /// [`crate::expose::ExposeServer`] serves.
    ///
    /// Metric names are sanitised to `[a-zA-Z0-9_:]` (anything else becomes
    /// `_`, a leading digit gains a `_` prefix). Counters gain an `_total`
    /// suffix per convention; histograms render as Prometheus summaries:
    /// `<name>{quantile="…"}` sample lines plus `<name>_sum` /
    /// `<name>_count`. Non-finite values are skipped (Prometheus has no
    /// NaN/Inf samples worth scraping).
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 1);
            for (i, c) in name.chars().enumerate() {
                if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                    if i == 0 && c.is_ascii_digit() {
                        out.push('_');
                    }
                    out.push(c);
                } else {
                    out.push('_');
                }
            }
            out
        }
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name}_total counter");
            let _ = writeln!(out, "{name}_total {value}");
        }
        for (name, value) in &self.gauges {
            if !value.is_finite() {
                continue;
            }
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, h) in &self.histograms {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} summary");
            for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
                if v.is_finite() {
                    let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
                }
            }
            let sum = h.mean * h.count as f64;
            if sum.is_finite() {
                let _ = writeln!(out, "{name}_sum {sum}");
            }
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }

    /// Renders the snapshot as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let finite = |v: f64| {
            if v.is_finite() {
                Json::Num(v)
            } else {
                Json::Null
            }
        };
        Json::obj([
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), finite(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| {
                            (
                                k.clone(),
                                Json::obj([
                                    ("count", Json::Num(h.count as f64)),
                                    ("mean", finite(h.mean)),
                                    ("std_dev", finite(h.std_dev)),
                                    ("min", finite(h.min)),
                                    ("max", finite(h.max)),
                                    ("p50", finite(h.p50)),
                                    ("p95", finite(h.p95)),
                                    ("p99", finite(h.p99)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;
    use crate::event::{Field, Subsystem};
    use crate::ring::RingCollector;

    #[test]
    fn counters_saturate_and_default_to_zero() {
        let mut reg = MetricsRegistry::new();
        assert_eq!(reg.counter("never"), 0);
        reg.add("n", u64::MAX - 1);
        reg.add("n", 5);
        assert_eq!(reg.counter("n"), u64::MAX);
    }

    #[test]
    fn histogram_summary_tracks_moments_and_quantiles() {
        let mut reg = MetricsRegistry::new();
        for i in 1..=100 {
            reg.observe("lat", f64::from(i));
        }
        let h = reg.histogram("lat").unwrap();
        assert_eq!(h.count, 100);
        assert!((h.mean - 50.5).abs() < 1e-9);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        assert!((h.p50 - 50.0).abs() < 5.0, "p50 ~ {}", h.p50);
        assert!(h.p95 > 85.0 && h.p95 <= 100.0, "p95 ~ {}", h.p95);
        assert!(h.p99 >= h.p95);
    }

    #[test]
    fn ingest_derives_span_and_event_metrics() {
        let ring = RingCollector::new(64);
        let round = ring.span_start(0.0, "round", Subsystem::Coordinator, vec![]);
        let collect = ring.span_start_in(
            0.0,
            "phase.collect_bids",
            Subsystem::Coordinator,
            round,
            vec![],
        );
        ring.instant(
            0.1,
            "net.send",
            Subsystem::Network,
            vec![Field::u64("node", 2), Field::str("fate", "delivered")],
        );
        ring.instant(
            0.2,
            "net.send",
            Subsystem::Network,
            vec![Field::u64("node", 2), Field::str("fate", "dropped")],
        );
        ring.instant(
            0.3,
            "anomaly",
            Subsystem::Coordinator,
            vec![Field::str("kind", "late_bid")],
        );
        ring.instant(
            0.35,
            "chaos.retransmit",
            Subsystem::Chaos,
            vec![Field::u64("machine", 2)],
        );
        ring.counter(0.4, "net.messages", Subsystem::Network, 2);
        ring.gauge(0.4, "session.healthy", Subsystem::Session, 3.0);
        ring.histogram(0.4, "chaos.backoff", Subsystem::Chaos, 0.05);
        ring.span_end(0.5, collect);
        ring.span_end(0.6, round);

        let mut reg = MetricsRegistry::new();
        reg.ingest(&ring.snapshot());

        assert_eq!(reg.counter("net.machine.2"), 2);
        assert_eq!(reg.counter("net.fate.delivered"), 1);
        assert_eq!(reg.counter("net.fate.dropped"), 1);
        assert_eq!(reg.counter("anomaly.total"), 1);
        assert_eq!(reg.counter("anomaly.late_bid"), 1);
        assert_eq!(reg.counter("chaos.retransmit.machine.2"), 1);
        assert_eq!(reg.counter("net.messages"), 2);
        assert_eq!(reg.gauge("session.healthy"), Some(3.0));
        assert_eq!(reg.histogram("chaos.backoff").unwrap().count, 1);
        let collect_lat = reg.histogram("span.phase.collect_bids.seconds").unwrap();
        assert_eq!(collect_lat.count, 1);
        assert!((collect_lat.mean - 0.5).abs() < 1e-12);
        let round_lat = reg.histogram("span.round.seconds").unwrap();
        assert!((round_lat.mean - 0.6).abs() < 1e-12);
    }

    #[test]
    fn shard_phase_gauges_derive_per_shard_metric_names() {
        use crate::event::TelemetryEvent;
        use std::borrow::Cow;
        let mut events = Vec::new();
        for shard in 0..2u64 {
            for (p, phase) in ["collect", "allocate", "execute", "settle"]
                .iter()
                .enumerate()
            {
                events.push(TelemetryEvent {
                    at: 1.0,
                    name: Cow::Borrowed("shard.phase.seconds"),
                    cat: Subsystem::Shard,
                    kind: EventKind::Gauge {
                        value: (shard * 10 + p as u64) as f64,
                    },
                    fields: vec![Field::u64("shard", shard), Field::str("phase", *phase)],
                });
            }
        }
        // A same-named gauge without the fields falls back to the flat name.
        events.push(TelemetryEvent {
            at: 2.0,
            name: Cow::Borrowed("shard.phase.seconds"),
            cat: Subsystem::Shard,
            kind: EventKind::Gauge { value: 7.0 },
            fields: vec![],
        });
        let mut reg = MetricsRegistry::new();
        reg.ingest(&events);
        assert_eq!(reg.gauge("shard.0.collect.seconds"), Some(0.0));
        assert_eq!(reg.gauge("shard.1.settle.seconds"), Some(13.0));
        assert_eq!(reg.gauge("shard.0.allocate.seconds"), Some(1.0));
        assert_eq!(reg.gauge("shard.phase.seconds"), Some(7.0));
    }

    #[test]
    fn prefix_query_is_sorted_and_bounded() {
        let mut reg = MetricsRegistry::new();
        reg.add("net.machine.1", 4);
        reg.add("net.machine.0", 2);
        reg.add("netother", 9);
        let per_machine = reg.counters_with_prefix("net.machine.");
        assert_eq!(
            per_machine,
            vec![("net.machine.0", 2), ("net.machine.1", 4)]
        );
    }

    #[test]
    fn merge_of_two_collectors_matches_one_combined_stream() {
        // Two RingCollectors record disjoint halves of the same activity;
        // each feeds its own registry, the registries are merged, and the
        // result must agree with a single registry fed the combined stream:
        // counts and sums exactly, quantile ranks within the documented
        // merge error.
        let left = RingCollector::new(4096);
        let right = RingCollector::new(4096);
        for i in 0..1000u32 {
            let ring = if i % 2 == 0 { &left } else { &right };
            let at = f64::from(i) * 1e-3;
            ring.counter(at, "net.messages", Subsystem::Network, 2);
            ring.histogram(
                at,
                "latency",
                Subsystem::Network,
                f64::from(i % 100) / 100.0,
            );
            ring.gauge(at, "healthy", Subsystem::Session, f64::from(i));
        }

        let mut a = MetricsRegistry::new();
        a.ingest(&left.snapshot());
        let mut b = MetricsRegistry::new();
        b.ingest(&right.snapshot());
        a.merge(&b);

        let mut combined = MetricsRegistry::new();
        combined.ingest(&left.snapshot());
        combined.ingest(&right.snapshot());

        assert_eq!(a.counter("net.messages"), combined.counter("net.messages"));
        assert_eq!(a.counter("net.messages"), 2000);
        let m = a.histogram("latency").unwrap();
        let c = combined.histogram("latency").unwrap();
        assert_eq!(m.count, c.count);
        assert!((m.mean - c.mean).abs() < 1e-12, "{} vs {}", m.mean, c.mean);
        assert!((m.std_dev - c.std_dev).abs() < 1e-9);
        assert_eq!(m.min, c.min);
        assert_eq!(m.max, c.max);
        // Quantiles agree within the documented merge error (both are
        // estimates; compare ranks, not bits).
        for (merged_q, combined_q) in [(m.p50, c.p50), (m.p95, c.p95), (m.p99, c.p99)] {
            assert!(
                (merged_q - combined_q).abs() < 0.1,
                "quantile drifted: merged {merged_q} vs combined {combined_q}"
            );
        }
        // Gauges: last writer wins, and `merge` takes the other side's value.
        assert_eq!(a.gauge("healthy"), Some(999.0));
    }

    #[test]
    fn merge_into_empty_clones_histograms() {
        let mut src = MetricsRegistry::new();
        for i in 1..=50 {
            src.observe("lat", f64::from(i));
        }
        src.add("n", 7);
        let mut dst = MetricsRegistry::new();
        dst.merge(&src);
        assert_eq!(dst.counter("n"), 7);
        let h = dst.histogram("lat").unwrap();
        assert_eq!(h.count, 50);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 50.0);
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let mut reg = MetricsRegistry::new();
        reg.add("net.messages", 12);
        reg.add("anomaly.late-bid", 1);
        reg.set_gauge("session.healthy", 4.0);
        reg.set_gauge("broken", f64::NAN);
        for i in 1..=100 {
            reg.observe("span.round.seconds", f64::from(i) / 100.0);
        }
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE net_messages_total counter"));
        assert!(text.contains("net_messages_total 12"));
        assert!(text.contains("anomaly_late_bid_total 1"), "{text}");
        assert!(text.contains("# TYPE session_healthy gauge"));
        assert!(text.contains("session_healthy 4"));
        assert!(!text.contains("broken"), "non-finite gauges are skipped");
        assert!(text.contains("# TYPE span_round_seconds summary"));
        assert!(text.contains("span_round_seconds{quantile=\"0.5\"}"));
        assert!(text.contains("span_round_seconds_count 100"));
        assert!(text.contains("span_round_seconds_sum "));
        // Every non-comment line is "name[{labels}] value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split_whitespace();
            let name = parts.next().unwrap();
            let value = parts.next().unwrap();
            assert!(parts.next().is_none(), "extra tokens in '{line}'");
            assert!(name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "_:{}=\".".contains(c)));
            assert!(value.parse::<f64>().is_ok(), "bad value in '{line}'");
        }
    }

    #[test]
    fn snapshot_renders_text_and_valid_json() {
        let mut reg = MetricsRegistry::new();
        reg.add("messages", 12);
        reg.set_gauge("healthy", 4.0);
        reg.observe("latency", 0.25);
        reg.observe("latency", 0.75);
        let snap = reg.snapshot();
        let text = snap.to_text();
        assert!(text.contains("messages"));
        assert!(text.contains("n=2"));
        let json = snap.to_json();
        let reparsed = Json::parse(&json.render()).unwrap();
        assert_eq!(
            reparsed
                .get("counters")
                .and_then(|c| c.get("messages"))
                .and_then(Json::as_u64),
            Some(12)
        );
        assert_eq!(
            reparsed
                .get("histograms")
                .and_then(|h| h.get("latency"))
                .and_then(|l| l.get("count"))
                .and_then(Json::as_u64),
            Some(2)
        );
    }
}
