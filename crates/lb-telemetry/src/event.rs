//! The typed telemetry event vocabulary.
//!
//! An event is a timestamped, named record with a [`Subsystem`] category, a
//! [`EventKind`] payload and a small list of structured [`Field`]s. Names are
//! `Cow<'static, str>` so instrumentation sites pay no allocation for their
//! (static) names while parsed recordings can carry owned strings.

use std::borrow::Cow;
use std::fmt;

/// Protocol phase a span or metric is attributed to.
///
/// These mirror the coordinator's state machine: collect bids → allocate →
/// execute (with verification) → settle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Waiting for bids (including retransmission retries).
    CollectBids,
    /// Computing the PR allocation and running the verification simulation.
    Allocate,
    /// Jobs executing; waiting for completion acknowledgements.
    Execute,
    /// Computing and sending payments.
    Settle,
}

impl Phase {
    /// Every phase, in protocol order.
    pub const ALL: [Phase; 4] = [
        Phase::CollectBids,
        Phase::Allocate,
        Phase::Execute,
        Phase::Settle,
    ];

    /// Short lowercase name (`collect_bids`, `allocate`, …).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::CollectBids => "collect_bids",
            Phase::Allocate => "allocate",
            Phase::Execute => "execute",
            Phase::Settle => "settle",
        }
    }

    /// Canonical span name for this phase (`phase.collect_bids`, …).
    #[must_use]
    pub fn span_name(self) -> &'static str {
        match self {
            Phase::CollectBids => "phase.collect_bids",
            Phase::Allocate => "phase.allocate",
            Phase::Execute => "phase.execute",
            Phase::Settle => "phase.settle",
        }
    }

    /// Inverse of [`Phase::span_name`].
    #[must_use]
    pub fn from_span_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.span_name() == name)
    }
}

/// Subsystem that emitted an event — the Chrome-trace category and lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Subsystem {
    /// The mechanism centre's state machine.
    Coordinator,
    /// The (simulated or channel) transport.
    Network,
    /// The chaos injector and retransmission driver.
    Chaos,
    /// Multi-round session management (quarantine, readmission).
    Session,
    /// Node-side agents.
    Node,
    /// The discrete-event execution simulator.
    Sim,
    /// The experiment harness.
    Bench,
    /// The verification-observability monitors (economic invariants,
    /// truthfulness margins, ledger health).
    Audit,
    /// Shard-tier coordinators of the hierarchical (sharded) round runtime.
    Shard,
}

impl Subsystem {
    /// Every subsystem, in lane order.
    pub const ALL: [Subsystem; 9] = [
        Subsystem::Coordinator,
        Subsystem::Network,
        Subsystem::Chaos,
        Subsystem::Session,
        Subsystem::Node,
        Subsystem::Sim,
        Subsystem::Bench,
        Subsystem::Audit,
        Subsystem::Shard,
    ];

    /// Short lowercase name (`coordinator`, `network`, …).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::Coordinator => "coordinator",
            Subsystem::Network => "network",
            Subsystem::Chaos => "chaos",
            Subsystem::Session => "session",
            Subsystem::Node => "node",
            Subsystem::Sim => "sim",
            Subsystem::Bench => "bench",
            Subsystem::Audit => "audit",
            Subsystem::Shard => "shard",
        }
    }

    /// Inverse of [`Subsystem::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Subsystem> {
        Subsystem::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Stable lane number used as the Chrome-trace `tid`, so each subsystem
    /// renders as its own track.
    #[must_use]
    pub fn lane(self) -> u64 {
        match self {
            Subsystem::Coordinator => 1,
            Subsystem::Network => 2,
            Subsystem::Chaos => 3,
            Subsystem::Session => 4,
            Subsystem::Node => 5,
            Subsystem::Sim => 6,
            Subsystem::Bench => 7,
            Subsystem::Audit => 8,
            Subsystem::Shard => 9,
        }
    }
}

impl fmt::Display for Subsystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Identifier of a span within one recording.
///
/// Allocated by the collector ([`crate::Collector::next_span_id`]); the null
/// id `0` is returned by disabled collectors and never recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span id, produced by disabled collectors.
    pub const NULL: SpanId = SpanId(0);

    /// Whether this is the null id.
    #[must_use]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

/// A structured field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (owned so parsed recordings round-trip).
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => f.write_str(v),
        }
    }
}

/// One structured key/value field on an event.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field key.
    pub key: Cow<'static, str>,
    /// Field value.
    pub value: FieldValue,
}

impl Field {
    /// Unsigned-integer field.
    #[must_use]
    pub fn u64(key: &'static str, value: u64) -> Self {
        Self {
            key: Cow::Borrowed(key),
            value: FieldValue::U64(value),
        }
    }

    /// Signed-integer field.
    #[must_use]
    pub fn i64(key: &'static str, value: i64) -> Self {
        Self {
            key: Cow::Borrowed(key),
            value: FieldValue::I64(value),
        }
    }

    /// Floating-point field.
    #[must_use]
    pub fn f64(key: &'static str, value: f64) -> Self {
        Self {
            key: Cow::Borrowed(key),
            value: FieldValue::F64(value),
        }
    }

    /// Boolean field.
    #[must_use]
    pub fn bool(key: &'static str, value: bool) -> Self {
        Self {
            key: Cow::Borrowed(key),
            value: FieldValue::Bool(value),
        }
    }

    /// String field.
    #[must_use]
    pub fn str(key: &'static str, value: impl Into<String>) -> Self {
        Self {
            key: Cow::Borrowed(key),
            value: FieldValue::Str(value.into()),
        }
    }
}

/// What kind of record an event is.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span opened. Spans form a forest through `parent` links; children
    /// must close before their parent ([`crate::replay_spans`] enforces it).
    SpanStart {
        /// Identifier matched by the closing [`EventKind::SpanEnd`].
        id: SpanId,
        /// Enclosing span, if any.
        parent: Option<SpanId>,
    },
    /// A span closed.
    SpanEnd {
        /// Identifier of the span being closed.
        id: SpanId,
    },
    /// A point-in-time event.
    Instant,
    /// A monotonic counter increment.
    Counter {
        /// Amount added to the counter.
        delta: u64,
    },
    /// A gauge set to an absolute value.
    Gauge {
        /// The new gauge value.
        value: f64,
    },
    /// One sample of a distribution (latency, backoff delay, …).
    Histogram {
        /// The observed value.
        value: f64,
    },
}

impl EventKind {
    /// Stable lowercase tag used by the exporters.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::SpanStart { .. } => "span_start",
            EventKind::SpanEnd { .. } => "span_end",
            EventKind::Instant => "instant",
            EventKind::Counter { .. } => "counter",
            EventKind::Gauge { .. } => "gauge",
            EventKind::Histogram { .. } => "histogram",
        }
    }
}

/// One telemetry record: a timestamp on the caller's clock, a name, a
/// category, a kind and structured fields.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryEvent {
    /// Timestamp in seconds on the clock the caller injected (sim time for
    /// the deterministic runtimes, monotonic offset for the threaded one).
    pub at: f64,
    /// Event name (static at instrumentation sites, owned after parsing).
    pub name: Cow<'static, str>,
    /// Emitting subsystem.
    pub cat: Subsystem,
    /// Payload.
    pub kind: EventKind,
    /// Structured fields.
    pub fields: Vec<Field>,
}

impl TelemetryEvent {
    /// Looks up a field by key.
    #[must_use]
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|f| f.key == key).map(|f| &f.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_roundtrip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_span_name(p.span_name()), Some(p));
            assert!(p.span_name().ends_with(p.name()));
        }
        assert_eq!(Phase::from_span_name("phase.nonsense"), None);
    }

    #[test]
    fn subsystem_names_roundtrip() {
        for s in Subsystem::ALL {
            assert_eq!(Subsystem::from_name(s.name()), Some(s));
        }
        assert_eq!(Subsystem::from_name("bogus"), None);
    }

    #[test]
    fn lanes_are_distinct() {
        let lanes: std::collections::BTreeSet<u64> =
            Subsystem::ALL.into_iter().map(Subsystem::lane).collect();
        assert_eq!(lanes.len(), Subsystem::ALL.len());
    }

    #[test]
    fn field_lookup_finds_values() {
        let e = TelemetryEvent {
            at: 1.0,
            name: Cow::Borrowed("x"),
            cat: Subsystem::Network,
            kind: EventKind::Instant,
            fields: vec![Field::u64("machine", 3), Field::str("fate", "dropped")],
        };
        assert_eq!(e.field("machine"), Some(&FieldValue::U64(3)));
        assert_eq!(e.field("fate"), Some(&FieldValue::Str("dropped".into())));
        assert_eq!(e.field("absent"), None);
    }
}
