//! A minimal JSON value model with emitter and parser.
//!
//! The build container has no `serde_json`, so the exporters hand-write
//! their JSON through this module — and the round-trip tests *parse it back*
//! to prove the output is real JSON, not merely JSON-shaped text. The
//! subset is complete for the exporters' needs: objects, arrays, strings
//! with escapes, finite numbers, booleans and null.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// A parsed or to-be-emitted JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (emitted via Rust's shortest-roundtrip `f64` display).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keyed by a `BTreeMap`, so emission order is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects; `None` elsewhere.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The number value as `u64`, if this is a non-negative integer number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Emits compact JSON text.
    ///
    /// # Panics
    /// Panics if a number is non-finite (JSON cannot represent it; the
    /// telemetry clock and metrics are finite by construction).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                assert!(v.is_finite(), "Json: non-finite number {v}");
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, nothing else).
    ///
    /// # Errors
    /// Returns a [`JsonError`] describing the first syntax problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Convenience: an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not emitted by our writer; map
                            // unpaired ones to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let value: f64 = text
            .parse()
            .map_err(|_| self.err(format!("invalid number '{text}'")))?;
        Ok(Json::Num(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-1.5",
            "3.141592653589793",
            "\"hi\"",
        ] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.render()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn structures_roundtrip() {
        let v = Json::obj([
            ("name", Json::Str("phase.collect_bids".into())),
            ("at", Json::Num(0.125)),
            (
                "tags",
                Json::Arr(vec![Json::Num(1.0), Json::Bool(true), Json::Null]),
            ),
            (
                "nested",
                Json::obj([("escaped", Json::Str("a\"b\\c\nd\tcontrol:\u{1}".into()))]),
            ),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn object_keys_emit_deterministically() {
        let v = Json::obj([("b", Json::Num(2.0)), ("a", Json::Num(1.0))]);
        assert_eq!(v.render(), "{\"a\":1,\"b\":2}");
    }

    #[test]
    fn accessors_work() {
        let v = Json::parse("{\"n\": 3, \"s\": \"x\", \"b\": true, \"a\": [1]}").unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }

    #[test]
    fn syntax_errors_are_reported() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1.2.3",
            "[1] junk",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse(" \n\t{ \"a\" : [ 1 , 2 ] } \r\n").unwrap();
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_numbers_are_rejected_at_emission() {
        let _ = Json::Num(f64::NAN).render();
    }
}
