//! Wire-propagated trace context.
//!
//! A [`TraceContext`] is the minimal identity a frame must carry for a
//! receiver to continue the sender's trace: a 128-bit trace id naming the
//! whole round, the 64-bit id of the span that was open when the frame was
//! sent (the parent for any span the receiver opens), and a sampled flag so
//! unsampled rounds cost nothing downstream.
//!
//! Ids are **deterministic**: [`TraceContext::root`] derives them from the
//! round seed with SplitMix64 ([`lb_stats::derive_seed`]), so a chaos replay
//! of the same seed reproduces byte-identical trace ids and a recording can
//! be diffed across runs.
//!
//! # Wire format
//!
//! The context travels as a fixed [`TRAILER_LEN`]-byte trailer appended
//! *after* the encoded message inside a frame's payload:
//!
//! ```text
//! offset  size  field
//! 0       2     magic "TC" (0x54 0x43)
//! 2       1     version (currently 1)
//! 3       16    trace_id, u128 little-endian
//! 19      8     span_id, u64 little-endian
//! 27      1     flags (bit 0 = sampled)
//! ```
//!
//! The trailer is optional and backward compatible: frames without it decode
//! exactly as before, and a receiver that does not understand it can ignore
//! the trailing bytes (the lb-proto codec exposes `decode_with_context` for
//! exactly this). Parsing is total — any malformed trailer yields `None`,
//! never a panic.

use lb_stats::derive_seed;

/// Trailer length in bytes: magic(2) + version(1) + trace_id(16) +
/// span_id(8) + flags(1).
pub const TRAILER_LEN: usize = 28;

/// Trailer magic bytes (`"TC"`), distinguishing a trailer from accidental
/// trailing garbage.
pub const TRAILER_MAGIC: [u8; 2] = [0x54, 0x43];

/// Current trailer format version.
pub const TRAILER_VERSION: u8 = 1;

/// Bit 0 of the flags byte: the trace is sampled.
const FLAG_SAMPLED: u8 = 0b0000_0001;

/// Salt mixed into the low half of a derived trace id so the two halves
/// differ even when `derive_seed` collides.
const LOW_HALF_SALT: u64 = 0x7472_6163_655F_6964; // "trace_id"

/// The trace identity carried on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// 128-bit id naming the whole trace (one protocol round).
    pub trace_id: u128,
    /// The span open at the sender when the frame was sent — the parent for
    /// any span the receiver opens while handling it.
    pub span_id: u64,
    /// Whether this trace is sampled; receivers skip span recording when
    /// false.
    pub sampled: bool,
}

impl TraceContext {
    /// Derives the deterministic root context for `round` of a run seeded
    /// with `seed`. Same `(seed, round)` → same trace id, always.
    ///
    /// The root has no open span yet (`span_id` 0); senders stamp the
    /// current span with [`TraceContext::with_span`] before serialising.
    #[must_use]
    pub fn root(seed: u64, round: u64, sampled: bool) -> Self {
        let hi = derive_seed(seed, round);
        let lo = derive_seed(seed ^ LOW_HALF_SALT, round);
        Self {
            trace_id: (u128::from(hi) << 64) | u128::from(lo),
            span_id: 0,
            sampled,
        }
    }

    /// The same trace with `span_id` as the current (parent) span.
    #[must_use]
    pub fn with_span(self, span_id: u64) -> Self {
        Self { span_id, ..self }
    }

    /// Serialises the context into its fixed-size wire trailer.
    #[must_use]
    pub fn to_trailer(&self) -> [u8; TRAILER_LEN] {
        let mut out = [0u8; TRAILER_LEN];
        out[0..2].copy_from_slice(&TRAILER_MAGIC);
        out[2] = TRAILER_VERSION;
        out[3..19].copy_from_slice(&self.trace_id.to_le_bytes());
        out[19..27].copy_from_slice(&self.span_id.to_le_bytes());
        out[27] = if self.sampled { FLAG_SAMPLED } else { 0 };
        out
    }

    /// Parses a wire trailer. Returns `None` for anything that is not a
    /// well-formed current-version trailer (wrong length, magic, version,
    /// or reserved flag bits) — callers treat such bytes as not-a-trailer.
    #[must_use]
    pub fn from_trailer(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != TRAILER_LEN
            || bytes[0..2] != TRAILER_MAGIC
            || bytes[2] != TRAILER_VERSION
            || bytes[27] & !FLAG_SAMPLED != 0
        {
            return None;
        }
        let mut trace_id = [0u8; 16];
        trace_id.copy_from_slice(&bytes[3..19]);
        let mut span_id = [0u8; 8];
        span_id.copy_from_slice(&bytes[19..27]);
        Some(Self {
            trace_id: u128::from_le_bytes(trace_id),
            span_id: u64::from_le_bytes(span_id),
            sampled: bytes[27] & FLAG_SAMPLED != 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailer_roundtrips() {
        for sampled in [false, true] {
            let ctx = TraceContext::root(42, 7, sampled).with_span(99);
            let bytes = ctx.to_trailer();
            assert_eq!(bytes.len(), TRAILER_LEN);
            assert_eq!(TraceContext::from_trailer(&bytes), Some(ctx));
        }
    }

    #[test]
    fn root_is_deterministic_and_distinct_per_round() {
        let a = TraceContext::root(5, 0, true);
        let b = TraceContext::root(5, 0, true);
        assert_eq!(a, b);
        assert_ne!(a.trace_id, TraceContext::root(5, 1, true).trace_id);
        assert_ne!(a.trace_id, TraceContext::root(6, 0, true).trace_id);
        assert_eq!(a.span_id, 0);
    }

    #[test]
    fn trace_id_halves_differ() {
        let ctx = TraceContext::root(0, 0, true);
        #[allow(clippy::cast_possible_truncation)]
        let lo = ctx.trace_id as u64;
        let hi = (ctx.trace_id >> 64) as u64;
        assert_ne!(lo, hi);
    }

    #[test]
    fn malformed_trailers_parse_to_none() {
        let good = TraceContext::root(1, 2, true).with_span(3).to_trailer();
        assert!(TraceContext::from_trailer(&good).is_some());
        // Wrong length.
        assert_eq!(TraceContext::from_trailer(&good[..27]), None);
        assert_eq!(TraceContext::from_trailer(&[]), None);
        // Wrong magic.
        let mut bad = good;
        bad[0] ^= 0xFF;
        assert_eq!(TraceContext::from_trailer(&bad), None);
        // Wrong version.
        let mut bad = good;
        bad[2] = 2;
        assert_eq!(TraceContext::from_trailer(&bad), None);
        // Reserved flag bits set.
        let mut bad = good;
        bad[27] |= 0b1000_0000;
        assert_eq!(TraceContext::from_trailer(&bad), None);
    }

    #[test]
    fn with_span_replaces_only_the_span() {
        let ctx = TraceContext::root(9, 9, true);
        let stamped = ctx.with_span(1234);
        assert_eq!(stamped.trace_id, ctx.trace_id);
        assert_eq!(stamped.span_id, 1234);
        assert!(stamped.sampled);
    }
}
