//! Span replay: validates a recording's span structure and extracts the
//! completed spans.
//!
//! A recording "replays cleanly" when every [`EventKind::SpanEnd`] matches an
//! open span, every child closes no later than its parent, no span has a
//! negative duration, and nothing is left open at the end. The Chrome-trace
//! exporter builds on the completed spans this module returns, so a trace
//! file is only ever produced from a structurally valid recording.

use crate::event::{EventKind, Field, SpanId, Subsystem, TelemetryEvent};
use std::collections::BTreeMap;
use std::fmt;

/// A span that opened and closed within the recording.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedSpan {
    /// The span's id within the recording.
    pub id: SpanId,
    /// Enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Span name (e.g. `round`, `phase.collect_bids`, `sim.machine`).
    pub name: String,
    /// Emitting subsystem.
    pub cat: Subsystem,
    /// Start timestamp, seconds on the recording's clock.
    pub start: f64,
    /// End timestamp, seconds on the recording's clock.
    pub end: f64,
    /// Nesting depth (0 for top-level spans).
    pub depth: usize,
    /// Fields from the start event followed by any attached at the end.
    pub fields: Vec<Field>,
}

impl CompletedSpan {
    /// Span duration in seconds.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Looks up a field by key (end-of-span fields included).
    #[must_use]
    pub fn field(&self, key: &str) -> Option<&crate::event::FieldValue> {
        self.fields.iter().find(|f| f.key == key).map(|f| &f.value)
    }
}

/// Why a recording does not replay cleanly.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// A `SpanEnd` referenced an id that was never opened (or already
    /// closed).
    EndWithoutStart {
        /// The unmatched id.
        id: SpanId,
        /// Timestamp of the offending end event.
        at: f64,
    },
    /// Two `SpanStart`s carried the same id.
    DuplicateSpanId {
        /// The reused id.
        id: SpanId,
    },
    /// A span opened under a parent that was not open at the time.
    UnknownParent {
        /// The child span.
        id: SpanId,
        /// The missing parent id.
        parent: SpanId,
    },
    /// A span closed while one of its children was still open.
    ChildStillOpen {
        /// The closing parent.
        parent: SpanId,
        /// The child that had not closed.
        child: SpanId,
    },
    /// A span closed before it started on the recording clock.
    NegativeDuration {
        /// The offending span.
        id: SpanId,
        /// Its start timestamp.
        start: f64,
        /// Its (earlier) end timestamp.
        end: f64,
    },
    /// The recording ended with spans still open.
    UnclosedSpans {
        /// Ids still open at the end of the recording, in open order.
        open: Vec<SpanId>,
    },
    /// A shard-tier span opened outside the coordinator tree. Shard spans
    /// must parent on the root's phase spans (or another shard span) —
    /// stitching an orphan to the round root would silently misattribute
    /// its time in every downstream critical-path analysis.
    OrphanedShardSpan {
        /// The offending shard span.
        id: SpanId,
        /// Its declared parent, if any.
        parent: Option<SpanId>,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::EndWithoutStart { id, at } => {
                write!(f, "span end for unknown id {} at t={at}", id.0)
            }
            ReplayError::DuplicateSpanId { id } => {
                write!(f, "span id {} started twice", id.0)
            }
            ReplayError::UnknownParent { id, parent } => {
                write!(f, "span {} opened under unknown parent {}", id.0, parent.0)
            }
            ReplayError::ChildStillOpen { parent, child } => {
                write!(
                    f,
                    "span {} closed while child {} still open",
                    parent.0, child.0
                )
            }
            ReplayError::NegativeDuration { id, start, end } => {
                write!(
                    f,
                    "span {} ends at t={end} before its start t={start}",
                    id.0
                )
            }
            ReplayError::UnclosedSpans { open } => {
                write!(
                    f,
                    "{} span(s) never closed (first id {})",
                    open.len(),
                    open[0].0
                )
            }
            ReplayError::OrphanedShardSpan { id, parent } => match parent {
                Some(p) => write!(
                    f,
                    "shard span {} parented on non-coordinator span {}",
                    id.0, p.0
                ),
                None => write!(f, "shard span {} opened with no parent", id.0),
            },
        }
    }
}

impl std::error::Error for ReplayError {}

struct OpenSpan {
    parent: Option<SpanId>,
    name: String,
    cat: Subsystem,
    start: f64,
    depth: usize,
    fields: Vec<Field>,
}

/// Replays a recording's span events, returning the completed spans in
/// order of their *end* events.
///
/// Non-span events (instants, counters, gauges, histogram samples) are
/// ignored; recordings interleave them freely.
///
/// # Errors
/// Returns the first structural violation found — see [`ReplayError`].
pub fn replay_spans(events: &[TelemetryEvent]) -> Result<Vec<CompletedSpan>, ReplayError> {
    let mut open: BTreeMap<SpanId, OpenSpan> = BTreeMap::new();
    let mut open_order: Vec<SpanId> = Vec::new();
    let mut done: Vec<CompletedSpan> = Vec::new();

    for event in events {
        match &event.kind {
            EventKind::SpanStart { id, parent } => {
                if open.contains_key(id) || done.iter().any(|s| s.id == *id) {
                    return Err(ReplayError::DuplicateSpanId { id: *id });
                }
                let depth = match parent {
                    None => 0,
                    Some(p) => match open.get(p) {
                        Some(parent_span) => parent_span.depth + 1,
                        None => {
                            return Err(ReplayError::UnknownParent {
                                id: *id,
                                parent: *p,
                            })
                        }
                    },
                };
                // Shard-tier lineage: a shard span must hang off the
                // coordinator tree (a root phase span or another shard
                // span). Anything else is an orphan, not a stitch target.
                if event.cat == Subsystem::Shard {
                    let parent_cat = parent.and_then(|p| open.get(&p)).map(|s| s.cat);
                    if !matches!(parent_cat, Some(Subsystem::Coordinator | Subsystem::Shard)) {
                        return Err(ReplayError::OrphanedShardSpan {
                            id: *id,
                            parent: *parent,
                        });
                    }
                }
                open.insert(
                    *id,
                    OpenSpan {
                        parent: *parent,
                        name: event.name.clone().into_owned(),
                        cat: event.cat,
                        start: event.at,
                        depth,
                        fields: event.fields.clone(),
                    },
                );
                open_order.push(*id);
            }
            EventKind::SpanEnd { id } => {
                let Some(span) = open.remove(id) else {
                    return Err(ReplayError::EndWithoutStart {
                        id: *id,
                        at: event.at,
                    });
                };
                if let Some(child) = open.iter().find(|(_, s)| s.parent == Some(*id)) {
                    return Err(ReplayError::ChildStillOpen {
                        parent: *id,
                        child: *child.0,
                    });
                }
                if event.at < span.start {
                    return Err(ReplayError::NegativeDuration {
                        id: *id,
                        start: span.start,
                        end: event.at,
                    });
                }
                open_order.retain(|o| o != id);
                let mut fields = span.fields;
                fields.extend(event.fields.iter().cloned());
                done.push(CompletedSpan {
                    id: *id,
                    parent: span.parent,
                    name: span.name,
                    cat: span.cat,
                    start: span.start,
                    end: event.at,
                    depth: span.depth,
                    fields,
                });
            }
            _ => {}
        }
    }

    if !open_order.is_empty() {
        return Err(ReplayError::UnclosedSpans { open: open_order });
    }
    Ok(done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;
    use crate::ring::RingCollector;

    #[test]
    fn nested_spans_replay_cleanly() {
        let ring = RingCollector::new(64);
        let round = ring.span_start(
            0.0,
            "round",
            Subsystem::Coordinator,
            vec![Field::u64("round", 1)],
        );
        let collect = ring.span_start_in(
            0.0,
            "phase.collect_bids",
            Subsystem::Coordinator,
            round,
            vec![],
        );
        ring.instant(0.1, "net.send", Subsystem::Network, vec![]);
        ring.span_end(0.4, collect);
        let exec = ring.span_start_in(0.4, "phase.execute", Subsystem::Coordinator, round, vec![]);
        ring.span_end_with(0.9, exec, vec![Field::u64("acks", 4)]);
        ring.span_end(1.0, round);

        let spans = replay_spans(&ring.snapshot()).unwrap();
        assert_eq!(spans.len(), 3);
        // Ordered by end event.
        assert_eq!(spans[0].name, "phase.collect_bids");
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[1].name, "phase.execute");
        assert_eq!(
            spans[1].field("acks"),
            Some(&crate::event::FieldValue::U64(4))
        );
        assert_eq!(spans[2].name, "round");
        assert_eq!(spans[2].depth, 0);
        assert!((spans[2].duration() - 1.0).abs() < 1e-12);
        assert_eq!(spans[0].parent, Some(spans[2].id));
    }

    #[test]
    fn end_without_start_is_rejected() {
        let ring = RingCollector::new(8);
        ring.span_end(1.0, SpanId(42));
        // span_end on an id the ring never issued still records the event.
        let err = replay_spans(&ring.snapshot()).unwrap_err();
        assert_eq!(
            err,
            ReplayError::EndWithoutStart {
                id: SpanId(42),
                at: 1.0
            }
        );
    }

    #[test]
    fn parent_closing_before_child_is_rejected() {
        let ring = RingCollector::new(8);
        let a = ring.span_start(0.0, "round", Subsystem::Coordinator, vec![]);
        let b = ring.span_start_in(0.1, "phase.allocate", Subsystem::Coordinator, a, vec![]);
        ring.span_end(0.2, a);
        let err = replay_spans(&ring.snapshot()).unwrap_err();
        assert_eq!(
            err,
            ReplayError::ChildStillOpen {
                parent: a,
                child: b
            }
        );
    }

    #[test]
    fn unclosed_spans_are_rejected() {
        let ring = RingCollector::new(8);
        let a = ring.span_start(0.0, "round", Subsystem::Coordinator, vec![]);
        let err = replay_spans(&ring.snapshot()).unwrap_err();
        assert_eq!(err, ReplayError::UnclosedSpans { open: vec![a] });
    }

    #[test]
    fn negative_duration_is_rejected() {
        let ring = RingCollector::new(8);
        let a = ring.span_start(1.0, "round", Subsystem::Coordinator, vec![]);
        ring.span_end(0.5, a);
        assert!(matches!(
            replay_spans(&ring.snapshot()),
            Err(ReplayError::NegativeDuration { .. })
        ));
    }

    #[test]
    fn unknown_parent_is_rejected() {
        let ring = RingCollector::new(8);
        let _ = ring.span_start_in(
            0.0,
            "phase.settle",
            Subsystem::Coordinator,
            SpanId(99),
            vec![],
        );
        assert!(matches!(
            replay_spans(&ring.snapshot()),
            Err(ReplayError::UnknownParent { .. })
        ));
    }

    #[test]
    fn orphaned_shard_span_is_rejected() {
        // A shard span with no parent must not be silently stitched to the
        // round root.
        let ring = RingCollector::new(16);
        let _round = ring.span_start(0.0, "round", Subsystem::Coordinator, vec![]);
        let orphan = ring.span_start(0.1, "shard.collect", Subsystem::Shard, vec![]);
        let err = replay_spans(&ring.snapshot()).unwrap_err();
        assert_eq!(
            err,
            ReplayError::OrphanedShardSpan {
                id: orphan,
                parent: None
            }
        );
    }

    #[test]
    fn shard_span_under_a_foreign_subsystem_is_rejected() {
        let ring = RingCollector::new(16);
        let sim = ring.span_start(0.0, "sim.round", Subsystem::Sim, vec![]);
        let shard = ring.span_start_in(0.1, "shard.verify", Subsystem::Shard, sim, vec![]);
        let err = replay_spans(&ring.snapshot()).unwrap_err();
        assert_eq!(
            err,
            ReplayError::OrphanedShardSpan {
                id: shard,
                parent: Some(sim)
            }
        );
    }

    #[test]
    fn shard_spans_on_the_coordinator_tree_replay_cleanly() {
        let ring = RingCollector::new(32);
        let round = ring.span_start(0.0, "round", Subsystem::Coordinator, vec![]);
        let phase =
            ring.span_start_in(0.0, "phase.allocate", Subsystem::Coordinator, round, vec![]);
        let shard = ring.span_start_in(0.1, "shard.verify", Subsystem::Shard, phase, vec![]);
        let nested = ring.span_start_in(0.2, "shard.verify", Subsystem::Shard, shard, vec![]);
        ring.span_end(0.3, nested);
        ring.span_end(0.4, shard);
        ring.span_end(0.5, phase);
        ring.span_end(0.6, round);
        assert_eq!(replay_spans(&ring.snapshot()).unwrap().len(), 4);
    }

    #[test]
    fn overlapping_sibling_spans_are_fine() {
        // Per-machine simulator spans overlap in time; that is legal as long
        // as each closes before the shared parent does.
        let ring = RingCollector::new(16);
        let parent = ring.span_start(0.0, "phase.execute", Subsystem::Coordinator, vec![]);
        let m0 = ring.span_start_in(0.0, "sim.machine", Subsystem::Sim, parent, vec![]);
        let m1 = ring.span_start_in(0.0, "sim.machine", Subsystem::Sim, parent, vec![]);
        ring.span_end(2.0, m1);
        ring.span_end(3.0, m0);
        ring.span_end(3.0, parent);
        let spans = replay_spans(&ring.snapshot()).unwrap();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans.iter().filter(|s| s.name == "sim.machine").count(), 2);
    }
}
