//! Exporters: JSONL event logs and Chrome `trace_event` files.
//!
//! * [`to_jsonl`] / [`from_jsonl`] — one JSON object per line, loss-free
//!   round-trip of every [`TelemetryEvent`] (kind, span ids, typed fields).
//!   Greppable, diffable, and re-parseable for offline analysis.
//! * [`to_chrome_trace`] — the Trace Event Format consumed by
//!   `chrome://tracing` and Perfetto. Spans are emitted as complete (`"X"`)
//!   events derived from [`crate::replay_spans`] — not `B`/`E` pairs —
//!   because overlapping sibling spans (per-machine simulator spans) inside
//!   one lane would violate `B`/`E` stack discipline. Timestamps are
//!   converted from seconds to the format's microseconds.

use crate::event::{EventKind, Field, FieldValue, SpanId, Subsystem, TelemetryEvent};
use crate::json::{Json, JsonError};
use crate::replay::{replay_spans, ReplayError};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt;

/// Why an export or import failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ExportError {
    /// A JSONL line was not valid JSON.
    Json {
        /// 1-based line number.
        line: usize,
        /// The underlying syntax error.
        source: JsonError,
    },
    /// A JSONL line parsed but did not match the event schema.
    Schema {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The recording's spans do not replay cleanly, so no Chrome trace can
    /// be built from it.
    Replay(ReplayError),
}

impl fmt::Display for ExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExportError::Json { line, source } => write!(f, "line {line}: {source}"),
            ExportError::Schema { line, message } => write!(f, "line {line}: {message}"),
            ExportError::Replay(e) => write!(f, "invalid span structure: {e}"),
        }
    }
}

impl std::error::Error for ExportError {}

impl From<ReplayError> for ExportError {
    fn from(e: ReplayError) -> Self {
        ExportError::Replay(e)
    }
}

/// Largest integer magnitude a JSON number round-trips exactly (`2^53`).
/// Bigger integers — 64-bit trace ids above all — are written as decimal
/// strings instead, so they survive the round-trip bit-exactly.
const EXACT_JSON_INT: u64 = 1 << 53;

fn field_value_json(value: &FieldValue) -> Json {
    let (tag, json) = match value {
        FieldValue::U64(v) if *v <= EXACT_JSON_INT => ("u64", Json::Num(*v as f64)),
        FieldValue::U64(v) => ("u64", Json::Str(v.to_string())),
        FieldValue::I64(v) if v.unsigned_abs() <= EXACT_JSON_INT => ("i64", Json::Num(*v as f64)),
        FieldValue::I64(v) => ("i64", Json::Str(v.to_string())),
        FieldValue::F64(v) => (
            "f64",
            if v.is_finite() {
                Json::Num(*v)
            } else {
                Json::Null
            },
        ),
        FieldValue::Bool(v) => ("bool", Json::Bool(*v)),
        FieldValue::Str(v) => ("str", Json::Str(v.clone())),
    };
    Json::obj([(tag, json)])
}

fn event_json(event: &TelemetryEvent) -> Json {
    let mut obj: BTreeMap<String, Json> = BTreeMap::new();
    obj.insert("at".into(), Json::Num(event.at));
    obj.insert("name".into(), Json::Str(event.name.clone().into_owned()));
    obj.insert("cat".into(), Json::Str(event.cat.name().into()));
    obj.insert("kind".into(), Json::Str(event.kind.tag().into()));
    match &event.kind {
        EventKind::SpanStart { id, parent } => {
            obj.insert("id".into(), Json::Num(id.0 as f64));
            if let Some(parent) = parent {
                obj.insert("parent".into(), Json::Num(parent.0 as f64));
            }
        }
        EventKind::SpanEnd { id } => {
            obj.insert("id".into(), Json::Num(id.0 as f64));
        }
        EventKind::Counter { delta } => {
            obj.insert("delta".into(), Json::Num(*delta as f64));
        }
        EventKind::Gauge { value } | EventKind::Histogram { value } => {
            obj.insert(
                "value".into(),
                if value.is_finite() {
                    Json::Num(*value)
                } else {
                    Json::Null
                },
            );
        }
        EventKind::Instant => {}
    }
    if !event.fields.is_empty() {
        // An array (not an object) so field order survives the round-trip.
        obj.insert(
            "fields".into(),
            Json::Arr(
                event
                    .fields
                    .iter()
                    .map(|f| {
                        let Json::Obj(mut tagged) = field_value_json(&f.value) else {
                            unreachable!("field_value_json returns an object")
                        };
                        tagged.insert("k".into(), Json::Str(f.key.clone().into_owned()));
                        Json::Obj(tagged)
                    })
                    .collect(),
            ),
        );
    }
    Json::Obj(obj)
}

/// Serialises a recording as JSONL: one event object per line, in order.
#[must_use]
pub fn to_jsonl(events: &[TelemetryEvent]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event_json(event).render());
        out.push('\n');
    }
    out
}

fn schema_err(line: usize, message: impl Into<String>) -> ExportError {
    ExportError::Schema {
        line,
        message: message.into(),
    }
}

fn parse_field(line: usize, entry: &Json) -> Result<Field, ExportError> {
    let Json::Obj(map) = entry else {
        return Err(schema_err(line, "field entry is not an object"));
    };
    let key = map
        .get("k")
        .and_then(Json::as_str)
        .ok_or_else(|| schema_err(line, "field entry missing string 'k'"))?;
    let (tag, inner) = map
        .iter()
        .find(|(k, _)| k.as_str() != "k")
        .ok_or_else(|| schema_err(line, format!("field '{key}' has no type tag")))?;
    let value = match (tag.as_str(), inner) {
        ("u64", Json::Num(v)) => FieldValue::U64(*v as u64),
        ("u64", Json::Str(s)) => FieldValue::U64(
            s.parse()
                .map_err(|_| schema_err(line, format!("field '{key}': bad u64 '{s}'")))?,
        ),
        ("i64", Json::Num(v)) => FieldValue::I64(*v as i64),
        ("i64", Json::Str(s)) => FieldValue::I64(
            s.parse()
                .map_err(|_| schema_err(line, format!("field '{key}': bad i64 '{s}'")))?,
        ),
        ("f64", Json::Num(v)) => FieldValue::F64(*v),
        ("f64", Json::Null) => FieldValue::F64(f64::NAN),
        ("bool", Json::Bool(v)) => FieldValue::Bool(*v),
        ("str", Json::Str(v)) => FieldValue::Str(v.clone()),
        _ => {
            return Err(schema_err(
                line,
                format!("field '{key}' has bad tag '{tag}'"),
            ))
        }
    };
    Ok(Field {
        key: Cow::Owned(key.to_string()),
        value,
    })
}

fn parse_event(line: usize, json: &Json) -> Result<TelemetryEvent, ExportError> {
    let at = json
        .get("at")
        .and_then(Json::as_f64)
        .ok_or_else(|| schema_err(line, "missing numeric 'at'"))?;
    // `to_jsonl` cannot render a non-finite timestamp, so accepting one here
    // would take the parser's image outside the serialiser's domain.
    if !at.is_finite() {
        return Err(schema_err(line, "non-finite 'at'"));
    }
    let name = json
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| schema_err(line, "missing string 'name'"))?
        .to_string();
    let cat_name = json
        .get("cat")
        .and_then(Json::as_str)
        .ok_or_else(|| schema_err(line, "missing string 'cat'"))?;
    let cat = Subsystem::from_name(cat_name)
        .ok_or_else(|| schema_err(line, format!("unknown subsystem '{cat_name}'")))?;
    let kind_tag = json
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| schema_err(line, "missing string 'kind'"))?;
    let span_id = |key: &str| -> Result<SpanId, ExportError> {
        json.get(key)
            .and_then(Json::as_u64)
            .map(SpanId)
            .ok_or_else(|| schema_err(line, format!("missing span '{key}'")))
    };
    let kind = match kind_tag {
        "span_start" => EventKind::SpanStart {
            id: span_id("id")?,
            parent: json.get("parent").and_then(Json::as_u64).map(SpanId),
        },
        "span_end" => EventKind::SpanEnd { id: span_id("id")? },
        "instant" => EventKind::Instant,
        "counter" => EventKind::Counter {
            delta: json
                .get("delta")
                .and_then(Json::as_u64)
                .ok_or_else(|| schema_err(line, "missing numeric 'delta'"))?,
        },
        "gauge" | "histogram" => {
            let value = match json.get("value") {
                Some(Json::Num(v)) => *v,
                Some(Json::Null) => f64::NAN,
                _ => return Err(schema_err(line, "missing numeric 'value'")),
            };
            if kind_tag == "gauge" {
                EventKind::Gauge { value }
            } else {
                EventKind::Histogram { value }
            }
        }
        other => return Err(schema_err(line, format!("unknown kind '{other}'"))),
    };
    let mut fields = Vec::new();
    if let Some(Json::Arr(entries)) = json.get("fields") {
        for entry in entries {
            fields.push(parse_field(line, entry)?);
        }
    }
    Ok(TelemetryEvent {
        at,
        name: Cow::Owned(name),
        cat,
        kind,
        fields,
    })
}

/// Parses a JSONL recording produced by [`to_jsonl`]. Blank lines are
/// skipped.
///
/// # Errors
/// Returns the first malformed line — invalid JSON or schema mismatch.
pub fn from_jsonl(text: &str) -> Result<Vec<TelemetryEvent>, ExportError> {
    let mut events = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let json = Json::parse(raw).map_err(|source| ExportError::Json { line, source })?;
        events.push(parse_event(line, &json)?);
    }
    Ok(events)
}

const MICROS: f64 = 1e6;

fn args_json(fields: &[Field]) -> Json {
    Json::Obj(
        fields
            .iter()
            .map(|f| {
                let v = match &f.value {
                    FieldValue::U64(v) => Json::Num(*v as f64),
                    FieldValue::I64(v) => Json::Num(*v as f64),
                    FieldValue::F64(v) => {
                        if v.is_finite() {
                            Json::Num(*v)
                        } else {
                            Json::Null
                        }
                    }
                    FieldValue::Bool(v) => Json::Bool(*v),
                    FieldValue::Str(v) => Json::Str(v.clone()),
                };
                (f.key.clone().into_owned(), v)
            })
            .collect(),
    )
}

/// Renders a recording as a Chrome Trace Event Format document (load it in
/// `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)).
///
/// Spans become complete (`"X"`) events, instants become `"i"` events,
/// counters and gauges become `"C"` counter tracks (counters accumulate,
/// gauges are absolute), and histogram samples become instants carrying
/// their value. Each subsystem renders in its own lane (`tid`).
///
/// # Errors
/// Fails with [`ExportError::Replay`] if the spans do not replay cleanly.
pub fn to_chrome_trace(events: &[TelemetryEvent]) -> Result<String, ExportError> {
    let spans = replay_spans(events)?;
    let mut trace: Vec<Json> = Vec::new();

    // Metadata records (`"M"` phase) name the process and each subsystem
    // lane, so viewers render "coordinator" / "node" / … instead of bare
    // tids. The pid/tid mapping is stable: pid 1 for the whole workspace,
    // tid = `Subsystem::lane`. Only lanes that actually appear are named.
    trace.push(Json::obj([
        ("name", Json::Str("process_name".into())),
        ("ph", Json::Str("M".into())),
        ("pid", Json::Num(1.0)),
        ("args", Json::obj([("name", Json::Str("lbmv".into()))])),
    ]));
    let lanes: BTreeMap<u64, &'static str> = events
        .iter()
        .map(|e| (e.cat.lane(), e.cat.name()))
        .collect();
    for (lane, name) in &lanes {
        trace.push(Json::obj([
            ("name", Json::Str("thread_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::Num(1.0)),
            ("tid", Json::Num(*lane as f64)),
            ("args", Json::obj([("name", Json::Str((*name).into()))])),
        ]));
    }

    for span in &spans {
        trace.push(Json::obj([
            ("name", Json::Str(span.name.clone())),
            ("cat", Json::Str(span.cat.name().into())),
            ("ph", Json::Str("X".into())),
            ("ts", Json::Num(span.start * MICROS)),
            ("dur", Json::Num(span.duration() * MICROS)),
            ("pid", Json::Num(1.0)),
            ("tid", Json::Num(span.cat.lane() as f64)),
            ("args", args_json(&span.fields)),
        ]));
    }

    let mut counter_totals: BTreeMap<&str, u64> = BTreeMap::new();
    for event in events {
        match &event.kind {
            EventKind::Instant => trace.push(Json::obj([
                ("name", Json::Str(event.name.clone().into_owned())),
                ("cat", Json::Str(event.cat.name().into())),
                ("ph", Json::Str("i".into())),
                ("s", Json::Str("t".into())),
                ("ts", Json::Num(event.at * MICROS)),
                ("pid", Json::Num(1.0)),
                ("tid", Json::Num(event.cat.lane() as f64)),
                ("args", args_json(&event.fields)),
            ])),
            EventKind::Counter { delta } => {
                let total = counter_totals.entry(event.name.as_ref()).or_insert(0);
                *total = total.saturating_add(*delta);
                trace.push(Json::obj([
                    ("name", Json::Str(event.name.clone().into_owned())),
                    ("cat", Json::Str(event.cat.name().into())),
                    ("ph", Json::Str("C".into())),
                    ("ts", Json::Num(event.at * MICROS)),
                    ("pid", Json::Num(1.0)),
                    ("args", Json::obj([("value", Json::Num(*total as f64))])),
                ]));
            }
            EventKind::Gauge { value } => trace.push(Json::obj([
                ("name", Json::Str(event.name.clone().into_owned())),
                ("cat", Json::Str(event.cat.name().into())),
                ("ph", Json::Str("C".into())),
                ("ts", Json::Num(event.at * MICROS)),
                ("pid", Json::Num(1.0)),
                (
                    "args",
                    Json::obj([(
                        "value",
                        if value.is_finite() {
                            Json::Num(*value)
                        } else {
                            Json::Null
                        },
                    )]),
                ),
            ])),
            EventKind::Histogram { value } => trace.push(Json::obj([
                ("name", Json::Str(event.name.clone().into_owned())),
                ("cat", Json::Str(event.cat.name().into())),
                ("ph", Json::Str("i".into())),
                ("s", Json::Str("t".into())),
                ("ts", Json::Num(event.at * MICROS)),
                ("pid", Json::Num(1.0)),
                ("tid", Json::Num(event.cat.lane() as f64)),
                (
                    "args",
                    Json::obj([(
                        "value",
                        if value.is_finite() {
                            Json::Num(*value)
                        } else {
                            Json::Null
                        },
                    )]),
                ),
            ])),
            EventKind::SpanStart { .. } | EventKind::SpanEnd { .. } => {}
        }
    }

    Ok(Json::obj([
        ("traceEvents", Json::Arr(trace)),
        ("displayTimeUnit", Json::Str("ms".into())),
    ])
    .render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;
    use crate::ring::RingCollector;

    fn sample_recording() -> Vec<TelemetryEvent> {
        let ring = RingCollector::new(64);
        let round = ring.span_start(
            0.0,
            "round",
            Subsystem::Coordinator,
            vec![Field::u64("round", 7)],
        );
        let collect = ring.span_start_in(
            0.0,
            "phase.collect_bids",
            Subsystem::Coordinator,
            round,
            vec![],
        );
        ring.instant(
            0.05,
            "net.send",
            Subsystem::Network,
            vec![
                Field::u64("to", 3),
                Field::str("fate", "corrupted"),
                Field::bool("retry", false),
                Field::f64("delay", 0.001),
                Field::i64("skew", -2),
            ],
        );
        ring.counter(0.05, "net.messages", Subsystem::Network, 1);
        ring.counter(0.06, "net.messages", Subsystem::Network, 2);
        ring.gauge(0.07, "session.healthy", Subsystem::Session, 4.0);
        ring.histogram(0.08, "chaos.backoff", Subsystem::Chaos, 0.012);
        ring.span_end(0.2, collect);
        ring.span_end_with(0.3, round, vec![Field::bool("converged", true)]);
        ring.snapshot()
    }

    #[test]
    fn jsonl_roundtrips_losslessly() {
        let events = sample_recording();
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), events.len());
        let parsed = from_jsonl(&text).unwrap();
        assert_eq!(parsed, events);
        // And the round-trip is a fixed point.
        assert_eq!(to_jsonl(&parsed), text);
    }

    #[test]
    fn jsonl_rejects_bad_lines_with_line_numbers() {
        let err = from_jsonl("not json\n").unwrap_err();
        assert!(matches!(err, ExportError::Json { line: 1, .. }));
        let err = from_jsonl("{\"at\":1}\n").unwrap_err();
        assert!(matches!(err, ExportError::Schema { line: 1, .. }));
        let good = "{\"at\":1,\"cat\":\"network\",\"kind\":\"instant\",\"name\":\"x\"}";
        let err = from_jsonl(&format!("{good}\n{{\"at\":2}}\n")).unwrap_err();
        assert!(matches!(err, ExportError::Schema { line: 2, .. }));
    }

    #[test]
    fn big_integer_fields_roundtrip_exactly() {
        // 64-bit trace ids exceed 2^53; a JSON number would round them, so
        // they travel as decimal strings.
        let events = vec![TelemetryEvent {
            at: 0.5,
            name: "round".into(),
            cat: Subsystem::Coordinator,
            kind: EventKind::Instant,
            fields: vec![
                Field::u64("trace_lo", u64::MAX - 1),
                Field::u64("small", 7),
                Field::i64("offset", i64::MIN + 1),
            ],
        }];
        let text = to_jsonl(&events);
        assert!(text.contains(&format!("\"{}\"", u64::MAX - 1)), "{text}");
        assert!(text.contains("\"small\",\"u64\":7") || text.contains("\"u64\":7"));
        assert_eq!(from_jsonl(&text).unwrap(), events);
    }

    #[test]
    fn jsonl_rejects_overflowed_timestamps() {
        // "1e999" parses as +inf; accepting it would let a recording through
        // that `to_jsonl` later panics on. The parser's image must stay
        // inside the serialiser's domain.
        let line = "{\"at\":1e999,\"cat\":\"network\",\"kind\":\"instant\",\"name\":\"x\"}";
        let err = from_jsonl(line).unwrap_err();
        assert!(matches!(err, ExportError::Schema { line: 1, .. }), "{err}");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let events = sample_recording();
        let text = to_jsonl(&events).replace('\n', "\n\n");
        assert_eq!(from_jsonl(&text).unwrap(), events);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_shape() {
        let events = sample_recording();
        let trace = to_chrome_trace(&events).unwrap();
        let json = Json::parse(&trace).unwrap();
        let all = json.get("traceEvents").and_then(Json::as_array).unwrap();
        // Metadata first: one process_name + one thread_name per used lane
        // (coordinator, network, chaos, session).
        let meta: Vec<&Json> = all
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .collect();
        assert_eq!(meta.len(), 5);
        assert_eq!(
            meta[0].get("name").and_then(Json::as_str),
            Some("process_name")
        );
        assert_eq!(
            meta[0]
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str),
            Some("lbmv")
        );
        let thread_names: Vec<(&str, u64)> = meta[1..]
            .iter()
            .map(|e| {
                (
                    e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        .unwrap(),
                    e.get("tid").and_then(Json::as_u64).unwrap(),
                )
            })
            .collect();
        assert_eq!(
            thread_names,
            vec![
                ("coordinator", 1),
                ("network", 2),
                ("chaos", 3),
                ("session", 4)
            ]
        );
        let items: Vec<&Json> = all
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) != Some("M"))
            .collect();
        // 2 spans + 2 instants (net.send + histogram sample) + 2 counters + 1 gauge.
        assert_eq!(items.len(), 7);
        let complete: Vec<&Json> = items
            .iter()
            .copied()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 2);
        for e in &complete {
            assert!(e.get("dur").and_then(Json::as_f64).unwrap() >= 0.0);
        }
        // Counters accumulate: second net.messages sample reports 3.
        let counters: Vec<f64> = items
            .iter()
            .copied()
            .filter(|e| {
                e.get("ph").and_then(Json::as_str) == Some("C")
                    && e.get("name").and_then(Json::as_str) == Some("net.messages")
            })
            .map(|e| {
                e.get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Json::as_f64)
                    .unwrap()
            })
            .collect();
        assert_eq!(counters, vec![1.0, 3.0]);
    }

    #[test]
    fn chrome_trace_refuses_unbalanced_spans() {
        let ring = RingCollector::new(8);
        let _ = ring.span_start(0.0, "round", Subsystem::Coordinator, vec![]);
        assert!(matches!(
            to_chrome_trace(&ring.snapshot()),
            Err(ExportError::Replay(_))
        ));
    }
}
