//! Pinned regressions for the bug classes the fuzz oracles police.
//!
//! Each test is a crafted input reproducing a hardening fix made in this
//! workspace; the oracles would rediscover these probabilistically, the
//! pins keep them fixed deterministically.

use lb_core::{optimal_latency_linear, pr_allocate, Allocation, CoreError};
use lb_fuzz::{registry, run_all, run_oracle, FuzzConfig};
use lb_mechanism::{CompensationBonusMechanism, MechanismError};
use lb_proto::{decode, CodecError, FrameReader, Message, MAX_FRAME_LEN};

/// `alloc` oracle class: the feasibility gate used a naive sum with an
/// absolute window and rejected algebraically exact PR allocations at large
/// `n` and wide parameter spreads.
#[test]
fn pr_output_revalidates_at_n_10_000_with_1e12_spread() {
    let n = 10_000;
    #[allow(clippy::cast_precision_loss)]
    let values: Vec<f64> = (0..n)
        .map(|i| 10f64.powf(-6.0 + 12.0 * i as f64 / (n - 1) as f64))
        .collect();
    let alloc = pr_allocate(&values, 20.0).unwrap();
    assert!(Allocation::new(alloc.rates().to_vec(), 20.0).is_ok());
}

/// `alloc` oracle class: `r²/Σ(1/t)` used to overflow silently to `inf`;
/// now a typed error.
#[test]
fn latency_overflow_is_a_typed_error() {
    assert!(matches!(
        optimal_latency_linear(&[1e250], 1e200),
        Err(CoreError::NumericalOverflow { .. })
    ));
}

/// `payment` oracle class: a subnormal bid used to flow into `1/b_i` and
/// NaN-poison every bonus term; now rejected at mechanism entry.
#[test]
fn subnormal_bid_is_rejected_not_nan_poisoned() {
    let mech = CompensationBonusMechanism::paper();
    let bids = [f64::MIN_POSITIVE / 2.0, 1.0];
    let exec = [1.0, 1.0];
    let alloc = Allocation::new(vec![0.5, 0.5], 1.0).unwrap();
    match mech.payment_breakdown(&bids, &alloc, &exec, 1.0) {
        Err(MechanismError::Core(CoreError::InvalidParameter { .. })) => {}
        other => panic!("expected InvalidParameter, got {other:?}"),
    }
}

/// `codec` oracle class: a corrupted in-band length below the old `2³²`
/// guard was handed to the decoder as a trusted size hint; any length
/// beyond the remaining input is now rejected up front.
#[test]
fn corrupt_sub_4gib_length_prefix_is_rejected() {
    let mut bytes = 3_000_000_000u64.to_le_bytes().to_vec();
    bytes.extend_from_slice(&[1, 2]);
    assert!(matches!(
        decode::<Vec<u8>>(&bytes),
        Err(CodecError::LengthOverflow(3_000_000_000))
    ));
}

/// `codec` oracle class: a hostile frame header announcing 4 GiB must hit
/// the hard frame bound before any buffering, even with a huge configured
/// limit (which is clamped).
#[test]
fn hostile_frame_header_hits_the_hard_bound() {
    let mut reader = FrameReader::with_max_frame(usize::MAX);
    reader.feed(&u32::MAX.to_le_bytes());
    match reader.next_frame::<Message>() {
        Err(CodecError::FrameTooLarge { len, max }) => {
            assert_eq!(len, u64::from(u32::MAX));
            assert_eq!(max, MAX_FRAME_LEN as u64);
        }
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
}

/// The harness itself must be bit-deterministic: identical configurations
/// produce identical reports, and every oracle holds over a small budget.
#[test]
fn harness_is_deterministic_and_clean_on_a_small_budget() {
    let config = FuzzConfig {
        seed: 0x1db5_0b5e,
        iterations: 40,
    };
    let first = run_all(&config);
    let second = run_all(&config);
    assert_eq!(first.len(), registry().len());
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.oracle, b.oracle);
        assert_eq!(a.iterations, b.iterations);
        assert!(
            a.failures.is_empty(),
            "{}: {:?}",
            a.oracle,
            a.failures
                .iter()
                .map(|f| (f.seed, &f.message))
                .collect::<Vec<_>>()
        );
        assert_eq!(a.failures.len(), b.failures.len());
    }
}

/// A reported failure seed reproduces standalone through `run_one`,
/// independent of the iteration loop (the CLI `--raw-seed` path).
#[test]
fn raw_seed_reproduction_matches_the_iteration_path() {
    let config = FuzzConfig {
        seed: 7,
        iterations: 10,
    };
    for oracle in registry() {
        for i in 0..config.iterations {
            let seed = lb_stats::derive_seed(config.seed, i);
            assert_eq!(
                lb_fuzz::run_one(oracle, seed).is_ok(),
                run_oracle(
                    oracle,
                    &FuzzConfig {
                        seed: config.seed,
                        iterations: i + 1
                    }
                )
                .failures
                .iter()
                .all(|f| f.iteration != i),
                "oracle {} iteration {i} disagrees with raw-seed replay",
                oracle.name
            );
        }
    }
}
