//! Session oracle: chaos-round invariants under random fault schedules.
//!
//! One iteration builds a random consistent node population, a random (but
//! always valid) [`ChaosConfig`] and runs one full protocol round through
//! the chaos runtime. A typed mechanism error is an acceptable outcome (the
//! chaos layer may legitimately exclude too many machines to settle); a
//! panic or a violated invariant is a finding. The invariants are the
//! seed-independent guarantees the chaos runtime advertises:
//!
//! * conservation — the allocation over respondents sums to `R`;
//! * excluded machines receive zero rate and zero payment;
//! * the settlement audits clean over the respondent sub-profile
//!   (`P_i = C_i + B_i`, Def. 3.3);
//! * voluntary participation — truthful respondents never end below a
//!   rounding-scale floor (Theorem 3.2; all generated nodes are consistent);
//! * message complexity stays within [`chaos_message_bound`];
//! * the coordinator's-eye trace replays clean, and replaying the same
//!   seeds reproduces the round bit for bit.

use crate::generate::{chaos_config, node_specs, rng_for};
use lb_mechanism::CompensationBonusMechanism;
use lb_proto::{
    audit_settlement, chaos_message_bound, replay_check, run_chaos_round, ChaosConfig,
    ChaosRoundReport, NodeSpec, ProtocolConfig, SettlementRecord,
};
use lb_sim::driver::SimulationConfig;
use lb_sim::server::ServiceModel;
use lb_stats::Rng;

fn protocol_config(total_rate: f64, sim_seed: u64) -> ProtocolConfig {
    ProtocolConfig {
        total_rate,
        link_latency: 0.001,
        simulation: SimulationConfig {
            horizon: 50.0,
            seed: sim_seed,
            model: ServiceModel::StationaryDeterministic,
            workload: Default::default(),
            warmup: 0.0,
            estimator: lb_sim::estimator::EstimatorConfig::default(),
        },
    }
}

fn check_invariants(
    report: &ChaosRoundReport,
    specs: &[NodeSpec],
    chaos: &ChaosConfig,
    total_rate: f64,
) -> Result<(), String> {
    let n = specs.len();
    let outcome = &report.outcome;

    let total: f64 = outcome.rates.iter().sum();
    if (total - total_rate).abs() > 1e-6 * total_rate.max(1.0) {
        return Err(format!("allocation sums to {total:e}, want {total_rate:e}"));
    }

    for (i, &excluded) in report.excluded.iter().enumerate() {
        if excluded && (outcome.rates[i] != 0.0 || outcome.payments[i] != 0.0) {
            return Err(format!(
                "excluded machine {i} got rate {:e}, payment {:e}",
                outcome.rates[i], outcome.payments[i]
            ));
        }
    }

    let respondents: Vec<usize> = (0..n).filter(|&i| !report.excluded[i]).collect();
    if respondents.len() >= 2 {
        let mech = CompensationBonusMechanism::paper();
        let record = SettlementRecord {
            bids: respondents.iter().map(|&i| specs[i].bid).collect(),
            estimated_exec_values: respondents
                .iter()
                .map(|&i| outcome.estimated_exec_values[i])
                .collect(),
            total_rate,
            claimed_payments: respondents.iter().map(|&i| outcome.payments[i]).collect(),
        };
        let audit = audit_settlement(&mech, &record, 1e-6)
            .map_err(|e| format!("settlement not auditable: {e}"))?;
        if !audit.all_verified() {
            return Err(format!(
                "settlement disputed for machines {:?}",
                audit.disputed()
            ));
        }
    }

    // Rounding-scale utility floor: realised totals are bounded by
    // r² · max t̃ (since Σ 1/t̃ ≥ 1/max t̃), so anything below this floor is
    // a genuine Theorem 3.2 violation, not accumulated rounding.
    let max_exec = specs.iter().map(|s| s.exec_value).fold(1.0, f64::max);
    let floor = -1e-9 * (1.0 + total_rate * total_rate * max_exec);
    for &i in &respondents {
        if specs[i].is_truthful() && outcome.utilities[i] < floor {
            return Err(format!(
                "truthful machine {i} realised utility {:e} (floor {floor:e})",
                outcome.utilities[i]
            ));
        }
    }

    let bound = chaos_message_bound(n, chaos.bid_retries, report.faults.duplicated);
    if outcome.stats.messages > bound {
        return Err(format!(
            "{} messages exceeds bound {bound}",
            outcome.stats.messages
        ));
    }

    let violations = replay_check(&report.trace, n);
    if !violations.is_empty() {
        return Err(format!("trace replay violations: {violations:?}"));
    }
    Ok(())
}

/// Runs one session-oracle iteration.
///
/// # Errors
/// Returns a description of the first violated invariant.
pub fn check(seed: u64) -> Result<(), String> {
    let mut rng = rng_for(seed);
    #[allow(clippy::cast_possible_truncation)]
    let n = 3 + rng.next_below(4) as usize;
    let specs = node_specs(&mut rng, n);
    let chaos_seed = rng.next_u64();
    let chaos = chaos_config(&mut rng, chaos_seed);
    let total_rate = rng.next_range(1.0, 50.0);
    let sim_seed = rng.next_u64();
    let config = protocol_config(total_rate, sim_seed);
    let mech = CompensationBonusMechanism::paper();

    let report = match run_chaos_round(&mech, &specs, &config, &chaos) {
        Ok(report) => report,
        // Typed failure is legitimate under chaos (e.g. too few respondents
        // to settle); the oracle hunts panics and invariant violations.
        Err(_) => return Ok(()),
    };
    check_invariants(&report, &specs, &chaos, total_rate)?;

    // Determinism spot-check (every 8th iteration — it doubles the cost):
    // the same seeds must reproduce the identical round, faults included.
    if seed % 8 == 0 {
        let replay = run_chaos_round(&mech, &specs, &config, &chaos)
            .map_err(|e| format!("replay errored where the first run succeeded: {e}"))?;
        if replay.outcome.rates != report.outcome.rates
            || replay.outcome.payments != report.outcome.payments
            || replay.faults != report.faults
            || replay.retries != report.retries
        {
            return Err("replay with identical seeds diverged".to_string());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_for_a_small_seed_sample() {
        for seed in 0..25 {
            check(seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
