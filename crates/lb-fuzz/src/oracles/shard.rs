//! Shard oracle: the hierarchical coordinator is a transparent wrapper.
//!
//! One iteration draws a random round shape — node population, shard count,
//! arrival rate, simulation seed and a declarative fault plan — and checks
//! two properties of [`lb_proto::shard`]:
//!
//! 1. **Topology transparency.** The sharded round (random `k`) must be
//!    bit-identical to the single-coordinator lossy runtime on the same
//!    inputs: allocation rates, payments, verification estimates (all
//!    compared via `to_bits`), the exclusion set and the anomaly totals.
//!    The shard tier only repartitions *where* bids are gathered and
//!    partial harmonic sums are folded; any observable difference is a bug
//!    in the aggregation (see the `TwoF64` merge contract in
//!    `lb_proto::shard`).
//! 2. **Crash-recovery transparency.** A journalled sharded round, crashed
//!    at randomly sampled record boundaries and revived with
//!    [`recover_round`], must settle to the same payments and leave the
//!    journal byte-identical to the uninterrupted run — under the *same*
//!    fault plan, so recovery mid-collect re-excludes faulted machines
//!    deterministically.
//!
//! Fault draws keep at least two respondents so the round always settles
//! (fewer is the documented `NeedTwoAgents` error, tested elsewhere).

use crate::generate::{node_specs, rng_for};
use lb_mechanism::CompensationBonusMechanism;
use lb_proto::{
    drive_sharded_round, recover_round, report_from_root, run_protocol_round_with_faults,
    Coordinator, FaultPlan, Journal, JournalReplay, MemJournal, ProtocolConfig, RoundContext,
    RoundId, ShardPhaseTimings,
};
use lb_sim::driver::SimulationConfig;
use lb_sim::server::ServiceModel;
use lb_stats::Rng;
use lb_telemetry::noop_collector;
use std::cell::RefCell;
use std::rc::Rc;

/// Crash points sampled per iteration (on top of the exhaustive sweep in
/// the shard module's own pinned test).
const CRASH_SAMPLES: usize = 4;

fn protocol_config(rng: &mut impl Rng) -> ProtocolConfig {
    ProtocolConfig {
        total_rate: rng.next_range(1.0, 50.0),
        simulation: SimulationConfig {
            horizon: 50.0,
            seed: rng.next_u64(),
            model: ServiceModel::StationaryDeterministic,
            workload: Default::default(),
            warmup: 0.0,
            estimator: lb_sim::estimator::EstimatorConfig::default(),
        },
        ..ProtocolConfig::default()
    }
}

/// Draws a fault plan leaving at least two machines with a surviving bid.
fn fault_plan(rng: &mut impl Rng, n: usize) -> FaultPlan {
    let mut plan = FaultPlan::none();
    let mut bid_budget = n - 2;
    for i in 0..n {
        #[allow(clippy::cast_possible_truncation)]
        let machine = i as u32;
        if bid_budget > 0 && rng.next_bool(0.2) {
            bid_budget -= 1;
            match rng.next_below(3) {
                0 => plan.lose_bids_from.push(machine),
                1 => plan.partitioned.push(machine),
                #[allow(clippy::cast_possible_truncation)]
                _ => plan
                    .lose_bid_attempts
                    .push((machine, 1 + rng.next_below(3) as u32)),
            }
        } else if rng.next_bool(0.2) {
            plan.lose_acks_from.push(machine);
        }
    }
    plan
}

/// Runs one shard-oracle iteration.
///
/// # Errors
/// Returns a description of the first divergence between the sharded and
/// single-coordinator rounds, or between a crash-recovered and the
/// uninterrupted sharded round.
pub fn check(seed: u64) -> Result<(), String> {
    let mut rng = rng_for(seed);
    #[allow(clippy::cast_possible_truncation)]
    let n = 4 + rng.next_below(9) as usize;
    #[allow(clippy::cast_possible_truncation)]
    let shards = 1 + rng.next_below(n as u64 + 2) as usize;
    let specs = node_specs(&mut rng, n);
    let config = protocol_config(&mut rng);
    let faults = fault_plan(&mut rng, n);
    let mech = CompensationBonusMechanism::paper();
    let round = RoundId(0);

    // Property 1: sharded == single-coordinator, bit for bit.
    let single = run_protocol_round_with_faults(&mech, &specs, &config, &faults)
        .map_err(|e| format!("single-coordinator round: {e}"))?;
    let mut root = Coordinator::try_new(&mech, n, config.total_rate, round, config.simulation)
        .map_err(|e| format!("root: {e}"))?
        .with_strict(true);
    let (stats, _timings) = drive_sharded_round(&mut root, &specs, &config, shards, &faults)
        .map_err(|e| format!("sharded round (k = {shards}): {e}"))?;
    let report = report_from_root(&root, stats, shards, ShardPhaseTimings::default())
        .map_err(|e| format!("report: {e}"))?;

    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    if bits(&single.rates) != bits(&report.rates) {
        return Err(format!(
            "k = {shards}: allocations diverged:\n  single  {:?}\n  sharded {:?}",
            single.rates, report.rates
        ));
    }
    if bits(&single.payments) != bits(&report.payments) {
        return Err(format!(
            "k = {shards}: payments diverged:\n  single  {:?}\n  sharded {:?}",
            single.payments, report.payments
        ));
    }
    if bits(&single.estimated_exec_values) != bits(&report.estimated_exec_values) {
        return Err(format!("k = {shards}: verification estimates diverged"));
    }
    let single_excluded: Vec<bool> = (0..n).map(|i| single.rates[i] == 0.0).collect();
    if single_excluded != report.excluded {
        return Err(format!(
            "k = {shards}: exclusions diverged: single {single_excluded:?} sharded {:?}",
            report.excluded
        ));
    }
    if report.anomalies.total() != 0 {
        return Err(format!(
            "k = {shards}: clean drops produced {} anomalies",
            report.anomalies.total()
        ));
    }

    // Property 2: crash-recovered sharded rounds replay byte-identically.
    let ctx = RoundContext {
        n,
        total_rate: config.total_rate,
        round,
        sim: config.simulation,
    };
    let journal: Rc<RefCell<MemJournal>> = Rc::new(RefCell::new(MemJournal::new()));
    let mut durable = Coordinator::try_new(&mech, n, ctx.total_rate, round, ctx.sim)
        .map_err(|e| format!("durable root: {e}"))?
        .with_journal(journal.clone());
    drive_sharded_round(&mut durable, &specs, &config, shards, &faults)
        .map_err(|e| format!("durable sharded round: {e}"))?;
    let reference_bytes = journal
        .borrow()
        .bytes()
        .map_err(|e| format!("journal bytes: {e}"))?;
    let reference_payments = bits(durable.payments().ok_or("durable round has no payments")?);

    let boundaries = JournalReplay::boundaries(&reference_bytes);
    for _ in 0..CRASH_SAMPLES {
        #[allow(clippy::cast_possible_truncation)]
        let cut = boundaries[rng.next_below(boundaries.len() as u64) as usize];
        let revived: Rc<RefCell<dyn Journal>> = Rc::new(RefCell::new(MemJournal::from_bytes(
            reference_bytes[..cut].to_vec(),
        )));
        let (mut rec, _report) = recover_round(&mech, revived.clone(), &ctx, noop_collector(), 0.0)
            .map_err(|e| format!("cut {cut}: recover: {e}"))?;
        drive_sharded_round(&mut rec, &specs, &config, shards, &faults)
            .map_err(|e| format!("cut {cut}: re-drive: {e}"))?;
        let payments = bits(rec.payments().ok_or("recovered round has no payments")?);
        if payments != reference_payments {
            return Err(format!("cut {cut}: recovered payments diverged"));
        }
        let replayed = revived
            .borrow()
            .bytes()
            .map_err(|e| format!("cut {cut}: bytes: {e}"))?;
        if replayed != reference_bytes {
            return Err(format!(
                "cut {cut}: replayed journal differs from the uninterrupted run \
                 ({} vs {} bytes)",
                replayed.len(),
                reference_bytes.len()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_for_a_small_seed_sample() {
        for seed in 0..25 {
            check(seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
