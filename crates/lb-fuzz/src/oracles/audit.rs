//! Audit oracle: the verification-observability stack against injected
//! corruption.
//!
//! One iteration drives a random journalled round with an
//! [`InvariantMonitor`] attached as the coordinator's collector and checks
//! both directions of the detection contract:
//!
//! * **No false positives.** The clean round must produce zero monitor
//!   violations and an intact ledger verdict — a monitor that cries wolf
//!   on honest rounds is as useless as one that misses theft.
//! * **No false negatives.** Three corruptions are then injected, and each
//!   must be flagged:
//!   1. a *skimmed payment* — one respondent's settlement gauge perturbed
//!      (with `round.payment.total` adjusted so the aggregate still
//!      balances) — caught by the double-double drift reference;
//!   2. a *tampered journal* — a random byte flipped in a pre-seal record
//!      with the frame CRC recomputed, the edit the per-record checksum
//!      cannot see — caught by the ledger hash chain;
//!   3. a *violated utility floor* — a consistent synthetic round with one
//!      respondent underpaid past its Theorem 3.2 floor — caught by the
//!      floor check.

use crate::generate::{latency_values, node_specs, rng_for, spread_half_width};
use lb_audit::{verify_ledger, InvariantMonitor, MonitorConfig};
use lb_mechanism::{run_mechanism, CompensationBonusMechanism, Profile};
use lb_proto::journal::{crc32, JournalRecord};
use lb_proto::{
    decode, Coordinator, CoordinatorPhase, Journal, JournalReplay, MemJournal, Message, NodeSpec,
    RoundId,
};
use lb_sim::driver::SimulationConfig;
use lb_sim::server::ServiceModel;
use lb_stats::Rng;
use lb_telemetry::{noop_collector, Collector, EventKind, Subsystem, TelemetryEvent};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

fn sim_config(seed: u64) -> SimulationConfig {
    SimulationConfig {
        horizon: 50.0,
        seed,
        model: ServiceModel::StationaryDeterministic,
        workload: Default::default(),
        warmup: 0.0,
        estimator: lb_sim::estimator::EstimatorConfig::default(),
    }
}

/// Drives one journalled round to seal, like the session driver would.
fn drive(
    c: &mut Coordinator<'_>,
    specs: &[NodeSpec],
    actual: &[f64],
    round: RoundId,
) -> Result<(), String> {
    let n = specs.len();
    let mut pending: Vec<(u32, Message)> = (0..n)
        .map(|i| {
            #[allow(clippy::cast_possible_truncation)]
            let machine = i as u32;
            (machine, Message::RequestBid { round })
        })
        .collect();
    loop {
        let mut next = Vec::new();
        for (machine, message) in pending {
            let i = machine as usize;
            let reply = match message {
                Message::RequestBid { .. } => Some(Message::Bid {
                    round,
                    machine,
                    value: specs[i].bid,
                }),
                Message::Assign { .. } => Some(Message::ExecutionDone { round, machine }),
                _ => None,
            };
            if let Some(reply) = reply {
                next.extend(
                    c.handle(&reply, actual)
                        .map_err(|e| format!("handle: {e}"))?,
                );
            }
        }
        if next.is_empty() {
            match c.phase() {
                CoordinatorPhase::CollectingBids => {
                    next = c
                        .close_bidding(actual)
                        .map_err(|e| format!("close_bidding: {e}"))?;
                }
                CoordinatorPhase::Executing => {
                    next = c
                        .close_execution()
                        .map_err(|e| format!("close_execution: {e}"))?;
                }
                _ => break,
            }
        }
        pending = next;
    }
    c.seal().map_err(|e| format!("seal: {e}"))
}

/// The settlement gauge stream of one recorded round, in emission order.
fn settlement_gauges(events: &[TelemetryEvent]) -> Vec<(String, f64)> {
    events
        .iter()
        .filter(|e| e.cat == Subsystem::Coordinator)
        .filter_map(|e| match e.kind {
            EventKind::Gauge { value } => Some((e.name.to_string(), value)),
            _ => None,
        })
        .collect()
}

/// Replays a (possibly tampered) gauge stream into a fresh monitor and
/// returns its verdict on the single round it sees.
fn replay_into_monitor(gauges: &[(String, f64)]) -> Result<lb_audit::MonitorReport, String> {
    let monitor = InvariantMonitor::new(noop_collector(), MonitorConfig::default());
    for (name, value) in gauges {
        monitor.record(TelemetryEvent {
            at: 0.0,
            name: std::borrow::Cow::Owned(name.clone()),
            cat: Subsystem::Coordinator,
            kind: EventKind::Gauge { value: *value },
            fields: Vec::new(),
        });
    }
    monitor
        .latest_report()
        .ok_or_else(|| "replayed stream completed no round".to_string())
}

/// Runs one audit-oracle iteration.
///
/// # Errors
/// Returns a description of the first missed corruption or false alarm.
pub fn check(seed: u64) -> Result<(), String> {
    let mut rng = rng_for(seed);
    #[allow(clippy::cast_possible_truncation)]
    let n = 3 + rng.next_below(5) as usize;
    let specs = node_specs(&mut rng, n);
    let total_rate = rng.next_range(1.0, 50.0);
    let sim = sim_config(rng.next_u64());
    let round = RoundId(0);
    let actual: Vec<f64> = specs.iter().map(|s| s.exec_value).collect();
    let mech = CompensationBonusMechanism::paper();

    // Clean journalled round, observed live by the monitor.
    let journal = Rc::new(RefCell::new(MemJournal::new()));
    let ring = Arc::new(lb_telemetry::RingCollector::new(8192));
    let monitor = Arc::new(InvariantMonitor::new(
        ring.clone() as Arc<dyn Collector>,
        MonitorConfig::default(),
    ));
    {
        let mut c = Coordinator::new(&mech, n, total_rate, round, sim)
            .with_journal(Rc::clone(&journal) as Rc<RefCell<dyn Journal>>)
            .with_collector(monitor.clone() as Arc<dyn Collector>);
        drive(&mut c, &specs, &actual, round)?;
    }

    // 1. No false positives: the honest round is clean end to end.
    let report = monitor.latest_report().ok_or("monitor observed no round")?;
    if !report.ok() {
        return Err(format!(
            "false positive on a clean round: {:?}",
            report.violations
        ));
    }
    let stats = monitor.stats();
    if stats.rounds != 1 || stats.total_violations() != 0 {
        return Err(format!("clean-run stats polluted: {stats:?}"));
    }
    let bytes = journal
        .borrow()
        .bytes()
        .map_err(|e| format!("journal bytes: {e}"))?;
    let verdict = verify_ledger(&bytes);
    if !verdict.is_intact() || verdict.seals == 0 {
        return Err(format!("clean journal fails verification: {verdict:?}"));
    }

    // 2a. Skimmed payment: perturb one respondent's payment gauge, patch
    // the emitted total so the aggregate check stays green — the drift
    // reference must still catch it.
    let gauges = settlement_gauges(&ring.snapshot());
    let respondent = gauges
        .iter()
        .find_map(|(name, value)| {
            let i: usize = name.strip_prefix("excluded.m")?.parse().ok()?;
            (*value == 0.0).then_some(i)
        })
        .ok_or("round settled with no respondents")?;
    let payment_name = format!("payment.m{respondent}");
    let paid = gauges
        .iter()
        .find(|(name, _)| *name == payment_name)
        .map(|(_, v)| *v)
        .ok_or("respondent has no payment gauge")?;
    let skim = (0.01 + rng.next_range(0.0, 0.5)) * (1.0 + paid.abs());
    let skimmed = replay_into_monitor(
        &gauges
            .iter()
            .map(|(name, value)| {
                let tampered = if *name == payment_name {
                    value - skim
                } else if name == "round.payment.total" {
                    value - skim
                } else {
                    *value
                };
                (name.clone(), tampered)
            })
            .collect::<Vec<_>>(),
    )?;
    if skimmed.ok() {
        return Err(format!(
            "skimmed payment (machine {respondent}, −{skim:e}) went undetected"
        ));
    }
    if skimmed.check("drift").is_none_or(|c| c.ok) {
        return Err(format!(
            "skimmed payment not caught by the drift reference: {skimmed:?}"
        ));
    }

    // 2b. Tampered journal: flip a byte in a random pre-seal record and
    // recompute the frame CRC. The per-record checksum now passes; only
    // the hash chain can notice.
    let boundaries = JournalReplay::boundaries(&bytes);
    let seal_index = (0..boundaries.len() - 1)
        .find(|&i| {
            matches!(
                decode::<JournalRecord>(&bytes[boundaries[i] + 8..boundaries[i + 1]]),
                Ok(JournalRecord::LedgerSealed { .. })
            )
        })
        .ok_or("journal has no seal record")?;
    #[allow(clippy::cast_possible_truncation)]
    let victim = rng.next_below(seal_index as u64) as usize;
    let (start, end) = (boundaries[victim], boundaries[victim + 1]);
    let mut tampered = bytes.clone();
    #[allow(clippy::cast_possible_truncation)]
    let pos = start + 8 + rng.next_below((end - start - 8) as u64) as usize;
    tampered[pos] ^= 1 << rng.next_below(8);
    let crc = crc32(&tampered[start + 8..end]).to_le_bytes();
    tampered[start + 4..start + 8].copy_from_slice(&crc);
    let tampered_verdict = verify_ledger(&tampered);
    if tampered_verdict.is_intact() {
        return Err(format!(
            "CRC-fixed byte flip in record {victim} (offset {pos}) went undetected: \
             {tampered_verdict:?}"
        ));
    }
    if verify_ledger(&bytes).head != verdict.head {
        return Err("ledger verification is not deterministic".to_string());
    }

    // 2c. Violated floor: a consistent synthetic round (execution values
    // equal to bids, so Theorem 3.2 applies observably) with one machine
    // underpaid below its floor.
    #[allow(clippy::cast_possible_truncation)]
    let m = 2 + rng.next_below(6) as usize;
    let synth_half_width = spread_half_width(&mut rng);
    let values = latency_values(&mut rng, m, synth_half_width);
    let synth_rate = rng.next_range(1.0, 50.0);
    let profile = Profile::new(values.clone(), values.clone(), values.clone(), synth_rate)
        .map_err(|e| format!("synthetic profile: {e}"))?;
    let out = run_mechanism(&mech, &profile).map_err(|e| format!("synthetic round: {e}"))?;
    #[allow(clippy::cast_possible_truncation)]
    let victim = rng.next_below(m as u64) as usize;
    let mut floor_gauges = Vec::new();
    // Steal more than the whole payment scale: the floor tolerance is
    // relative to Σ|P_i|, so the theft must dominate it even on 10¹²
    // magnitude spreads.
    let theft = 10.0 * (1.0 + out.payments.iter().map(|p| p.abs()).sum::<f64>());
    for i in 0..m {
        let paid = if i == victim {
            out.payments[i] - theft
        } else {
            out.payments[i]
        };
        floor_gauges.push((format!("bid.m{i}"), values[i]));
        floor_gauges.push((format!("alloc.rate.m{i}"), out.allocation.rate(i)));
        floor_gauges.push((format!("exec.est.m{i}"), values[i]));
        floor_gauges.push((format!("excluded.m{i}"), 0.0));
        floor_gauges.push((format!("payment.m{i}"), paid));
    }
    floor_gauges.push(("round.index".to_string(), 0.0));
    floor_gauges.push(("round.total_rate".to_string(), synth_rate));
    floor_gauges.push((
        "round.payment.total".to_string(),
        out.payments.iter().sum::<f64>() - theft,
    ));
    let floored = replay_into_monitor(&floor_gauges)?;
    if !floored.consistent {
        return Err("synthetic round should read as consistent".to_string());
    }
    if floored.check("floor").is_none_or(|c| c.ok) {
        return Err(format!(
            "underpaid machine {victim} (−{theft:e}) not caught by the floor check: {floored:?}"
        ));
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_for_a_small_seed_sample() {
        for seed in 0..25 {
            check(seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
