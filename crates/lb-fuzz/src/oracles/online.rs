//! Online oracle: the incremental event path is a transparent wrapper over
//! from-scratch recomputation.
//!
//! One iteration draws a random churn-stream shape — slot-space width,
//! warmup population, event count, latency spread — and checks three
//! properties of the online mechanism layer:
//!
//! 1. **Per-event sum/allocation transparency.** After *every* membership
//!    event, the incrementally maintained harmonic sum `S = Σ 1/b_i`
//!    ([`lb_mechanism::OnlinePool`]) must agree with a from-scratch
//!    [`inv_sum_dd`] over the live bids to `1e-12` relative, the
//!    materialised allocation must agree per-machine with the mechanism's
//!    own from-scratch allocation to the same bound, and the O(1) factored
//!    view ([`OnlinePool::rate_of`]) must be *bit-identical* to the
//!    materialised rates. A terminal compensated re-sum must then restore
//!    bit-exact agreement with the sequential fold.
//! 2. **First-tick settle transparency.** The stream's first settle tick
//!    fires right after warmup (join-only prefix, slot order = dense
//!    order), where the incremental sum is bit-identical to the batch
//!    fold — so the [`lb_proto::OnlineSession`] tick must pay out
//!    bit-identically to [`run_protocol_round`] on the same specs, seed
//!    and config.
//! 3. **Session accounting and durability.** Over the whole stream the
//!    session's ledger must equal the sum of its per-tick fan-outs, tick
//!    counts must match the stream, the round journal must replay cleanly
//!    (no torn tail, one round block per settled tick), and a second run
//!    from the same seed must reproduce every payment bit for bit.

use crate::generate::rng_for;
use lb_core::inv_sum_dd;
use lb_mechanism::{CompensationBonusMechanism, OnlinePool, VerifiedMechanism};
use lb_proto::{
    read_journal, run_protocol_round, split_rounds, Journal, MemJournal, NodeSpec, OnlineApplied,
    OnlineEvent, OnlineSession, ProtocolConfig,
};
use lb_sim::churn::{ChurnConfig, ChurnEvent, ChurnGen};
use lb_sim::driver::SimulationConfig;
use lb_sim::server::ServiceModel;
use lb_stats::Rng;
use std::cell::RefCell;
use std::rc::Rc;

/// The incremental-path acceptance bound (ISSUE 10): every event-by-event
/// difference against from-scratch recomputation stays below this, far
/// tighter than the session-wide `REL_TOL`.
const INC_REL_TOL: f64 = 1e-12;

fn rel(got: f64, want: f64) -> f64 {
    (got - want).abs() / want.abs().max(f64::MIN_POSITIVE)
}

fn protocol_config(rng: &mut impl Rng) -> ProtocolConfig {
    ProtocolConfig {
        total_rate: rng.next_range(1.0, 50.0),
        simulation: SimulationConfig {
            horizon: 50.0,
            seed: rng.next_u64(),
            model: ServiceModel::StationaryDeterministic,
            workload: Default::default(),
            warmup: 0.0,
            estimator: lb_sim::estimator::EstimatorConfig::default(),
        },
        ..ProtocolConfig::default()
    }
}

fn churn_config(rng: &mut impl Rng) -> ChurnConfig {
    #[allow(clippy::cast_possible_truncation)]
    let initial = 3 + rng.next_below(6) as usize;
    #[allow(clippy::cast_possible_truncation)]
    let slots = initial + 4 + rng.next_below(24) as usize;
    #[allow(clippy::cast_possible_truncation)]
    let events = 120 + rng.next_below(200) as usize;
    ChurnConfig {
        slots,
        initial,
        events,
        half_width: rng.next_range(0.5, 3.0),
        // The first tick fires on the first post-warmup event, while the
        // membership history is still join-only: there the incremental sum
        // is bit-identical to the batch fold, making the settle comparison
        // in property 2 exact rather than tolerance-based.
        tick_every: initial + 1,
        min_live: 2,
    }
}

/// Applies one churn event to a mirror membership, returning the live bids
/// in slot order.
fn mirror_apply(mirror: &mut [Option<f64>], event: ChurnEvent) {
    match event {
        ChurnEvent::Join { slot, value } | ChurnEvent::RateChange { slot, value } => {
            mirror[slot] = Some(value);
        }
        ChurnEvent::Leave { slot } => mirror[slot] = None,
        ChurnEvent::Tick => {}
    }
}

/// Runs one online-oracle iteration.
///
/// # Errors
/// Returns a description of the first divergence between the incremental
/// online path and from-scratch recomputation.
pub fn check(seed: u64) -> Result<(), String> {
    let mut rng = rng_for(seed);
    let churn = churn_config(&mut rng);
    let config = protocol_config(&mut rng);
    let churn_seed = rng.next_u64();
    let mech = CompensationBonusMechanism::paper();

    // Property 1: per-event incremental vs from-scratch, at the pool tier.
    let mut pool = OnlinePool::new(config.total_rate).map_err(|e| format!("pool: {e}"))?;
    let mut mirror: Vec<Option<f64>> = vec![None; churn.slots];
    for (k, event) in ChurnGen::new(churn, churn_seed).enumerate() {
        match event {
            ChurnEvent::Join { slot, value } => pool
                .join(slot, value)
                .map_err(|e| format!("event {k}: join: {e}"))?,
            ChurnEvent::Leave { slot } => {
                pool.leave(slot)
                    .map_err(|e| format!("event {k}: leave: {e}"))?;
            }
            ChurnEvent::RateChange { slot, value } => {
                pool.rate_change(slot, value)
                    .map_err(|e| format!("event {k}: rebid: {e}"))?;
            }
            ChurnEvent::Tick => continue,
        }
        mirror_apply(&mut mirror, event);
        let live: Vec<f64> = mirror.iter().copied().flatten().collect();
        let scratch = inv_sum_dd(&live);
        let s_rel = rel(pool.harmonic_sum().value(), scratch.value());
        if s_rel > INC_REL_TOL {
            return Err(format!(
                "event {k}: incremental S drifted {s_rel:e} from scratch ({} live)",
                live.len()
            ));
        }
        if live.len() >= 2 {
            let alloc = pool
                .allocation()
                .map_err(|e| format!("event {k}: allocation: {e}"))?;
            let reference = mech
                .allocate(&live, pool.total_rate())
                .map_err(|e| format!("event {k}: reference allocation: {e}"))?;
            let mut j = 0;
            for (slot, bid) in mirror.iter().copied().enumerate() {
                if bid.is_none() {
                    continue;
                }
                let x_rel = rel(alloc.rate(j), reference.rate(j));
                if x_rel > INC_REL_TOL {
                    return Err(format!(
                        "event {k}: rate of slot {slot} drifted {x_rel:e} from scratch"
                    ));
                }
                // The O(1) factored view is the materialised rate, bit for
                // bit — same sum, same closed-form expression.
                let factored = pool
                    .rate_of(slot)
                    .ok_or_else(|| format!("event {k}: live slot {slot} has no rate"))?;
                if factored.to_bits() != alloc.rate(j).to_bits() {
                    return Err(format!(
                        "event {k}: factored rate of slot {slot} ({factored}) is not \
                         bit-identical to the materialised allocation ({})",
                        alloc.rate(j)
                    ));
                }
                j += 1;
            }
        }
    }
    // A terminal compensated re-sum restores bit-exactness.
    pool.resum();
    let live: Vec<f64> = mirror.iter().copied().flatten().collect();
    let scratch = inv_sum_dd(&live);
    if pool.harmonic_sum().value().to_bits() != scratch.value().to_bits() {
        return Err("re-sum did not restore bit-exact agreement with the fold".into());
    }
    if pool.drift_bound() != 0.0 {
        return Err(format!(
            "re-sum left a non-zero drift bound: {}",
            pool.drift_bound()
        ));
    }

    // Properties 2 and 3: the protocol-tier session over the same stream.
    let journal: Rc<RefCell<dyn Journal>> = Rc::new(RefCell::new(MemJournal::new()));
    let mut session = OnlineSession::new(&mech, config)
        .map_err(|e| format!("session: {e}"))?
        .with_journal(Rc::clone(&journal));
    let mut warmup_specs: Vec<NodeSpec> = Vec::with_capacity(churn.initial);
    let mut ticks_in_stream = 0u64;
    let mut first_tick: Option<Vec<f64>> = None;
    let mut ledger = vec![0.0f64; churn.slots];
    let mut all_payments: Vec<u64> = Vec::new();
    for (k, event) in ChurnGen::new(churn, churn_seed).enumerate() {
        if let ChurnEvent::Join { value, .. } = event {
            if warmup_specs.len() < churn.initial {
                warmup_specs.push(NodeSpec::truthful(value));
            }
        }
        if matches!(event, ChurnEvent::Tick) {
            ticks_in_stream += 1;
        }
        let applied = session
            .apply(OnlineEvent::from_churn(event))
            .map_err(|e| format!("event {k}: session: {e}"))?;
        if let OnlineApplied::Settled(tick) = applied {
            if tick.machines.len() != tick.payments.len() {
                return Err(format!("tick {}: ragged settle fan-out", tick.round));
            }
            for (&slot, &p) in tick.machines.iter().zip(&tick.payments) {
                ledger[slot] += p;
                all_payments.push(p.to_bits());
            }
            if first_tick.is_none() {
                first_tick = Some(tick.payments.clone());
            }
        }
    }

    // Property 2: the first tick settled the warmup population, join-only
    // history — bit-identical to the batch protocol round on those specs.
    let first = first_tick.ok_or("stream settled no tick")?;
    let batch = run_protocol_round(&mech, &warmup_specs, &config)
        .map_err(|e| format!("batch reference round: {e}"))?;
    if first.len() != batch.payments.len() {
        return Err(format!(
            "first tick paid {} machines, batch round {}",
            first.len(),
            batch.payments.len()
        ));
    }
    for (i, (&got, &want)) in first.iter().zip(&batch.payments).enumerate() {
        if got.to_bits() != want.to_bits() {
            return Err(format!(
                "first tick, machine {i}: online payment {got} != batch payment {want}"
            ));
        }
    }

    // Property 3a: ledger accounting and tick bookkeeping.
    let report = session.report();
    if report.ticks_settled + report.ticks_skipped != ticks_in_stream {
        return Err(format!(
            "{} ticks in stream, session saw {} + {}",
            ticks_in_stream, report.ticks_settled, report.ticks_skipped
        ));
    }
    for (slot, &total) in ledger.iter().enumerate() {
        let got = report.cumulative_payments.get(slot).copied().unwrap_or(0.0);
        if got.to_bits() != total.to_bits() {
            return Err(format!(
                "slot {slot}: session ledger {got} != fan-out total {total}"
            ));
        }
    }

    // Property 3b: the journal replays cleanly, one block per settled tick.
    let bytes = journal
        .borrow()
        .bytes()
        .map_err(|e| format!("journal bytes: {e}"))?;
    let replayed = read_journal(&bytes).map_err(|e| format!("read_journal: {e}"))?;
    if replayed.truncated_tail != 0 {
        return Err(format!(
            "journal has a torn tail of {} bytes",
            replayed.truncated_tail
        ));
    }
    let blocks = split_rounds(&replayed.records).map_err(|e| format!("split_rounds: {e}"))?;
    if blocks.len() as u64 != report.ticks_settled {
        return Err(format!(
            "{} settled ticks journalled {} round blocks",
            report.ticks_settled,
            blocks.len()
        ));
    }

    // Property 3c: the whole session is seed-deterministic.
    let mut replay = OnlineSession::new(&mech, config).map_err(|e| format!("replay: {e}"))?;
    let mut replay_payments: Vec<u64> = Vec::new();
    for event in ChurnGen::new(churn, churn_seed) {
        if let OnlineApplied::Settled(tick) = replay
            .apply(OnlineEvent::from_churn(event))
            .map_err(|e| format!("replay: {e}"))?
        {
            replay_payments.extend(tick.payments.iter().map(|p| p.to_bits()));
        }
    }
    if replay_payments != all_payments {
        return Err("replayed session diverged from the original payments".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_for_a_small_seed_sample() {
        for seed in 0..20 {
            check(seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
