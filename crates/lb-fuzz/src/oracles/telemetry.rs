//! Telemetry oracle: recording round-trips and mutated-input robustness.
//!
//! The observability stack persists recordings as JSONL and rebuilds span
//! forests from them (`lb-top`, the Chrome exporter, the replay validator all
//! consume that format), so the serialiser/parser pair gets the same
//! treatment as the wire codec. Three properties, in increasing hostility:
//!
//! 1. **Round-trip**: a well-formed random recording survives
//!    `from_jsonl(to_jsonl(events))` bit-exactly, replays into a clean span
//!    forest, and exports to a Chrome trace.
//! 2. **Closure**: whatever `from_jsonl` accepts, `to_jsonl` must be able to
//!    re-serialise, and that output must parse again to the same number of
//!    events. The parser's image must stay inside the serialiser's domain
//!    (non-finite timestamps are the historical trap here).
//! 3. **Corruption**: after random byte mutations the parser must return a
//!    typed error or a valid recording — never panic. A recording that does
//!    parse may no longer replay (span structure is content, not framing),
//!    but the replayer must fail with a typed [`ReplayError`], not a panic.

use crate::generate::{mutate_bytes, rng_for};
use lb_stats::{Rng, Xoshiro256StarStar};
use lb_telemetry::{
    from_jsonl, replay_spans, to_chrome_trace, to_jsonl, EventKind, Field, SpanId, Subsystem,
    TelemetryEvent,
};
use std::borrow::Cow;

/// Bound for counter deltas and span-adjacent integers, which travel as JSON
/// numbers: `2^53`, the largest range that representation round-trips
/// exactly. *Field* values are unrestricted — the exporter switches to
/// decimal strings above this bound (that is how 64-bit trace ids survive),
/// and the oracle deliberately generates full-range values to exercise it.
const EXACT_INT_BOUND: u64 = 1 << 53;

fn subsystem(rng: &mut Xoshiro256StarStar) -> Subsystem {
    match rng.next_below(9) {
        0 => Subsystem::Coordinator,
        1 => Subsystem::Network,
        2 => Subsystem::Chaos,
        3 => Subsystem::Session,
        4 => Subsystem::Node,
        5 => Subsystem::Sim,
        6 => Subsystem::Audit,
        7 => Subsystem::Shard,
        _ => Subsystem::Bench,
    }
}

/// Event names drawn from real instrumentation sites plus escaping-hostile
/// strings (quotes, backslashes, control characters, non-ASCII) that stress
/// the JSON string escaper.
fn name(rng: &mut Xoshiro256StarStar) -> Cow<'static, str> {
    match rng.next_below(8) {
        0 => Cow::Borrowed("phase.collect_bids"),
        1 => Cow::Borrowed("node.bid"),
        2 => Cow::Borrowed("net.send"),
        3 => Cow::Borrowed("round"),
        4 => Cow::Owned(format!("fuzz.{}", rng.next_below(1000))),
        5 => Cow::Borrowed("quoted \"name\" with \\ backslash"),
        6 => Cow::Borrowed("ctrl\tchars\nand\r\u{1} too"),
        _ => Cow::Borrowed("unicode λ→name"),
    }
}

fn field(rng: &mut Xoshiro256StarStar) -> Field {
    match rng.next_below(6) {
        0 => Field::u64("machine", rng.next_below(1024)),
        1 => Field::f64("value", rng.next_range(-1e9, 1e9)),
        2 => Field::bool("flag", rng.next_bool(0.5)),
        3 => Field::str("label", format!("m{}\"\\", rng.next_below(100))),
        #[allow(clippy::cast_possible_wrap)]
        4 => Field::i64("offset", rng.next_u64() as i64),
        _ => Field::u64("trace_lo", rng.next_u64()),
    }
}

fn fields(rng: &mut Xoshiro256StarStar) -> Vec<Field> {
    (0..rng.next_below(4)).map(|_| field(rng)).collect()
}

/// Builds a well-formed random recording: spans open and close in proper
/// LIFO nesting order (a stack guarantees replayability by construction),
/// interleaved with instants, counters, gauges and histogram samples.
fn recording(rng: &mut Xoshiro256StarStar) -> Vec<TelemetryEvent> {
    let mut events = Vec::new();
    let mut stack: Vec<(SpanId, Subsystem)> = Vec::new();
    let mut next_id = 1u64;
    let mut at = 0.0f64;
    let count = 8 + rng.next_below(48);
    for _ in 0..count {
        at += rng.next_range(0.0, 0.01);
        let mut cat = subsystem(rng);
        let kind = match rng.next_below(8) {
            0 | 1 => {
                let id = SpanId(next_id);
                next_id += 1;
                let parent = stack.last().copied();
                // Well-formed recordings respect the shard-lineage rule:
                // a Shard span only opens under a Coordinator or Shard
                // parent (replay_spans rejects orphans). Downgrade the
                // category elsewhere, exactly as real instrumentation
                // never emits a stray shard span.
                if cat == Subsystem::Shard
                    && !matches!(parent, Some((_, Subsystem::Coordinator | Subsystem::Shard)))
                {
                    cat = Subsystem::Coordinator;
                }
                stack.push((id, cat));
                EventKind::SpanStart {
                    id,
                    parent: parent.map(|(p, _)| p),
                }
            }
            2 if !stack.is_empty() => {
                let (id, _) = stack.pop().expect("non-empty stack");
                EventKind::SpanEnd { id }
            }
            2 | 3 => EventKind::Instant,
            4 => EventKind::Counter {
                delta: rng.next_below(EXACT_INT_BOUND),
            },
            5 => EventKind::Gauge {
                value: rng.next_range(-1e6, 1e6),
            },
            _ => EventKind::Histogram {
                value: rng.next_range(0.0, 1e3),
            },
        };
        events.push(TelemetryEvent {
            at,
            name: name(rng),
            cat,
            kind,
            fields: fields(rng),
        });
    }
    // Close whatever is still open, innermost first, so the forest is
    // complete and `replay_spans` accepts it.
    while let Some((id, _)) = stack.pop() {
        at += rng.next_range(0.0, 0.01);
        events.push(TelemetryEvent {
            at,
            name: Cow::Borrowed("close"),
            cat: Subsystem::Bench,
            kind: EventKind::SpanEnd { id },
            fields: Vec::new(),
        });
    }
    events
}

/// Runs one telemetry-oracle iteration.
///
/// # Errors
/// Returns a description of the first violated property.
pub fn check(seed: u64) -> Result<(), String> {
    let mut rng = rng_for(seed);
    let events = recording(&mut rng);

    // 1. Well-formed by construction: must replay and export cleanly.
    let spans = replay_spans(&events).map_err(|e| format!("clean recording rejected: {e}"))?;
    let starts = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::SpanStart { .. }))
        .count();
    if spans.len() != starts {
        return Err(format!(
            "replay produced {} spans from {starts} span starts",
            spans.len()
        ));
    }
    to_chrome_trace(&events).map_err(|e| format!("chrome export of clean recording: {e}"))?;

    // Exact JSONL round-trip.
    let text = to_jsonl(&events);
    let parsed = from_jsonl(&text).map_err(|e| format!("reparse of own serialisation: {e}"))?;
    if parsed != events {
        let diverged = parsed
            .iter()
            .zip(&events)
            .position(|(a, b)| a != b)
            .map_or_else(|| "length".to_string(), |i| format!("event {i}"));
        return Err(format!(
            "JSONL round-trip changed the recording ({diverged})"
        ));
    }

    // 2+3. Mutated document: typed outcome, and closure on acceptance.
    let mut corrupted = text.into_bytes();
    mutate_bytes(&mut rng, &mut corrupted);
    let corrupted = String::from_utf8_lossy(&corrupted);
    if let Ok(survivors) = from_jsonl(&corrupted) {
        // The parser accepted it, so the serialiser must be able to take it
        // back — and its output must parse to the same number of events.
        let reserialised = to_jsonl(&survivors);
        let again = from_jsonl(&reserialised)
            .map_err(|e| format!("serialiser emitted an unparseable document: {e}"))?;
        if again.len() != survivors.len() {
            return Err(format!(
                "re-serialisation changed the event count: {} -> {}",
                survivors.len(),
                again.len()
            ));
        }
        // Span structure is content, not framing: a mutated recording may
        // legitimately fail to replay, but only with a typed error.
        let _ = replay_spans(&survivors);
        let _ = to_chrome_trace(&survivors);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_for_a_small_seed_sample() {
        for seed in 0..50 {
            check(seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn recordings_are_deterministic_and_non_trivial() {
        let a = recording(&mut rng_for(7));
        let b = recording(&mut rng_for(7));
        assert_eq!(a, b);
        assert!(a.len() >= 8);
        // The generator exercises the span machinery, not just flat events.
        let any_span = (0..20).any(|s| {
            recording(&mut rng_for(s))
                .iter()
                .any(|e| matches!(e.kind, EventKind::SpanStart { .. }))
        });
        assert!(any_span);
    }
}
