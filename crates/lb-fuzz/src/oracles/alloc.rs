//! Allocation oracle: Theorem 2.1's closed form, three ways.
//!
//! For one random system (2–12 machines, latency parameters spread up to
//! 10¹²) the oracle demands that
//!
//! 1. [`pr_allocate`] agrees with the double-double reference
//!    [`pr_rates_dd`] to 1e-9 relative error per machine, and its output
//!    passes back through the [`Allocation::new`] feasibility gate;
//! 2. [`optimal_latency_linear`] agrees with [`optimal_latency_dd`];
//! 3. the KKT bisection solver [`solve_convex`] over `Linear` latency
//!    functions lands on the same allocation (to its own tolerance) —
//!    two independent derivations of the same optimum.

use crate::extended::{optimal_latency_dd, pr_rates_dd};
use crate::generate::{arrival_rate, latency_values, rng_for, spread_half_width};
use crate::oracles::close;
use lb_core::{
    optimal_latency_linear, pr_allocate, solve_convex, Allocation, ConvexSolverOptions, Linear,
};
use lb_stats::Rng;

/// Runs one allocation-oracle iteration.
///
/// # Errors
/// Returns a description of the first disagreement found.
pub fn check(seed: u64) -> Result<(), String> {
    let mut rng = rng_for(seed);
    let half_width = spread_half_width(&mut rng);
    #[allow(clippy::cast_possible_truncation)]
    let n = 2 + rng.next_below(11) as usize;
    let values = latency_values(&mut rng, n, half_width);
    let r = arrival_rate(&mut rng);

    let alloc = pr_allocate(&values, r).map_err(|e| format!("pr_allocate failed: {e}"))?;

    // The closed form's own output must survive re-validation: this is the
    // feasibility-tolerance bug class (naive sum + absolute window).
    Allocation::new(alloc.rates().to_vec(), r)
        .map_err(|e| format!("PR output rejected by feasibility gate: {e}"))?;

    let want_rates = pr_rates_dd(&values, r);
    for (i, (&got, &want)) in alloc.rates().iter().zip(&want_rates).enumerate() {
        if !close(got, want, want) {
            return Err(format!(
                "rate[{i}] = {got:e} vs dd reference {want:e} (t = {:e}, r = {r:e})",
                values[i]
            ));
        }
    }

    let got_latency =
        optimal_latency_linear(&values, r).map_err(|e| format!("optimal_latency_linear: {e}"))?;
    let want_latency = optimal_latency_dd(&values, r);
    if !close(got_latency, want_latency, want_latency) {
        return Err(format!(
            "L* = {got_latency:e} vs dd reference {want_latency:e} (r = {r:e})"
        ));
    }

    // Independent derivation: KKT bisection. For linear latencies the
    // solver's inverse-marginal is exactly proportional to 1/t_i, so after
    // its conservation rescale it must reproduce the closed form tightly.
    let fns: Vec<Linear> = values.iter().map(|&t| Linear::new(t)).collect();
    let refs: Vec<&Linear> = fns.iter().collect();
    let solved = solve_convex(&refs, r, ConvexSolverOptions::default())
        .map_err(|e| format!("solve_convex failed on a valid linear system: {e}"))?;
    for (i, (&got, &want)) in solved.rates().iter().zip(alloc.rates()).enumerate() {
        if (got - want).abs() > 1e-6 * want.abs().max(1e-300) {
            return Err(format!(
                "solver rate[{i}] = {got:e} vs closed form {want:e}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_for_a_small_seed_sample() {
        for seed in 0..50 {
            check(seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
