//! Recovery oracle: crash-at-every-boundary differential check.
//!
//! One iteration drives a random journalled round to completion without
//! interruption and records the outcome plus the journal bytes. It then
//! crashes the coordinator at *every* record boundary of that journal —
//! and at a handful of random mid-record byte offsets, which model torn
//! writes — recovers via [`recover_round`], finishes the round exactly as
//! the driver would, and asserts the recovered outcome is bit-identical to
//! the uninterrupted run:
//!
//! * allocation rates, execution estimates and payments match `to_bits`
//!   for every machine (payments are *restored*, never recomputed, so a
//!   crash after `PaymentsCommitted` cannot even in principle drift);
//! * the exclusion set and the anomaly count match exactly;
//! * a duplicate of an already-journalled bid delivered *after* recovery
//!   degrades to an anomaly without perturbing the settled outcome.
//!
//! The scenario space covers quarantined machines (excluded up front, as a
//! session would), silent machines (never bid — excluded by the bid
//! timeout) and machines whose completion acks are lost (settled by the
//! execution timeout), so every crash point lands in every phase the
//! coordinator can durably occupy.

use crate::generate::{node_specs, rng_for};
use lb_mechanism::CompensationBonusMechanism;
use lb_proto::{
    read_journal, recover_round, Coordinator, CoordinatorPhase, Journal, JournalReplay, MemJournal,
    Message, NodeSpec, RoundContext, RoundId,
};
use lb_sim::driver::SimulationConfig;
use lb_sim::server::ServiceModel;
use lb_stats::Rng;
use lb_telemetry::noop_collector;
use std::cell::RefCell;
use std::rc::Rc;

/// How many random (possibly mid-record) truncation points to try on top
/// of the exhaustive record-boundary sweep.
const RANDOM_CUTS: usize = 3;

fn sim_config(seed: u64) -> SimulationConfig {
    SimulationConfig {
        horizon: 50.0,
        seed,
        model: ServiceModel::StationaryDeterministic,
        workload: Default::default(),
        warmup: 0.0,
        estimator: lb_sim::estimator::EstimatorConfig::default(),
    }
}

/// The bit-level fingerprint of a finished round.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Outcome {
    rates: Vec<u64>,
    estimates: Vec<u64>,
    payments: Vec<u64>,
    excluded: Vec<bool>,
    anomalies: u64,
    sealed: bool,
}

fn outcome_of(c: &Coordinator<'_>, n: usize) -> Result<Outcome, String> {
    let allocation = c.allocation().ok_or("finished round has no allocation")?;
    let estimates = c
        .estimated_exec_values()
        .ok_or("finished round has no estimates")?;
    let payments = c.payments().ok_or("finished round has no payments")?;
    Ok(Outcome {
        rates: (0..n).map(|i| allocation.rate(i).to_bits()).collect(),
        estimates: estimates.iter().map(|v| v.to_bits()).collect(),
        payments: payments.iter().map(|v| v.to_bits()).collect(),
        excluded: c.excluded().to_vec(),
        anomalies: c.anomalies().total(),
        sealed: c.is_sealed(),
    })
}

/// The random shape of one scenario. `quarantined + silent` is capped at
/// `n - 2` so at least two machines always respond and the round settles.
struct Scenario {
    quarantined: Vec<bool>,
    silent: Vec<bool>,
    lost_ack: Vec<bool>,
}

fn scenario(rng: &mut impl Rng, n: usize) -> Scenario {
    let mut quarantined = vec![false; n];
    let mut silent = vec![false; n];
    let mut lost_ack = vec![false; n];
    let mut budget = n - 2;
    for q in &mut quarantined {
        if budget > 0 && rng.next_bool(0.25) {
            *q = true;
            budget -= 1;
        }
    }
    for i in 0..n {
        if !quarantined[i] && budget > 0 && rng.next_bool(0.25) {
            silent[i] = true;
            budget -= 1;
        }
    }
    for i in 0..n {
        if !quarantined[i] && !silent[i] && rng.next_bool(0.25) {
            lost_ack[i] = true;
        }
    }
    Scenario {
        quarantined,
        silent,
        lost_ack,
    }
}

/// Plays the driver's role: answers the coordinator's outgoing messages
/// (silent machines never bid, lost-ack machines never acknowledge), fires
/// the phase timeouts when the round stalls, and seals on completion.
fn finish(
    c: &mut Coordinator<'_>,
    mut pending: Vec<(u32, Message)>,
    specs: &[NodeSpec],
    actual: &[f64],
    sc: &Scenario,
    round: RoundId,
) -> Result<(), String> {
    loop {
        let mut next = Vec::new();
        for (machine, message) in pending {
            let i = machine as usize;
            let reply = match message {
                Message::RequestBid { .. } if !sc.silent[i] => Some(Message::Bid {
                    round,
                    machine,
                    value: specs[i].bid,
                }),
                Message::Assign { .. } if !sc.lost_ack[i] => {
                    Some(Message::ExecutionDone { round, machine })
                }
                _ => None,
            };
            if let Some(reply) = reply {
                next.extend(
                    c.handle(&reply, actual)
                        .map_err(|e| format!("handle: {e}"))?,
                );
            }
        }
        if next.is_empty() {
            match c.phase() {
                CoordinatorPhase::CollectingBids => {
                    next = c
                        .close_bidding(actual)
                        .map_err(|e| format!("close_bidding: {e}"))?;
                }
                CoordinatorPhase::Executing => {
                    next = c
                        .close_execution()
                        .map_err(|e| format!("close_execution: {e}"))?;
                }
                _ => break,
            }
        }
        pending = next;
    }
    c.seal().map_err(|e| format!("seal: {e}"))
}

/// Runs one recovery-oracle iteration.
///
/// # Errors
/// Returns a description of the first crash point whose recovered outcome
/// diverges from the uninterrupted run.
pub fn check(seed: u64) -> Result<(), String> {
    let mut rng = rng_for(seed);
    #[allow(clippy::cast_possible_truncation)]
    let n = 3 + rng.next_below(4) as usize;
    let specs = node_specs(&mut rng, n);
    let sc = scenario(&mut rng, n);
    let total_rate = rng.next_range(1.0, 50.0);
    let sim = sim_config(rng.next_u64());
    let round = RoundId(0);
    let actual: Vec<f64> = specs.iter().map(|s| s.exec_value).collect();
    let mech = CompensationBonusMechanism::paper();

    // Uninterrupted reference run, journalled.
    let journal = Rc::new(RefCell::new(MemJournal::new()));
    let mut c = Coordinator::new(&mech, n, total_rate, round, sim)
        .with_journal(Rc::clone(&journal) as Rc<RefCell<dyn Journal>>);
    for (i, &q) in sc.quarantined.iter().enumerate() {
        if q {
            c.exclude(i).map_err(|e| format!("exclude: {e}"))?;
        }
    }
    let opening: Vec<(u32, Message)> = (0..n)
        .filter(|&i| !sc.quarantined[i])
        .map(|i| {
            #[allow(clippy::cast_possible_truncation)]
            let machine = i as u32;
            (machine, Message::RequestBid { round })
        })
        .collect();
    finish(&mut c, opening, &specs, &actual, &sc, round)?;
    let reference = outcome_of(&c, n)?;
    let bytes = journal
        .borrow()
        .bytes()
        .map_err(|e| format!("bytes: {e}"))?;

    // Crash points: every clean record boundary, plus random byte offsets
    // that usually land mid-record and exercise torn-tail truncation.
    let mut cuts = JournalReplay::boundaries(&bytes);
    for _ in 0..RANDOM_CUTS {
        #[allow(clippy::cast_possible_truncation)]
        cuts.push(rng.next_below(bytes.len() as u64 + 1) as usize);
    }

    let ctx = RoundContext {
        n,
        total_rate,
        round,
        sim,
    };
    for cut in cuts {
        // A torn tail is what the backends truncate on revival; mirror that
        // before handing the prefix to recovery.
        let valid = read_journal(&bytes[..cut])
            .map_err(|e| format!("cut {cut}: read: {e}"))?
            .valid_len;
        let j: Rc<RefCell<dyn Journal>> = Rc::new(RefCell::new(MemJournal::from_bytes(
            bytes[..valid].to_vec(),
        )));
        let (mut rc, _report) = recover_round(&mech, j, &ctx, noop_collector(), 0.0)
            .map_err(|e| format!("cut {cut}: recover: {e}"))?;
        // The session re-asserts quarantine on recovery; idempotent when the
        // exclusions were already journalled.
        if rc.phase() == CoordinatorPhase::CollectingBids {
            for (i, &q) in sc.quarantined.iter().enumerate() {
                if q {
                    rc.exclude(i)
                        .map_err(|e| format!("cut {cut}: exclude: {e}"))?;
                }
            }
        }
        let pending = rc
            .resume(&actual)
            .map_err(|e| format!("cut {cut}: resume: {e}"))?;
        finish(&mut rc, pending, &specs, &actual, &sc, round)
            .map_err(|e| format!("cut {cut}: {e}"))?;
        let got = outcome_of(&rc, n).map_err(|e| format!("cut {cut}: {e}"))?;
        if got != reference {
            return Err(format!(
                "cut {cut}: recovered outcome diverged:\n  got  {got:?}\n  want {reference:?}"
            ));
        }

        // Exactly-once absorption: a duplicate of a bid the journal already
        // holds must degrade to an anomaly, not perturb the settled round.
        if let Some(r) = (0..n).find(|&i| !sc.quarantined[i] && !sc.silent[i]) {
            #[allow(clippy::cast_possible_truncation)]
            let machine = r as u32;
            let replies = rc
                .handle(
                    &Message::Bid {
                        round,
                        machine,
                        value: specs[r].bid,
                    },
                    &actual,
                )
                .map_err(|e| format!("cut {cut}: duplicate bid: {e}"))?;
            if !replies.is_empty() {
                return Err(format!(
                    "cut {cut}: duplicate bid after sealing produced {} replies",
                    replies.len()
                ));
            }
            let after = outcome_of(&rc, n).map_err(|e| format!("cut {cut}: {e}"))?;
            if after.anomalies != reference.anomalies + 1 {
                return Err(format!(
                    "cut {cut}: duplicate bid counted {} anomalies, want {}",
                    after.anomalies,
                    reference.anomalies + 1
                ));
            }
            if after.payments != reference.payments || after.rates != reference.rates {
                return Err(format!(
                    "cut {cut}: duplicate bid perturbed the settled outcome"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_for_a_small_seed_sample() {
        for seed in 0..25 {
            check(seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
