//! Differential oracle for the `lb-prof` cross-shard rollup.
//!
//! Three properties per iteration, all on seed-derived inputs:
//!
//! 1. **Merge exactness** — a population of wall-times is split across a
//!    random shard partition; every per-shard sketch must survive a wire
//!    round-trip bit-identically, the shard sketches merged through
//!    [`RoundProfiler::ingest_shard`] must answer every quantile read
//!    *bitwise* equal to a sketch built from the whole population (the
//!    histogram merge is bin addition, so partitioning must be
//!    unobservable), and reads must track the exact nearest-rank quantile
//!    within the documented [`SKETCH_RTOL`].
//! 2. **Frame validation** — one random corruption (NaN moments, foreign
//!    histogram geometry, truncated bins, stats/histogram count mismatch)
//!    must be rejected by the typed decoder, and a rejected frame must
//!    leave the rollup untouched.
//! 3. **Profile document robustness** — a synthetic [`RoundProfile`]
//!    round-trips through its JSONL codec exactly, and byte-mutated
//!    documents parse to a typed error or a valid profile, never a panic.

use crate::generate::{mutate_bytes, rng_for};
use lb_prof::{
    from_jsonl, to_jsonl, LatencySketch, PathNode, RoundProfile, RoundProfiler, Straggler,
    WireShardProfile, SKETCH_BINS, SKETCH_RTOL,
};
use lb_stats::{nearest_rank, Rng, Xoshiro256StarStar};

/// Quantiles every iteration reads back; edges included deliberately —
/// they must degrade to the exact extrema.
const PROBES: [f64; 6] = [0.0, 0.25, 0.5, 0.9, 0.99, 1.0];

fn wall_times(rng: &mut Xoshiro256StarStar, n: usize) -> Vec<f64> {
    // Machine verification wall-times: log-uniform across microseconds to
    // tens of seconds, the plausible range of the sketch's use.
    (0..n)
        .map(|_| 10f64.powf(rng.next_range(-6.0, 1.0)))
        .collect()
}

fn merge_exactness(rng: &mut Xoshiro256StarStar) -> Result<(), String> {
    let n = 1 + rng.next_below(300) as usize;
    let values = wall_times(rng, n);
    let whole = LatencySketch::from_slice(&values);

    let shards = 1 + rng.next_below(8) as u32;
    let mut parts: Vec<Vec<f64>> = vec![Vec::new(); shards as usize];
    for &v in &values {
        parts[rng.next_below(u64::from(shards)) as usize].push(v);
    }

    let mut profiler = RoundProfiler::new();
    for (shard, part) in parts.iter().enumerate() {
        let sketch = LatencySketch::from_slice(part);
        let wire = sketch.to_wire();
        let back = LatencySketch::from_wire(&wire)
            .map_err(|e| format!("clean frame rejected (shard {shard}): {e}"))?;
        if back != sketch {
            return Err(format!("wire round-trip not identity (shard {shard})"));
        }
        let slowest = part
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite wall-times"))
            .map(|(i, &w)| (i as u64, w));
        #[allow(clippy::cast_possible_truncation)]
        let frame = WireShardProfile {
            shard: shard as u32,
            machines: part.len() as u64,
            machine_wall: wire,
            slowest,
        };
        profiler
            .ingest_shard(&frame, slowest)
            .map_err(|e| format!("clean ingest rejected (shard {shard}): {e}"))?;
    }

    let fleet = profiler.rollup().fleet_machine();
    if fleet.count() != whole.count() {
        return Err(format!(
            "fleet count {} != population count {}",
            fleet.count(),
            whole.count()
        ));
    }
    for q in PROBES {
        let (m, w) = (fleet.quantile(q), whole.quantile(q));
        if m.to_bits() != w.to_bits() {
            return Err(format!(
                "merged q{q} = {m:e} differs from whole-population {w:e}"
            ));
        }
    }

    // Accuracy against the exact order statistic, at a seed-dependent q.
    let mut sorted = values;
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite wall-times"));
    let q = rng.next_range(0.01, 0.99);
    let exact = sorted[nearest_rank(q, sorted.len()) - 1];
    let approx = fleet.quantile(q);
    let rel = (approx - exact).abs() / exact;
    if rel > SKETCH_RTOL {
        return Err(format!(
            "q{q:.3} read {approx:e} vs exact {exact:e}: rel {rel:.4} > {SKETCH_RTOL}"
        ));
    }
    Ok(())
}

fn frame_validation(rng: &mut Xoshiro256StarStar) -> Result<(), String> {
    let n = 2 + rng.next_below(30) as usize;
    let values = wall_times(rng, n);
    let good = LatencySketch::from_slice(&values).to_wire();
    let mut bad = good.clone();
    let class = match rng.next_below(4) {
        0 => {
            bad.mean = f64::NAN;
            "NaN mean"
        }
        1 => {
            bad.log_hi = 9.0;
            "foreign geometry"
        }
        2 => {
            bad.bins
                .truncate(rng.next_below(SKETCH_BINS as u64) as usize);
            "truncated bins"
        }
        _ => {
            bad.count += 1 + rng.next_below(5);
            bad.m2 = 0.1;
            "count mismatch"
        }
    };
    if LatencySketch::from_wire(&bad).is_ok() {
        return Err(format!("corrupt frame ({class}) accepted"));
    }
    // A rejected frame must not perturb the rollup.
    let mut profiler = RoundProfiler::new();
    profiler
        .ingest_shard(
            &WireShardProfile {
                shard: 0,
                machines: values.len() as u64,
                machine_wall: good,
                slowest: None,
            },
            None,
        )
        .map_err(|e| format!("clean frame rejected: {e}"))?;
    let before = profiler.rollup().clone();
    let corrupt = WireShardProfile {
        shard: 1,
        machines: 1,
        machine_wall: bad,
        slowest: None,
    };
    if profiler.ingest_shard(&corrupt, None).is_ok() {
        return Err(format!("corrupt shard frame ({class}) ingested"));
    }
    if *profiler.rollup() != before {
        return Err(format!("rejected frame ({class}) mutated the rollup"));
    }
    Ok(())
}

fn synthetic_profile(rng: &mut Xoshiro256StarStar) -> RoundProfile {
    let round_wall = 10f64.powf(rng.next_range(-3.0, 1.0));
    let mut path = vec![PathNode {
        name: "round".to_string(),
        depth: 0,
        start: 0.0,
        end: round_wall,
        self_time: round_wall * rng.next_f64() * 0.1,
        blocked_time: round_wall * rng.next_f64() * 0.9,
        shard: None,
        machine: None,
    }];
    let mut cursor = 0.0;
    for phase in ["collect", "allocate", "execute", "settle"] {
        let dur = round_wall * rng.next_range(0.05, 0.2);
        path.push(PathNode {
            name: format!("phase.{phase}"),
            depth: 1,
            start: cursor,
            end: cursor + dur,
            self_time: dur * rng.next_f64(),
            blocked_time: dur * rng.next_f64(),
            shard: rng.next_bool(0.5).then(|| rng.next_below(8)),
            machine: rng.next_bool(0.2).then(|| rng.next_below(1000)),
        });
        cursor += dur;
    }
    let stragglers = (0..rng.next_below(4))
        .map(|_| Straggler {
            phase: "phase.execute".to_string(),
            shard: rng.next_below(8),
            duration: round_wall * rng.next_f64(),
        })
        .collect();
    RoundProfile {
        round_wall,
        coverage: cursor / round_wall,
        path,
        stragglers,
    }
}

fn document_robustness(rng: &mut Xoshiro256StarStar) -> Result<(), String> {
    let profiles: Vec<RoundProfile> = (0..1 + rng.next_below(3))
        .map(|_| synthetic_profile(rng))
        .collect();
    let text = to_jsonl(&profiles);
    let back = from_jsonl(&text).map_err(|e| format!("clean profile JSONL rejected: {e}"))?;
    if back != profiles {
        return Err("profile JSONL round-trip not identity".to_string());
    }
    // Byte mutation: the parser must answer with a typed error or a valid
    // document — the catch_unwind harness turns any panic into a finding.
    let mut bytes = text.into_bytes();
    mutate_bytes(rng, &mut bytes);
    let mutated = String::from_utf8_lossy(&bytes);
    match from_jsonl(&mutated) {
        Ok(profiles) => {
            for p in &profiles {
                let _ = p.render_text();
                let _ = p.to_json().render();
            }
        }
        Err(e) => {
            let _ = e.to_string();
        }
    }
    Ok(())
}

/// One iteration: merge exactness, frame validation, document robustness.
///
/// # Errors
/// A description of the first violated property.
pub fn check(seed: u64) -> Result<(), String> {
    let mut rng = rng_for(seed);
    merge_exactness(&mut rng)?;
    frame_validation(&mut rng)?;
    document_robustness(&mut rng)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_seed_sample_passes() {
        for seed in 0..40 {
            check(seed).unwrap();
        }
    }

    #[test]
    fn synthetic_profiles_round_trip() {
        let mut rng = rng_for(11);
        let p = synthetic_profile(&mut rng);
        let back = from_jsonl(&to_jsonl(&[p.clone()])).unwrap();
        assert_eq!(back, vec![p]);
    }
}
