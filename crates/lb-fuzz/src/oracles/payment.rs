//! Payment oracle: Definition 3.3's `P_i = C_i + B_i`, brute-forced at
//! double-double precision.
//!
//! The bonus `B_i = L_{-i}(b_{-i}) − L(x(b), t̃)` is a difference of two
//! near-equal totals whenever one machine contributes little, so the honest
//! error measure is relative to the *magnitudes being cancelled*, not to the
//! difference: the oracle enforces
//! `|got − ref| ≤ 1e-9 · max(|C_i|, |L_{-i}|, |L|)`. Both sides consume the
//! same bids/rates/execution values — the comparison isolates arithmetic
//! error in the production kernel, which must stay ~seven orders of
//! magnitude below the budget thanks to compensated summation.
//!
//! Since the batch leave-one-out kernel landed, each iteration additionally
//! cross-checks **three independent `L_{-i}` pipelines** — the production
//! batch (`LeaveOneOut`, one dd harmonic sum, subtractive residual), the
//! legacy per-agent rebuild (`optimal_latency_excluding_legacy`, fresh `Vec`
//! + compensated f64 re-sum) and the brute-force double-double reference —
//! plus the production cancellation-free marginal closed form against the
//! dd subtractive marginal.

use crate::extended::{
    marginal_contribution_dd, optimal_latency_excluding_dd, total_latency_dd, TwoF64,
};
use crate::generate::{arrival_rate, latency_values, rng_for, spread_half_width};
use crate::oracles::REL_TOL;
use lb_core::allocation::optimal_latency_excluding_legacy;
use lb_core::LeaveOneOut;
use lb_mechanism::traits::ValuationModel;
use lb_mechanism::CompensationBonusMechanism;
use lb_stats::Rng;

/// Runs one payment-oracle iteration.
///
/// # Errors
/// Returns a description of the first disagreement found.
pub fn check(seed: u64) -> Result<(), String> {
    let mut rng = rng_for(seed);
    let half_width = spread_half_width(&mut rng);
    #[allow(clippy::cast_possible_truncation)]
    let n = 2 + rng.next_below(9) as usize;
    let true_values = latency_values(&mut rng, n, half_width);
    // Strategic bids around the truth (×10^[-0.3, 0.6]) and lazy execution
    // (t̃ = t · [1, 3]): the payment formula must hold off the truthful path.
    let bids: Vec<f64> = true_values
        .iter()
        .map(|&t| t * 10f64.powf(rng.next_range(-0.3, 0.6)))
        .collect();
    let exec_values: Vec<f64> = true_values
        .iter()
        .map(|&t| t * rng.next_range(1.0, 3.0))
        .collect();
    let r = arrival_rate(&mut rng);
    let mech = if rng.next_bool(0.5) {
        CompensationBonusMechanism::paper()
    } else {
        CompensationBonusMechanism::contributed()
    };

    let alloc = lb_core::pr_allocate(&bids, r).map_err(|e| format!("pr_allocate: {e}"))?;
    let breakdown = mech
        .payment_breakdown(&bids, &alloc, &exec_values, r)
        .map_err(|e| format!("payment_breakdown failed on valid profile: {e}"))?;

    let actual_latency_dd = total_latency_dd(alloc.rates(), &exec_values);
    for (i, b) in breakdown.iter().enumerate() {
        let x = alloc.rate(i);
        // C_i = −V_i at double-double precision.
        let comp_dd = match mech.valuation {
            ValuationModel::PerJobLatency => TwoF64::from_f64(exec_values[i]).mul_f64(x),
            ValuationModel::ContributedLatency => {
                TwoF64::from_f64(x).mul_f64(x).mul_f64(exec_values[i])
            }
        };
        let without_i = optimal_latency_excluding_dd(&bids, i, r);
        let want = comp_dd
            .add_f64(without_i)
            .add_f64(-actual_latency_dd)
            .value();
        let scale = comp_dd
            .value()
            .abs()
            .max(without_i.abs())
            .max(actual_latency_dd.abs());
        let got = b.total();
        if (got - want).abs() > REL_TOL * scale.max(1e-300) {
            return Err(format!(
                "P[{i}] = {got:e} vs dd reference {want:e} \
                 (C = {:e}, L_-i = {without_i:e}, L = {actual_latency_dd:e}, r = {r:e})",
                comp_dd.value()
            ));
        }
        // The compensation component alone must also match (it is what the
        // settlement audit refunds; a bonus-side error must not hide in it).
        if (b.compensation - comp_dd.value()).abs() > REL_TOL * comp_dd.value().abs().max(1e-300) {
            return Err(format!(
                "C[{i}] = {:e} vs dd reference {:e}",
                b.compensation,
                comp_dd.value()
            ));
        }
    }

    // Three-way leave-one-out cross-check: batch vs legacy vs dd, plus the
    // cancellation-free marginal closed form vs the dd subtractive marginal.
    let loo = LeaveOneOut::compute(&bids, r)
        .map_err(|e| format!("LeaveOneOut failed on valid profile: {e}"))?;
    for i in 0..bids.len() {
        let batch = loo.excluding(i);
        let legacy = optimal_latency_excluding_legacy(&bids, i, r)
            .map_err(|e| format!("legacy L_-[{i}] failed on valid profile: {e}"))?;
        let dd = optimal_latency_excluding_dd(&bids, i, r);
        if (batch - dd).abs() > REL_TOL * dd.abs().max(1e-300) {
            return Err(format!(
                "L_-[{i}] batch {batch:e} vs dd reference {dd:e} (r = {r:e})"
            ));
        }
        if (batch - legacy).abs() > REL_TOL * dd.abs().max(1e-300) {
            return Err(format!(
                "L_-[{i}] batch {batch:e} vs legacy per-agent {legacy:e} (r = {r:e})"
            ));
        }
        // The marginal is judged relative to itself: the closed form is
        // cancellation-free, so it must track the dd reference tightly even
        // when the marginal sits far below L_{-i}.
        let marginal_dd = marginal_contribution_dd(&bids, i, r);
        if (loo.marginal(i) - marginal_dd).abs() > REL_TOL * marginal_dd.abs().max(1e-300) {
            return Err(format!(
                "marginal[{i}] closed form {:e} vs dd reference {marginal_dd:e} (r = {r:e})",
                loo.marginal(i)
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_for_a_small_seed_sample() {
        for seed in 0..50 {
            check(seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
