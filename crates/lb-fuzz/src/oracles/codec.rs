//! Codec oracle: wire-format round-trips and byte-level corruption.
//!
//! Three properties, in increasing order of hostility:
//!
//! 1. **Round-trip**: `decode(encode(m)) == m` for random messages.
//! 2. **Framing**: a stream of frames survives arbitrary re-fragmentation
//!    through [`FrameReader`].
//! 3. **Corruption**: after random byte mutations, decoding must return a
//!    typed error or a (possibly different) valid message — never panic,
//!    never hang, never emit more frames than the stream can hold. The
//!    length-prefix bound bugs live exactly here.

use crate::generate::{message, mutate_bytes, rng_for};
use lb_proto::{decode, encode, FrameReader, FrameWriter, Message};
use lb_stats::Rng;

/// Runs one codec-oracle iteration.
///
/// # Errors
/// Returns a description of the first violated property.
pub fn check(seed: u64) -> Result<(), String> {
    let mut rng = rng_for(seed);
    let count = 1 + rng.next_below(8);
    let msgs: Vec<Message> = (0..count).map(|_| message(&mut rng)).collect();

    // 1. Plain round-trip.
    for m in &msgs {
        let bytes = encode(m).map_err(|e| format!("encode failed: {e}"))?;
        let back: Message = decode(&bytes).map_err(|e| format!("decode of own encoding: {e}"))?;
        if back != *m {
            return Err(format!("round-trip changed the message: {m:?} -> {back:?}"));
        }
    }

    // 2. Framed stream under random fragmentation.
    let mut writer = FrameWriter::new();
    for m in &msgs {
        writer.write(m).map_err(|e| format!("frame write: {e}"))?;
    }
    let stream = writer.take();
    let mut reader = FrameReader::new();
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < stream.len() {
        #[allow(clippy::cast_possible_truncation)]
        let chunk = 1 + rng.next_below(16) as usize;
        let end = (pos + chunk).min(stream.len());
        reader.feed(&stream[pos..end]);
        pos = end;
        while let Some(m) = reader
            .next_frame::<Message>()
            .map_err(|e| format!("clean stream rejected: {e}"))?
        {
            out.push(m);
        }
    }
    if out != msgs {
        return Err(format!(
            "framed stream re-ordered or lost messages: {} of {count}",
            out.len()
        ));
    }

    // 3. Mutated stream: every outcome except panic/runaway is acceptable.
    let mut corrupted = stream.to_vec();
    mutate_bytes(&mut rng, &mut corrupted);
    let mut reader = FrameReader::new();
    reader.feed(&corrupted);
    // Each accepted frame consumes ≥ 4 bytes, so this bounds the loop.
    let max_frames = corrupted.len() / 4 + 1;
    let mut produced = 0;
    loop {
        match reader.next_frame::<Message>() {
            Ok(Some(_)) => {
                produced += 1;
                if produced > max_frames {
                    return Err(format!(
                        "reader produced {produced} frames from a {}-byte corrupted stream",
                        corrupted.len()
                    ));
                }
            }
            Ok(None) | Err(_) => break,
        }
    }

    // Raw noise straight into the decoder: typed result either way.
    #[allow(clippy::cast_possible_truncation)]
    let noise: Vec<u8> = (0..rng.next_below(64))
        .map(|_| rng.next_u64() as u8)
        .collect();
    let _ = decode::<Message>(&noise);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_for_a_small_seed_sample() {
        for seed in 0..50 {
            check(seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
