//! The differential oracles.
//!
//! Each submodule exposes `check(seed) -> Result<(), String>`: generate one
//! structured input from the seed, run the production kernel and an
//! independent reference (double-double arithmetic, a second solver, or an
//! invariant set), and report any disagreement. The harness treats both
//! `Err` and contained panics as findings.

pub mod alloc;
pub mod audit;
pub mod codec;
pub mod online;
pub mod payment;
pub mod prof;
pub mod recovery;
pub mod session;
pub mod shard;
pub mod telemetry;

/// Relative-error budget the numerical oracles enforce against the
/// double-double references (the acceptance bar for spreads up to 10¹²).
pub const REL_TOL: f64 = 1e-9;

/// `|got − want| ≤ REL_TOL · scale` with an explicit magnitude scale.
pub(crate) fn close(got: f64, want: f64, scale: f64) -> bool {
    (got - want).abs() <= REL_TOL * scale.abs().max(1e-300)
}
