//! In-tree deterministic fuzzing for the `lbmv` workspace.
//!
//! A conventional fuzzer needs an external engine and a corpus; this crate
//! needs neither. It is **seed-deterministic** (every iteration's inputs
//! derive from `derive_seed(base, i)`, so any finding is a single `u64` to
//! reproduce), **structure-aware** (inputs are generated directly in the
//! domain — latency parameters by magnitude class, protocol messages,
//! chaos schedules — instead of raw bytes), and **differential**: each
//! oracle compares a production kernel against an independent reference
//! that cannot share its bugs.
//!
//! The ten oracles (see [`harness::registry`]):
//!
//! * `alloc` — the PR closed form ([Theorem 2.1]) vs. the KKT bisection
//!   solver vs. a double-double reference, on spreads up to 10¹².
//! * `payment` — compensation-and-bonus payments (Def. 3.3) vs. a
//!   brute-force `C_i + B_i` at ≈106-bit precision.
//! * `codec` — wire-format and framing round-trips, plus byte-mutation
//!   robustness of the length-prefixed decoder.
//! * `session` — full chaos protocol rounds against their seed-independent
//!   invariants (conservation, voluntary participation, message bounds,
//!   bit-exact replay).
//! * `telemetry` — JSONL recording round-trips, span-forest replay and
//!   byte-mutation robustness of the telemetry parser (typed errors, never
//!   panics).
//! * `recovery` — crash the journalled coordinator at every record
//!   boundary (plus random torn-write byte offsets), recover, finish the
//!   round, and demand a bit-identical outcome to the uninterrupted run.
//! * `shard` — the hierarchical sharded coordinator against the
//!   single-coordinator lossy runtime on random populations, shard counts
//!   and fault plans (bit-identical allocations, payments, estimates and
//!   exclusions), plus crash-recovery of journalled sharded rounds at
//!   sampled record boundaries.
//! * `audit` — the verification-observability stack both ways: a clean
//!   round raises no monitor violations and verifies an intact ledger,
//!   while an injected skimmed payment, a CRC-fixed journal byte flip and
//!   a violated Theorem 3.2 floor must each be flagged.
//! * `prof` — the cross-shard telemetry rollup: sketches split across a
//!   random shard partition must merge to bitwise the same quantile reads
//!   as a whole-population recompute, corrupt profile frames must be
//!   rejected without perturbing the rollup, and profile JSONL documents
//!   must round-trip exactly and survive byte mutation without panicking.
//! * `online` — the streaming mechanism layer: after every churn event the
//!   incrementally maintained harmonic sum and factored allocation must
//!   agree with from-scratch recomputation to 10⁻¹² relative (bit-exact
//!   after a compensated re-sum), the first settle tick must pay out
//!   bit-identically to a batch protocol round on the same population, and
//!   the session's ledger, journal blocks and replay must all be exact.
//!
//! Run from the workspace root:
//!
//! ```text
//! cargo run -p lb-fuzz --release -- --iters 10000 --seed 3405691582
//! ```
//!
//! [Theorem 2.1]: lb_core::pr_allocate

pub mod extended;
pub mod generate;
pub mod harness;
pub mod oracles;

pub use extended::{
    inv_sum_dd, marginal_contribution_dd, optimal_latency_dd, optimal_latency_excluding_dd,
    pr_rates_dd, total_latency_dd, TwoF64,
};
pub use harness::{
    registry, run_all, run_one, run_oracle, FuzzConfig, FuzzFailure, Oracle, OracleReport,
};
