//! Double-double ("two-f64") extended-precision arithmetic.
//!
//! The differential oracles need a reference answer that is *meaningfully*
//! more accurate than the production kernels they judge, without pulling in
//! an arbitrary-precision dependency. A double-double represents a value as
//! an unevaluated sum `hi + lo` of two `f64`s with `|lo| ≤ ulp(hi)/2`,
//! giving ≈ 106 bits of significand — about 10¹⁶ times tighter than the
//! 1e-9 relative-error budget the oracles enforce, so reference error is
//! never the reason a comparison fails.
//!
//! The [`TwoF64`] primitives started life in this module and have been
//! promoted into [`lb_core::numeric`] so the production leave-one-out
//! payment kernel (`lb_core::allocation::LeaveOneOut`) can share them; this
//! module re-exports the type and keeps the oracle-side reference
//! *algorithms* (brute-force rebuilds, end-to-end dd pipelines) that the
//! production crate has no business shipping.

pub use lb_core::numeric::{inv_sum_dd, TwoF64};

/// The PR rates `x_i = r · (1/t_i) / Σ_j 1/t_j` (Theorem 2.1) computed end
/// to end at double-double precision, rounded to `f64` at the very last step.
#[must_use]
pub fn pr_rates_dd(values: &[f64], r: f64) -> Vec<f64> {
    let inv_sum = inv_sum_dd(values);
    values
        .iter()
        .map(|&t| TwoF64::recip(t).mul_f64(r).div(inv_sum).value())
        .collect()
}

/// The optimal total latency `L* = r² / Σ_j 1/t_j` (Theorem 2.1) at
/// double-double precision.
#[must_use]
pub fn optimal_latency_dd(values: &[f64], r: f64) -> f64 {
    TwoF64::from_f64(r)
        .mul_f64(r)
        .div(inv_sum_dd(values))
        .value()
}

/// `L_{-i}`: the optimal latency of the system with machine `exclude`
/// removed, at double-double precision.
///
/// Deliberately *brute-force*: the reciprocals of the surviving machines are
/// re-summed from scratch, never derived by subtracting `1/t_i` from the
/// full sum — so this stays an independent reference for the production
/// batch kernel, which does take the subtractive path.
///
/// # Panics
/// Panics if `exclude` is out of bounds or fewer than two values remain.
#[must_use]
pub fn optimal_latency_excluding_dd(values: &[f64], exclude: usize, r: f64) -> f64 {
    assert!(
        exclude < values.len() && values.len() >= 2,
        "optimal_latency_excluding_dd: bad input"
    );
    let inv_sum = values
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != exclude)
        .fold(TwoF64::ZERO, |acc, (_, &t)| acc.add(TwoF64::recip(t)));
    TwoF64::from_f64(r).mul_f64(r).div(inv_sum).value()
}

/// The marginal contribution `L_{-i} − L*` at double-double precision, via
/// the *subtractive* form over brute-force rebuilt sums.
///
/// At double-double precision the subtraction is harmless up to relative
/// marginals of ~1e-16 of `L_{-i}` (the dd significand has ~32 digits to
/// spend), which is far beyond anything the validated `1e12`-spread domain
/// can produce — so this is a sound independent reference for the
/// production kernel's cancellation-free closed form.
///
/// # Panics
/// Panics if `exclude` is out of bounds or fewer than two values remain.
#[must_use]
pub fn marginal_contribution_dd(values: &[f64], exclude: usize, r: f64) -> f64 {
    assert!(
        exclude < values.len() && values.len() >= 2,
        "marginal_contribution_dd: bad input"
    );
    let without = values
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != exclude)
        .fold(TwoF64::ZERO, |acc, (_, &t)| acc.add(TwoF64::recip(t)));
    let full = inv_sum_dd(values);
    let r2 = TwoF64::from_f64(r).mul_f64(r);
    r2.div(without).sub(r2.div(full)).value()
}

/// The realised total latency `L = Σ_i t̃_i · x_i²` at double-double
/// precision (each term is an exact-product chain before accumulation).
///
/// # Panics
/// Panics if the slices differ in length.
#[must_use]
pub fn total_latency_dd(rates: &[f64], values: &[f64]) -> f64 {
    assert_eq!(
        rates.len(),
        values.len(),
        "total_latency_dd: length mismatch"
    );
    rates
        .iter()
        .zip(values)
        .fold(TwoF64::ZERO, |acc, (&x, &t)| {
            acc.add(TwoF64::from_f64(x).mul_f64(x).mul_f64(t))
        })
        .value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_recovers_what_f64_rounds_away() {
        // In plain f64, (1 + 1e-20) − 1 == 0. The double-double keeps it.
        let a = TwoF64::from_f64(1.0).add_f64(1e-20);
        let diff = a.add_f64(-1.0);
        assert_eq!(diff.value(), 1e-20);
    }

    #[test]
    fn reciprocal_is_accurate_beyond_f64() {
        let third = TwoF64::recip(3.0);
        let one = third.mul_f64(3.0);
        assert!(
            (one.value() - 1.0).abs() < 1e-30,
            "residual {}",
            one.value() - 1.0
        );
        // The trailing term captures the representation error of 1/3.
        assert!(third.lo != 0.0);
    }

    #[test]
    fn inv_sum_matches_exact_dyadic_case() {
        // 1/1 + 1/2 + 1/4 = 1.75 exactly in binary.
        let s = inv_sum_dd(&[1.0, 2.0, 4.0]);
        assert_eq!(s.hi, 1.75);
        assert_eq!(s.lo, 0.0);
    }

    #[test]
    fn optimal_latency_matches_closed_form_on_uniform_system() {
        // n equal machines: Σ 1/t = n/t, L* = r²·t/n.
        let values = [2.0; 5];
        let got = optimal_latency_dd(&values, 10.0);
        assert!((got - 40.0).abs() < 1e-12, "L* = {got}");
    }

    #[test]
    fn pr_rates_conserve_and_stay_proportional() {
        let values = [1.0, 2.0, 5.0, 1e-6, 1e6];
        let r = 20.0;
        let rates = pr_rates_dd(&values, r);
        let total: f64 = rates.iter().sum();
        assert!((total - r).abs() < 1e-9 * r, "sum {total}");
        // x_i · t_i is constant across machines for the PR solution.
        let k = rates[0] * values[0];
        for (x, t) in rates.iter().zip(&values) {
            assert!((x * t - k).abs() < 1e-9 * k, "{} vs {k}", x * t);
        }
    }

    #[test]
    fn excluding_drops_exactly_one_reciprocal() {
        let values = [1.0, 2.0, 4.0];
        let got = optimal_latency_excluding_dd(&values, 0, 10.0);
        // Remaining Σ 1/t = 0.75, L = 100 / 0.75.
        assert!((got - 100.0 / 0.75).abs() < 1e-9);
    }

    #[test]
    fn marginal_contribution_matches_hand_computation() {
        let values = [1.0, 2.0, 4.0];
        // S = 1.75, S_{-0} = 0.75: L_{-0} − L* = 100/0.75 − 100/1.75.
        let got = marginal_contribution_dd(&values, 0, 10.0);
        let want = 100.0 / 0.75 - 100.0 / 1.75;
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }

    #[test]
    fn total_latency_survives_catastrophic_magnitude_spread() {
        // Terms at 1e12 and 1e-12: a naive f64 sum loses the small one
        // entirely; the double-double keeps it to the last bit.
        let rates = [1e6, 1e-6, 1.0];
        let values = [1.0, 1.0, -1e12];
        let got = total_latency_dd(&rates, &values);
        assert_eq!(got, 1e-12);
    }
}
