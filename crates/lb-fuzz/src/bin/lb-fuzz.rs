//! Command-line driver for the deterministic fuzz harness.
//!
//! ```text
//! lb-fuzz [--iters N] [--seed S] [--oracle NAME]... [--raw-seed SEED] [--list]
//! ```
//!
//! `--seed` is the base seed: iteration `i` runs under `derive_seed(seed, i)`.
//! `--raw-seed` bypasses derivation and runs each selected oracle exactly
//! once with that seed — the one-liner for reproducing a reported failure.
//! Exits non-zero if any oracle records a failure.

use lb_fuzz::{registry, run_one, run_oracle, FuzzConfig, Oracle};
use std::process::ExitCode;

struct Args {
    iters: u64,
    seed: u64,
    oracles: Vec<String>,
    raw_seed: Option<u64>,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        iters: 1000,
        seed: 0xCAFE_F00D,
        oracles: Vec::new(),
        raw_seed: None,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--iters" => {
                args.iters = value("--iters")?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--raw-seed" => {
                let v = value("--raw-seed")?
                    .parse()
                    .map_err(|e| format!("--raw-seed: {e}"))?;
                args.raw_seed = Some(v);
            }
            "--oracle" => args.oracles.push(value("--oracle")?),
            "--list" => args.list = true,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn selected(names: &[String]) -> Result<Vec<&'static Oracle>, String> {
    if names.is_empty() {
        return Ok(registry().iter().collect());
    }
    names
        .iter()
        .map(|name| {
            registry()
                .iter()
                .find(|o| o.name == name)
                .ok_or_else(|| format!("unknown oracle: {name} (try --list)"))
        })
        .collect()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("lb-fuzz: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.list {
        for oracle in registry() {
            println!("{:<10} {}", oracle.name, oracle.description);
        }
        return ExitCode::SUCCESS;
    }
    let oracles = match selected(&args.oracles) {
        Ok(oracles) => oracles,
        Err(e) => {
            eprintln!("lb-fuzz: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;
    if let Some(raw_seed) = args.raw_seed {
        for oracle in oracles {
            match run_one(oracle, raw_seed) {
                Ok(()) => println!("{:<10} seed {raw_seed:#018x}  ok", oracle.name),
                Err(message) => {
                    failed = true;
                    println!("{:<10} seed {raw_seed:#018x}  FAIL: {message}", oracle.name);
                }
            }
        }
    } else {
        let config = FuzzConfig {
            seed: args.seed,
            iterations: args.iters,
        };
        for oracle in oracles {
            let report = run_oracle(oracle, &config);
            if report.failures.is_empty() {
                println!(
                    "{:<10} {} iterations under base seed {:#018x}  ok",
                    report.oracle, report.iterations, args.seed
                );
            } else {
                failed = true;
                println!(
                    "{:<10} {} iterations under base seed {:#018x}  {} FAILURE(S)",
                    report.oracle,
                    report.iterations,
                    args.seed,
                    report.failures.len()
                );
                for f in &report.failures {
                    println!(
                        "  iteration {:>6}: reproduce with --oracle {} --raw-seed {}",
                        f.iteration, f.oracle, f.seed
                    );
                    println!("    {}", f.message);
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
