//! The fuzz driver: seed derivation, panic containment and reporting.
//!
//! One **oracle** is a property checked once per iteration against freshly
//! generated inputs. The harness derives iteration `i`'s seed as
//! [`derive_seed`]`(base, i)` — an injective SplitMix64 mix — so any failure
//! is reproduced by re-running that single seed, independent of iteration
//! order or count. Panics are contained with [`std::panic::catch_unwind`]
//! and reported as failures carrying the reproducing seed: for a fuzzer a
//! panic is a finding, not a crash.

use crate::oracles;
use lb_stats::derive_seed;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Stop collecting after this many failures per oracle: enough to see a
/// pattern, bounded enough to keep reports readable.
pub const MAX_FAILURES_PER_ORACLE: usize = 5;

/// A named differential oracle.
pub struct Oracle {
    /// Stable identifier (CLI `--oracle` argument).
    pub name: &'static str,
    /// One-line description of the property checked.
    pub description: &'static str,
    /// Runs one iteration against the inputs derived from `seed`.
    pub run: fn(u64) -> Result<(), String>,
}

/// The ten differential oracles, in dependency order (pure kernels
/// first).
#[must_use]
pub fn registry() -> &'static [Oracle] {
    const ORACLES: &[Oracle] = &[
        Oracle {
            name: "alloc",
            description: "PR closed form vs. KKT solver vs. double-double reference",
            run: oracles::alloc::check,
        },
        Oracle {
            name: "payment",
            description: "compensation+bonus payments vs. double-double C_i + B_i",
            run: oracles::payment::check,
        },
        Oracle {
            name: "codec",
            description: "wire codec and framing round-trip + byte-mutation robustness",
            run: oracles::codec::check,
        },
        Oracle {
            name: "session",
            description: "chaos-round invariants under random fault schedules",
            run: oracles::session::check,
        },
        Oracle {
            name: "telemetry",
            description: "telemetry JSONL round-trip, replay and mutation robustness",
            run: oracles::telemetry::check,
        },
        Oracle {
            name: "recovery",
            description: "crash/recover at every journal boundary vs. uninterrupted round",
            run: oracles::recovery::check,
        },
        Oracle {
            name: "shard",
            description: "sharded hierarchical round vs. single coordinator, plus crash replay",
            run: oracles::shard::check,
        },
        Oracle {
            name: "audit",
            description:
                "invariant monitor + ledger chain catch injected corruption, no false alarms",
            run: oracles::audit::check,
        },
        Oracle {
            name: "prof",
            description:
                "cross-shard sketch merge vs. whole-population recompute, frame validation, profile JSONL robustness",
            run: oracles::prof::check,
        },
        Oracle {
            name: "online",
            description:
                "incremental harmonic sum / online session vs. from-scratch recompute after every churn event",
            run: oracles::online::check,
        },
    ];
    ORACLES
}

/// Harness configuration: the base seed and the per-oracle iteration budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Base seed; iteration `i` runs under `derive_seed(seed, i)`.
    pub seed: u64,
    /// Iterations per oracle.
    pub iterations: u64,
}

/// One failing iteration, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The oracle that failed.
    pub oracle: &'static str,
    /// Zero-based iteration index under the base seed.
    pub iteration: u64,
    /// The derived seed: re-run exactly this input with
    /// `lb-fuzz --oracle <name> --iters 1 --raw-seed <seed>`.
    pub seed: u64,
    /// The oracle's message, or the contained panic payload.
    pub message: String,
}

/// Outcome of running one oracle for a full budget.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// The oracle's name.
    pub oracle: &'static str,
    /// Iterations actually executed (may stop early at the failure cap).
    pub iterations: u64,
    /// All collected failures (empty on a clean run).
    pub failures: Vec<FuzzFailure>,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Runs one iteration of `oracle` under an explicit derived seed.
#[must_use]
pub fn run_one(oracle: &Oracle, seed: u64) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(|| (oracle.run)(seed))) {
        Ok(result) => result,
        Err(payload) => Err(panic_message(payload.as_ref())),
    }
}

/// Runs `oracle` for the configured budget, deriving one seed per iteration.
#[must_use]
pub fn run_oracle(oracle: &Oracle, config: &FuzzConfig) -> OracleReport {
    let mut failures = Vec::new();
    let mut executed = 0;
    for i in 0..config.iterations {
        executed = i + 1;
        let seed = derive_seed(config.seed, i);
        if let Err(message) = run_one(oracle, seed) {
            failures.push(FuzzFailure {
                oracle: oracle.name,
                iteration: i,
                seed,
                message,
            });
            if failures.len() >= MAX_FAILURES_PER_ORACLE {
                break;
            }
        }
    }
    OracleReport {
        oracle: oracle.name,
        iterations: executed,
        failures,
    }
}

/// Runs every registered oracle under the same configuration.
#[must_use]
pub fn run_all(config: &FuzzConfig) -> Vec<OracleReport> {
    registry().iter().map(|o| run_oracle(o, config)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panics_are_contained_and_reported_with_their_seed() {
        let oracle = Oracle {
            name: "boom",
            description: "always panics",
            run: |_| panic!("intentional test panic"),
        };
        let report = run_oracle(
            &oracle,
            &FuzzConfig {
                seed: 1,
                iterations: 10,
            },
        );
        assert_eq!(report.failures.len(), MAX_FAILURES_PER_ORACLE);
        assert_eq!(report.iterations, MAX_FAILURES_PER_ORACLE as u64);
        let f = &report.failures[0];
        assert_eq!(f.seed, lb_stats::derive_seed(1, 0));
        assert!(
            f.message.contains("intentional test panic"),
            "{}",
            f.message
        );
    }

    #[test]
    fn failure_seeds_reproduce_independent_of_budget() {
        // The seed recorded for iteration i must not depend on how many
        // iterations ran: derive_seed is position-addressed, not sequential.
        let fail_on_odd_seed: fn(u64) -> Result<(), String> = |s| {
            if s % 2 == 1 {
                Err("odd".into())
            } else {
                Ok(())
            }
        };
        let oracle = Oracle {
            name: "odd",
            description: "",
            run: fail_on_odd_seed,
        };
        let short = run_oracle(
            &oracle,
            &FuzzConfig {
                seed: 9,
                iterations: 4,
            },
        );
        let long = run_oracle(
            &oracle,
            &FuzzConfig {
                seed: 9,
                iterations: 8,
            },
        );
        for (a, b) in short.failures.iter().zip(&long.failures) {
            assert_eq!(a.iteration, b.iteration);
            assert_eq!(a.seed, b.seed);
        }
    }

    #[test]
    fn registry_names_are_unique_and_stable() {
        let names: Vec<&str> = registry().iter().map(|o| o.name).collect();
        assert_eq!(
            names,
            [
                "alloc",
                "payment",
                "codec",
                "session",
                "telemetry",
                "recovery",
                "shard",
                "audit",
                "prof",
                "online"
            ]
        );
    }
}
