//! Structure-aware, seed-deterministic input generators.
//!
//! Every generator draws from an explicit [`Xoshiro256StarStar`] so that a
//! failing fuzz iteration is reproduced *exactly* by re-running its derived
//! seed (see [`crate::harness`]). Values are sampled **log-uniformly** —
//! exponents first, then `10^e` — because the interesting numerical
//! behaviour of the PR/payment kernels lives in the magnitude *spread*
//! between machines, not in the mantissas.

use lb_proto::{ChaosConfig, FaultPlan, Message, NodeSpec, RoundId};
use lb_stats::{Rng, Xoshiro256StarStar};

/// The RNG for one fuzz iteration.
#[must_use]
pub fn rng_for(seed: u64) -> Xoshiro256StarStar {
    Xoshiro256StarStar::seed_from_u64(seed)
}

/// Picks a magnitude-spread class: half-width of the exponent range the
/// latency parameters are drawn from. `6.0` means values span `10^±6` —
/// a 10¹² spread across machines, the widest the acceptance bar requires.
#[must_use]
pub fn spread_half_width(rng: &mut Xoshiro256StarStar) -> f64 {
    match rng.next_below(3) {
        0 => 0.5,
        1 => 3.0,
        _ => 6.0,
    }
}

/// Latency parameters `t_i`, log-uniform in `10^[-half_width, half_width]`.
#[must_use]
pub fn latency_values(rng: &mut Xoshiro256StarStar, n: usize, half_width: f64) -> Vec<f64> {
    (0..n)
        .map(|_| 10f64.powf(rng.next_range(-half_width, half_width)))
        .collect()
}

/// A total arrival rate, log-uniform in `10^[-3, 3]`.
#[must_use]
pub fn arrival_rate(rng: &mut Xoshiro256StarStar) -> f64 {
    10f64.powf(rng.next_range(-3.0, 3.0))
}

/// A random protocol message with finite payload fields (finiteness keeps
/// `PartialEq` usable for round-trip comparison; raw-bit robustness is
/// exercised separately through byte mutation).
#[must_use]
pub fn message(rng: &mut Xoshiro256StarStar) -> Message {
    let round = RoundId(rng.next_u64());
    #[allow(clippy::cast_possible_truncation)]
    let machine = rng.next_u64() as u32;
    let value = 10f64.powf(rng.next_range(-6.0, 6.0));
    match rng.next_below(7) {
        0 => Message::RequestBid { round },
        1 => Message::Bid {
            round,
            machine,
            value,
        },
        2 => Message::Assign { round, rate: value },
        3 => Message::ExecutionDone { round, machine },
        4 => Message::ShardSum {
            round,
            shard: machine,
            sum_hi: value,
            sum_lo: value * 1e-17,
        },
        5 => Message::ShardEstimates {
            round,
            shard: machine,
            estimates: (0..rng.next_below(8))
                .map(|_| 10f64.powf(rng.next_range(-6.0, 6.0)))
                .collect(),
        },
        _ => Message::Payment {
            round,
            amount: if rng.next_bool(0.5) { value } else { -value },
        },
    }
}

/// Applies 1–4 random byte-level mutations in place: bit flips, byte
/// overwrites, truncations and insertions — the corruption model a codec
/// must survive without panicking or over-allocating.
pub fn mutate_bytes(rng: &mut Xoshiro256StarStar, bytes: &mut Vec<u8>) {
    let ops = 1 + rng.next_below(4);
    for _ in 0..ops {
        if bytes.is_empty() {
            bytes.push(rng.next_u64() as u8);
            continue;
        }
        #[allow(clippy::cast_possible_truncation)]
        let pos = rng.next_below(bytes.len() as u64) as usize;
        match rng.next_below(4) {
            0 => bytes[pos] ^= 1 << rng.next_below(8),
            1 => bytes[pos] = rng.next_u64() as u8,
            2 => bytes.truncate(pos),
            _ => bytes.insert(pos, rng.next_u64() as u8),
        }
    }
}

/// Node behaviours for a chaos round. Every node is **consistent** in the
/// paper's sense (it executes at its bid, `t̃_i = b_i`), because that is the
/// precondition of Theorems 3.1/3.2 — the invariants the session oracle
/// checks. Roughly 70% of nodes are fully truthful; the rest overbid by a
/// factor in `[1, 3]` and run at the bid.
#[must_use]
pub fn node_specs(rng: &mut Xoshiro256StarStar, n: usize) -> Vec<NodeSpec> {
    (0..n)
        .map(|_| {
            let t = 10f64.powf(rng.next_range(-1.0, 1.0));
            if rng.next_bool(0.7) {
                NodeSpec::truthful(t)
            } else {
                let bid = t * rng.next_range(1.0, 3.0);
                NodeSpec::strategic(t, bid, bid)
            }
        })
        .collect()
}

/// A random—but always *valid*—chaos configuration: moderate fault
/// probabilities, an armed retry budget and timers that satisfy the
/// documented preconditions (`retry_timeout` above one round trip,
/// `backoff ≥ 1`).
#[must_use]
pub fn chaos_config(rng: &mut Xoshiro256StarStar, seed: u64) -> ChaosConfig {
    #[allow(clippy::cast_possible_truncation)]
    let bid_retries = rng.next_below(5) as u32;
    ChaosConfig {
        seed,
        drop_prob: rng.next_range(0.0, 0.25),
        duplicate_prob: rng.next_range(0.0, 0.2),
        corrupt_prob: rng.next_range(0.0, 0.2),
        jitter: rng.next_range(0.0, 0.005),
        plan: FaultPlan::none(),
        bid_retries,
        retry_timeout: rng.next_range(0.02, 0.1),
        backoff: rng.next_range(1.0, 3.0),
        exec_timeout: rng.next_range(0.5, 1.5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_per_seed() {
        let mut a = rng_for(42);
        let mut b = rng_for(42);
        assert_eq!(
            latency_values(&mut a, 8, 6.0),
            latency_values(&mut b, 8, 6.0)
        );
        assert_eq!(message(&mut a), message(&mut b));
    }

    #[test]
    fn latency_values_are_always_in_the_validated_domain() {
        let mut rng = rng_for(7);
        for _ in 0..200 {
            let half = spread_half_width(&mut rng);
            for v in latency_values(&mut rng, 6, half) {
                assert!(v.is_finite() && v > 0.0);
                assert!((lb_core::MIN_LATENCY_PARAM..=lb_core::MAX_LATENCY_PARAM).contains(&v));
            }
        }
    }

    #[test]
    fn chaos_configs_always_pass_validation() {
        // ChaosConfig::validate is assert-based; an invalid generated config
        // would abort the runtime instead of fuzzing it. Constructing the
        // runtime exercises the validation path.
        let mut rng = rng_for(11);
        for i in 0..100 {
            let cfg = chaos_config(&mut rng, i);
            assert!((0.0..=1.0).contains(&cfg.drop_prob));
            assert!(cfg.retry_timeout > 0.0 && cfg.backoff >= 1.0 && cfg.exec_timeout > 0.0);
        }
    }

    #[test]
    fn mutation_terminates_and_changes_something_eventually() {
        let mut rng = rng_for(13);
        let original = vec![1u8, 2, 3, 4, 5, 6, 7, 8];
        let mut changed = 0;
        for _ in 0..50 {
            let mut bytes = original.clone();
            mutate_bytes(&mut rng, &mut bytes);
            if bytes != original {
                changed += 1;
            }
        }
        assert!(changed > 25, "only {changed}/50 mutations had any effect");
    }
}
