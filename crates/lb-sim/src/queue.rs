//! FCFS single-server queue simulation and M/M/1 analytics.
//!
//! The paper's latency abstraction is justified (Sec. 2) as "the expected
//! waiting time in an M/G/1 queue under light load"; this module provides
//! the actual queueing machinery so that justification can be *checked*:
//! an event-driven FCFS server plus the closed-form M/M/1 stationary
//! quantities (mean response `1/(μ−λ)`, utilization `ρ = λ/μ`, Little's law)
//! the tests validate the simulator against.

use crate::events::EventQueue;
use crate::time::SimTime;
use lb_stats::dist::Distribution;
use lb_stats::online::OnlineStats;
use lb_stats::rng::Xoshiro256StarStar;

/// Closed-form stationary quantities of an M/M/1 queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mm1Analytic {
    /// Arrival rate λ.
    pub lambda: f64,
    /// Service rate μ.
    pub mu: f64,
}

impl Mm1Analytic {
    /// Creates the analytic model.
    ///
    /// # Panics
    /// Panics unless `0 < lambda < mu` (stability).
    #[must_use]
    pub fn new(lambda: f64, mu: f64) -> Self {
        assert!(
            lambda > 0.0 && mu > lambda,
            "Mm1Analytic: need 0 < lambda < mu"
        );
        Self { lambda, mu }
    }

    /// Server utilization `ρ = λ/μ`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Mean response (sojourn) time `W = 1/(μ−λ)`.
    #[must_use]
    pub fn mean_response(&self) -> f64 {
        1.0 / (self.mu - self.lambda)
    }

    /// Mean waiting time in queue `Wq = ρ/(μ−λ)`.
    #[must_use]
    pub fn mean_wait(&self) -> f64 {
        self.utilization() / (self.mu - self.lambda)
    }

    /// Mean number in system `L = λW` (Little's law).
    #[must_use]
    pub fn mean_in_system(&self) -> f64 {
        self.lambda * self.mean_response()
    }
}

/// Per-job record produced by the FCFS simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobRecord {
    /// Arrival time.
    pub arrival: f64,
    /// Service start time (`>= arrival`).
    pub start: f64,
    /// Completion time.
    pub completion: f64,
}

impl JobRecord {
    /// Total time in system (response/sojourn time).
    #[must_use]
    pub fn response(&self) -> f64 {
        self.completion - self.arrival
    }

    /// Time spent waiting before service began.
    #[must_use]
    pub fn wait(&self) -> f64 {
        self.start - self.arrival
    }
}

/// Simulates an FCFS single-server queue over explicit arrival times with
/// service times drawn from `service`.
///
/// Returns one [`JobRecord`] per arrival, in arrival order. Runs as an
/// explicit discrete-event simulation over [`EventQueue`] (arrival and
/// departure events), exercising the same engine the protocol layer uses.
///
/// # Panics
/// Panics if `arrivals` is not sorted ascending or contains negatives.
#[must_use]
pub fn simulate_fcfs<D: Distribution + ?Sized>(
    arrivals: &[f64],
    service: &D,
    rng: &mut Xoshiro256StarStar,
) -> Vec<JobRecord> {
    #[derive(Debug, Clone, Copy)]
    enum Ev {
        Arrival(usize),
        Departure(usize),
    }

    let mut records: Vec<JobRecord> = arrivals
        .iter()
        .map(|&a| JobRecord {
            arrival: a,
            start: 0.0,
            completion: 0.0,
        })
        .collect();
    let mut queue = EventQueue::new();
    let mut prev = 0.0;
    for (i, &a) in arrivals.iter().enumerate() {
        assert!(
            a >= prev && a >= 0.0,
            "simulate_fcfs: arrivals must be sorted and non-negative"
        );
        prev = a;
        queue.schedule(SimTime::new(a), Ev::Arrival(i));
    }

    let mut busy_until = 0.0f64;
    let mut waiting: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut in_service: Option<usize> = None;
    let next = move |rng: &mut Xoshiro256StarStar| {
        use lb_stats::rng::Rng;
        let mut f = || rng.next_u64();
        service.sample(&mut f)
    };

    while let Some((now, ev)) = queue.pop() {
        match ev {
            Ev::Arrival(i) => {
                if in_service.is_none() {
                    let s = next(rng).max(0.0);
                    records[i].start = now.seconds();
                    records[i].completion = now.seconds() + s;
                    busy_until = records[i].completion;
                    in_service = Some(i);
                    queue.schedule(SimTime::new(records[i].completion), Ev::Departure(i));
                } else {
                    waiting.push_back(i);
                }
            }
            Ev::Departure(i) => {
                debug_assert_eq!(in_service, Some(i));
                in_service = None;
                if let Some(j) = waiting.pop_front() {
                    let s = next(rng).max(0.0);
                    records[j].start = now.seconds();
                    records[j].completion = now.seconds() + s;
                    busy_until = records[j].completion;
                    in_service = Some(j);
                    queue.schedule(SimTime::new(records[j].completion), Ev::Departure(j));
                }
            }
        }
    }
    let _ = busy_until;
    records
}

/// Simulates an egalitarian processor-sharing (PS) server: all jobs in the
/// system receive an equal share of the service capacity.
///
/// `requirements[i]` is job `i`'s total service requirement (time it would
/// take alone on the server). PS has no waiting room — every job starts
/// immediately at a reduced rate — so `start == arrival` in the records.
///
/// Classic facts validated by the tests: for M/M/1-PS the mean sojourn time
/// equals FCFS's `1/(μ−λ)`, and unlike FCFS the PS mean is *insensitive* to
/// the service-time distribution beyond its mean.
///
/// # Panics
/// Panics if the inputs differ in length, arrivals are unsorted/negative, or
/// any requirement is non-positive.
#[must_use]
pub fn simulate_ps(arrivals: &[f64], requirements: &[f64]) -> Vec<JobRecord> {
    assert_eq!(
        arrivals.len(),
        requirements.len(),
        "simulate_ps: arity mismatch"
    );
    let n = arrivals.len();
    let mut records: Vec<JobRecord> = arrivals
        .iter()
        .map(|&a| JobRecord {
            arrival: a,
            start: a,
            completion: 0.0,
        })
        .collect();
    let mut prev = 0.0;
    for (&a, &r) in arrivals.iter().zip(requirements) {
        assert!(
            a >= prev && a >= 0.0,
            "simulate_ps: arrivals must be sorted and non-negative"
        );
        assert!(
            r.is_finite() && r > 0.0,
            "simulate_ps: requirements must be > 0"
        );
        prev = a;
    }

    // Active set: (job index, remaining requirement).
    let mut active: Vec<(usize, f64)> = Vec::new();
    let mut now = 0.0f64;
    let mut next_arrival = 0usize;

    loop {
        if active.is_empty() {
            if next_arrival == n {
                break;
            }
            now = arrivals[next_arrival];
            active.push((next_arrival, requirements[next_arrival]));
            next_arrival += 1;
            continue;
        }
        let k = active.len() as f64;
        let min_rem = active.iter().map(|&(_, r)| r).fold(f64::INFINITY, f64::min);
        let finish_dt = min_rem * k;
        let arrival_dt = if next_arrival < n {
            arrivals[next_arrival] - now
        } else {
            f64::INFINITY
        };

        if arrival_dt < finish_dt {
            // Serve everyone at rate 1/k until the arrival, then admit it.
            for entry in &mut active {
                entry.1 -= arrival_dt / k;
            }
            now += arrival_dt;
            active.push((next_arrival, requirements[next_arrival]));
            next_arrival += 1;
        } else {
            // Run to the next completion epoch.
            for entry in &mut active {
                entry.1 -= min_rem;
            }
            now += finish_dt;
            active.retain(|&(idx, rem)| {
                if rem <= 1e-12 {
                    records[idx].completion = now;
                    false
                } else {
                    true
                }
            });
        }
    }
    records
}

/// Summary statistics of a simulated queue run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueSummary {
    /// Response-time statistics.
    pub response: OnlineStats,
    /// Waiting-time statistics.
    pub wait: OnlineStats,
    /// Fraction of the makespan the server was busy.
    pub utilization: f64,
}

/// Summarises job records (optionally discarding a warm-up prefix by time).
#[must_use]
pub fn summarize(records: &[JobRecord], warmup: f64) -> QueueSummary {
    let mut response = OnlineStats::new();
    let mut wait = OnlineStats::new();
    let mut busy = 0.0;
    let mut makespan = 0.0f64;
    for r in records {
        makespan = makespan.max(r.completion);
        if r.arrival >= warmup {
            response.push(r.response());
            wait.push(r.wait());
        }
        busy += r.completion - r.start;
    }
    let utilization = if makespan > 0.0 {
        (busy / makespan).min(1.0)
    } else {
        0.0
    };
    QueueSummary {
        response,
        wait,
        utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::PoissonProcess;
    use lb_stats::dist::{Deterministic, Exponential};

    #[test]
    fn analytic_formulas() {
        let q = Mm1Analytic::new(2.0, 5.0);
        assert!((q.utilization() - 0.4).abs() < 1e-12);
        assert!((q.mean_response() - 1.0 / 3.0).abs() < 1e-12);
        assert!((q.mean_wait() - 0.4 / 3.0).abs() < 1e-12);
        assert!((q.mean_in_system() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "need 0 < lambda < mu")]
    fn analytic_rejects_unstable() {
        let _ = Mm1Analytic::new(5.0, 5.0);
    }

    #[test]
    fn empty_arrivals_yield_no_records() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0);
        let out = simulate_fcfs(&[], &Deterministic::new(1.0), &mut rng);
        assert!(out.is_empty());
    }

    #[test]
    fn deterministic_light_load_has_no_waiting() {
        // Arrivals every 2s, service 1s: never any queueing.
        let arrivals: Vec<f64> = (0..100).map(|i| 2.0 * i as f64).collect();
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let recs = simulate_fcfs(&arrivals, &Deterministic::new(1.0), &mut rng);
        for r in &recs {
            assert_eq!(r.wait(), 0.0);
            assert!((r.response() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn overload_builds_queue() {
        // Arrivals every 1s, service 2s: waits grow linearly.
        let arrivals: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let recs = simulate_fcfs(&arrivals, &Deterministic::new(2.0), &mut rng);
        assert!(recs.last().unwrap().wait() > 40.0);
        // FCFS order is preserved.
        for w in recs.windows(2) {
            assert!(w[1].start >= w[0].completion - 1e-12);
        }
    }

    #[test]
    fn mm1_simulation_matches_analytic_mean_response() {
        let lambda = 2.0;
        let mu = 5.0;
        let mut arrivals_gen = PoissonProcess::new(lambda, Xoshiro256StarStar::seed_from_u64(3));
        let arrivals = arrivals_gen.arrivals_until(20_000.0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let recs = simulate_fcfs(&arrivals, &Exponential::new(mu), &mut rng);
        let summary = summarize(&recs, 100.0);
        let analytic = Mm1Analytic::new(lambda, mu);
        let rel =
            (summary.response.mean() - analytic.mean_response()).abs() / analytic.mean_response();
        assert!(
            rel < 0.05,
            "mean response {} vs analytic {}",
            summary.response.mean(),
            analytic.mean_response()
        );
        assert!((summary.utilization - analytic.utilization()).abs() < 0.02);
    }

    #[test]
    fn littles_law_holds_in_simulation() {
        let lambda = 3.0;
        let mu = 4.0;
        let mut arrivals_gen = PoissonProcess::new(lambda, Xoshiro256StarStar::seed_from_u64(5));
        let arrivals = arrivals_gen.arrivals_until(30_000.0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(6);
        let recs = simulate_fcfs(&arrivals, &Exponential::new(mu), &mut rng);
        let summary = summarize(&recs, 500.0);
        // L = λW: estimate L from the response-time integral.
        let l_est = lambda * summary.response.mean();
        let analytic = Mm1Analytic::new(lambda, mu).mean_in_system();
        let rel = (l_est - analytic).abs() / analytic;
        assert!(rel < 0.1, "L {} vs analytic {}", l_est, analytic);
    }

    #[test]
    fn ps_single_job_runs_at_full_speed() {
        let recs = simulate_ps(&[1.0], &[2.5]);
        assert!((recs[0].completion - 3.5).abs() < 1e-12);
        assert_eq!(recs[0].wait(), 0.0);
    }

    #[test]
    fn ps_two_overlapping_jobs_share_the_server() {
        // Job 0 arrives at 0 needing 2s; job 1 arrives at 1 needing 1s.
        // 0..1: job 0 alone (1s done, 1s left). 1..3: both at half rate —
        // at t=3 both have 0.5·2 = 1s served, so both finish exactly at 3.
        let recs = simulate_ps(&[0.0, 1.0], &[2.0, 1.0]);
        assert!((recs[0].completion - 3.0).abs() < 1e-9, "{recs:?}");
        assert!((recs[1].completion - 3.0).abs() < 1e-9, "{recs:?}");
    }

    #[test]
    fn mm1_ps_mean_sojourn_matches_fcfs_formula() {
        let lambda = 2.0;
        let mu = 5.0;
        let mut arrivals_gen = PoissonProcess::new(lambda, Xoshiro256StarStar::seed_from_u64(30));
        let arrivals = arrivals_gen.arrivals_until(20_000.0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(31);
        let svc = Exponential::new(mu);
        let reqs: Vec<f64> = arrivals
            .iter()
            .map(|_| lb_stats::dist::sample(&svc, &mut rng))
            .collect();
        let recs = simulate_ps(&arrivals, &reqs);
        let summary = summarize(&recs, 200.0);
        let analytic = Mm1Analytic::new(lambda, mu).mean_response();
        let rel = (summary.response.mean() - analytic).abs() / analytic;
        assert!(
            rel < 0.06,
            "PS mean {} vs 1/(mu-lambda) {}",
            summary.response.mean(),
            analytic
        );
    }

    #[test]
    fn ps_is_insensitive_to_service_variance_while_fcfs_is_not() {
        // Same mean service time, heavy-tailed (Pareto) requirements:
        // FCFS (M/G/1) pays the Pollaczek-Khinchine variance penalty, PS
        // does not — its mean sojourn stays at the M/M/1 value.
        use lb_stats::dist::Pareto;
        let lambda = 2.0;
        let mean_svc = 0.2; // mu = 5
        let analytic = Mm1Analytic::new(lambda, 1.0 / mean_svc).mean_response();

        let mut arrivals_gen = PoissonProcess::new(lambda, Xoshiro256StarStar::seed_from_u64(32));
        let arrivals = arrivals_gen.arrivals_until(60_000.0);
        // Shape 2.1: CV² ≈ 4.8 > 1 so the Pollaczek-Khinchine penalty is
        // real. (Shape 2.5 would have CV² = 0.8 < 1 — *less* variable than
        // exponential — and FCFS would actually beat PS.)
        let svc = Pareto::with_mean(mean_svc, 2.1);
        let mut rng = Xoshiro256StarStar::seed_from_u64(33);
        let reqs: Vec<f64> = arrivals
            .iter()
            .map(|_| lb_stats::dist::sample(&svc, &mut rng))
            .collect();

        let ps = summarize(&simulate_ps(&arrivals, &reqs), 500.0);
        // FCFS with the *same* arrivals and requirements.
        let mut fcfs_recs: Vec<JobRecord> = arrivals
            .iter()
            .map(|&a| JobRecord {
                arrival: a,
                start: 0.0,
                completion: 0.0,
            })
            .collect();
        let mut busy = 0.0f64;
        for (i, (&a, &r)) in arrivals.iter().zip(&reqs).enumerate() {
            let start = a.max(busy);
            fcfs_recs[i].start = start;
            fcfs_recs[i].completion = start + r;
            busy = fcfs_recs[i].completion;
        }
        let fcfs = summarize(&fcfs_recs, 500.0);

        let ps_rel = (ps.response.mean() - analytic).abs() / analytic;
        assert!(
            ps_rel < 0.15,
            "PS mean {} vs insensitive value {}",
            ps.response.mean(),
            analytic
        );
        assert!(
            fcfs.response.mean() > 1.2 * ps.response.mean(),
            "FCFS {} should exceed PS {} under high-variance service",
            fcfs.response.mean(),
            ps.response.mean()
        );
    }

    #[test]
    #[should_panic(expected = "requirements must be > 0")]
    fn ps_rejects_nonpositive_requirements() {
        let _ = simulate_ps(&[0.0], &[0.0]);
    }

    #[test]
    fn queue_responses_are_positively_autocorrelated() {
        // Successive sojourn times through a busy M/M/1 share queueing
        // periods, so their autocorrelation is strongly positive — the
        // reason the estimator's effective sample size is below the job
        // count and batch means are the right CI tool.
        let lambda = 4.0;
        let mu = 5.0; // rho = 0.8
        let mut arrivals_gen = PoissonProcess::new(lambda, Xoshiro256StarStar::seed_from_u64(8));
        let arrivals = arrivals_gen.arrivals_until(20_000.0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let recs = simulate_fcfs(&arrivals, &Exponential::new(mu), &mut rng);
        let responses: Vec<f64> = recs.iter().skip(500).map(JobRecord::response).collect();
        let rho1 = lb_stats::autocorr::autocorrelation(&responses, 1);
        assert!(rho1 > 0.5, "lag-1 autocorrelation {rho1}");
        let ess = lb_stats::autocorr::effective_sample_size(&responses);
        assert!(
            ess < 0.5 * responses.len() as f64,
            "effective sample size {ess} of {} not reduced",
            responses.len()
        );
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_arrivals_panic() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let _ = simulate_fcfs(&[2.0, 1.0], &Deterministic::new(1.0), &mut rng);
    }
}
