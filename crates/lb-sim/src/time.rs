//! Simulation time: a totally ordered, finite, non-negative clock value.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (seconds).
///
/// `SimTime` is a thin wrapper over `f64` that *guarantees* total ordering by
/// rejecting NaN at construction, so it can safely key the event queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero — the start of every simulation.
    pub const ZERO: Self = Self(0.0);

    /// Creates a simulation time.
    ///
    /// # Panics
    /// Panics if `seconds` is NaN or negative.
    #[must_use]
    pub fn new(seconds: f64) -> Self {
        assert!(!seconds.is_nan(), "SimTime: NaN");
        assert!(seconds >= 0.0, "SimTime: negative time {seconds}");
        Self(seconds)
    }

    /// The underlying seconds value.
    #[must_use]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// Saturating subtraction: `self - other`, floored at zero.
    #[must_use]
    pub fn saturating_sub(self, other: Self) -> f64 {
        (self.0 - other.0).max(0.0)
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Construction guarantees no NaN, so partial_cmp is total here.
        self.0
            .partial_cmp(&other.0)
            .expect("SimTime is NaN-free by construction")
    }
}

impl Add<f64> for SimTime {
    type Output = Self;
    fn add(self, dt: f64) -> Self {
        Self::new(self.0 + dt)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, dt: f64) {
        *self = *self + dt;
    }
}

impl Sub for SimTime {
    type Output = f64;
    fn sub(self, rhs: Self) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(SimTime::ZERO.min(a), SimTime::ZERO);
    }

    #[test]
    fn arithmetic_works() {
        let t = SimTime::new(1.5) + 0.5;
        assert_eq!(t.seconds(), 2.0);
        let mut u = SimTime::ZERO;
        u += 3.0;
        assert_eq!(u.seconds(), 3.0);
        assert_eq!(t - u, -1.0);
        assert_eq!(u.saturating_sub(t), 1.0);
        assert_eq!(t.saturating_sub(u), 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_is_rejected() {
        let _ = SimTime::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_is_rejected() {
        let _ = SimTime::new(-0.1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::new(1.25).to_string(), "1.250000s");
    }
}
