//! Per-machine service models.
//!
//! The paper's model is a *mean-value* abstraction: a machine with execution
//! value `t̃` serving jobs at rate `x` completes each job in `l(x) = t̃·x`
//! time on average. A service model turns that abstraction into a concrete
//! stochastic process producing per-job response times whose stationary mean
//! equals `t̃·x`:
//!
//! * [`ServiceModel::StationaryExponential`] — responses drawn i.i.d. from
//!   `Exp(mean = t̃·x)`. The lightest-weight realisation; matches the
//!   M/G/1-light-load reading where per-job delay is memoryless around the
//!   operating point.
//! * [`ServiceModel::StationaryDeterministic`] — every response exactly
//!   `t̃·x`; zero-variance pipeline used to validate the estimator and to
//!   reproduce the paper's analytic numbers exactly.
//! * [`ServiceModel::Mm1Queue`] — a literal FCFS M/M/1 queue whose service
//!   rate is calibrated so the stationary mean response at arrival rate `x`
//!   equals `t̃·x`: `1/(μ−x) = t̃·x ⇒ μ = x + 1/(t̃·x)`. The heaviest but
//!   most faithful realisation: responses are autocorrelated through the
//!   queue, stressing the estimator the way a real system would.

use crate::queue::{simulate_fcfs, JobRecord};
use lb_stats::dist::{sample, Deterministic, Exponential};
use lb_stats::rng::Xoshiro256StarStar;
use serde::{Deserialize, Serialize};

/// Stochastic realisation of the paper's latency abstraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ServiceModel {
    /// I.i.d. exponential responses with mean `t̃·x`.
    #[default]
    StationaryExponential,
    /// Constant responses of exactly `t̃·x`.
    StationaryDeterministic,
    /// A real FCFS M/M/1 queue calibrated to mean response `t̃·x`.
    Mm1Queue,
    /// A processor-sharing M/M/1-PS queue calibrated to mean response
    /// `t̃·x` (same stationary mean as FCFS, different dynamics: no waiting
    /// room, service-variance-insensitive).
    PsQueue,
}

impl ServiceModel {
    /// Simulates the completion of the jobs arriving at `arrivals` (sorted)
    /// on a machine with execution value `exec_value` assigned arrival rate
    /// `assigned_rate`, returning per-job response times.
    ///
    /// For `assigned_rate == 0` (machine idle) the result is empty.
    ///
    /// # Panics
    /// Panics on invalid parameters (negative rate, non-positive exec value).
    #[must_use]
    pub fn responses(
        self,
        arrivals: &[f64],
        exec_value: f64,
        assigned_rate: f64,
        rng: &mut Xoshiro256StarStar,
    ) -> Vec<f64> {
        assert!(
            exec_value.is_finite() && exec_value > 0.0,
            "ServiceModel: invalid exec value"
        );
        assert!(
            assigned_rate.is_finite() && assigned_rate >= 0.0,
            "ServiceModel: invalid rate"
        );
        if arrivals.is_empty() || assigned_rate <= 0.0 {
            return Vec::new();
        }
        let mean_response = exec_value * assigned_rate;
        match self {
            Self::StationaryExponential => {
                let d = Exponential::with_mean(mean_response);
                arrivals.iter().map(|_| sample(&d, rng)).collect()
            }
            Self::StationaryDeterministic => arrivals.iter().map(|_| mean_response).collect(),
            Self::Mm1Queue => {
                // Calibrate mu so the stationary mean response equals t̃·x.
                let mu = assigned_rate + 1.0 / mean_response;
                let recs: Vec<JobRecord> = simulate_fcfs(arrivals, &Exponential::new(mu), rng);
                recs.iter().map(JobRecord::response).collect()
            }
            Self::PsQueue => {
                // M/M/1-PS shares the FCFS mean response 1/(mu - x): same
                // calibration, processor-sharing dynamics.
                let mu = assigned_rate + 1.0 / mean_response;
                let svc = Exponential::new(mu);
                let reqs: Vec<f64> = arrivals.iter().map(|_| sample(&svc, rng)).collect();
                crate::queue::simulate_ps(arrivals, &reqs)
                    .iter()
                    .map(JobRecord::response)
                    .collect()
            }
        }
    }

    /// The exact stationary mean response this model targets.
    #[must_use]
    pub fn target_mean_response(self, exec_value: f64, assigned_rate: f64) -> f64 {
        exec_value * assigned_rate
    }
}

/// Deterministic response generator used in zero-noise validation paths;
/// exposed for tests that need raw access without a `ServiceModel` value.
#[must_use]
pub fn deterministic_responses(n: usize, exec_value: f64, assigned_rate: f64) -> Vec<f64> {
    let d = Deterministic::new(exec_value * assigned_rate);
    let mut rng = Xoshiro256StarStar::seed_from_u64(0);
    (0..n).map(|_| sample(&d, &mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::PoissonProcess;
    use lb_stats::online::OnlineStats;

    fn arrivals(rate: f64, horizon: f64, seed: u64) -> Vec<f64> {
        PoissonProcess::new(rate, Xoshiro256StarStar::seed_from_u64(seed)).arrivals_until(horizon)
    }

    #[test]
    fn deterministic_model_hits_target_exactly() {
        let a = arrivals(2.0, 100.0, 1);
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let r = ServiceModel::StationaryDeterministic.responses(&a, 3.0, 2.0, &mut rng);
        assert_eq!(r.len(), a.len());
        for &t in &r {
            assert!((t - 6.0).abs() < 1e-12);
        }
    }

    #[test]
    fn exponential_model_mean_converges_to_target() {
        let a = arrivals(4.0, 20_000.0, 3);
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let r = ServiceModel::StationaryExponential.responses(&a, 1.5, 4.0, &mut rng);
        let stats = OnlineStats::from_slice(&r);
        let target = 6.0;
        assert!(
            (stats.mean() - target).abs() / target < 0.02,
            "mean {}",
            stats.mean()
        );
    }

    #[test]
    fn mm1_model_mean_converges_to_target() {
        let rate = 2.0;
        let exec = 1.0;
        let a = arrivals(rate, 50_000.0, 5);
        let mut rng = Xoshiro256StarStar::seed_from_u64(6);
        let r = ServiceModel::Mm1Queue.responses(&a, exec, rate, &mut rng);
        // Discard a warm-up prefix: queue starts empty.
        let tail = &r[r.len() / 10..];
        let stats = OnlineStats::from_slice(tail);
        let target = exec * rate; // 2.0
        assert!(
            (stats.mean() - target).abs() / target < 0.06,
            "mean {}",
            stats.mean()
        );
    }

    #[test]
    fn ps_model_mean_converges_to_target() {
        let rate = 2.0;
        let exec = 1.0;
        let a = arrivals(rate, 50_000.0, 15);
        let mut rng = Xoshiro256StarStar::seed_from_u64(16);
        let r = ServiceModel::PsQueue.responses(&a, exec, rate, &mut rng);
        let tail = &r[r.len() / 10..];
        let stats = OnlineStats::from_slice(tail);
        let target = exec * rate;
        assert!(
            (stats.mean() - target).abs() / target < 0.06,
            "mean {}",
            stats.mean()
        );
    }

    #[test]
    fn idle_machine_produces_nothing() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        assert!(ServiceModel::StationaryExponential
            .responses(&[], 1.0, 1.0, &mut rng)
            .is_empty());
        assert!(ServiceModel::Mm1Queue
            .responses(&[1.0, 2.0], 1.0, 0.0, &mut rng)
            .is_empty());
    }

    #[test]
    fn target_mean_is_linear_latency() {
        assert_eq!(ServiceModel::default().target_mean_response(2.0, 3.0), 6.0);
    }

    #[test]
    #[should_panic(expected = "invalid exec value")]
    fn invalid_exec_value_panics() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(8);
        let _ = ServiceModel::StationaryExponential.responses(&[1.0], 0.0, 1.0, &mut rng);
    }

    #[test]
    fn deterministic_responses_helper() {
        let r = deterministic_responses(5, 2.0, 1.5);
        assert_eq!(r, vec![3.0; 5]);
    }
}
