//! Deterministic churn-stream generator for the online mechanism.
//!
//! Produces a seed-reproducible stream of membership events — machines
//! joining, leaving and re-bidding, punctuated by settle ticks — that the
//! online session layer (and the `online` fuzz oracle, and the events/sec
//! benchmarks) consume. The generator is pure data: it knows nothing about
//! the protocol, only about slots and latency values, so it lives below
//! `lb-proto` in the crate DAG and both sides of a differential test can
//! replay the identical stream from one seed.
//!
//! Streams scale to 10⁵–10⁶ events: state is O(slots) and every event is
//! drawn in O(1) (vacant/live slot picks use swap-remove index pools).

use lb_stats::{Rng, Xoshiro256StarStar};

/// One membership event in slot/value form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnEvent {
    /// A machine joins at `slot` with latency parameter `value`.
    Join {
        /// Slot id (stable machine identity across the stream).
        slot: usize,
        /// Latency parameter `t_i` (the truthful bid).
        value: f64,
    },
    /// The machine at `slot` leaves.
    Leave {
        /// Slot id.
        slot: usize,
    },
    /// The machine at `slot` re-bids with a new latency parameter.
    RateChange {
        /// Slot id.
        slot: usize,
        /// The new latency parameter.
        value: f64,
    },
    /// A settle boundary: the session runs a payment round over the
    /// machines currently live.
    Tick,
}

/// Shape of a churn stream.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Width of the slot space (maximum concurrent machines).
    pub slots: usize,
    /// Machines joined during warmup, before any churn (≥ `min_live`).
    pub initial: usize,
    /// Total events emitted, warmup joins included.
    pub events: usize,
    /// Log₁₀ half-width of the latency-value spread: values are drawn
    /// log-uniformly from `10^[-half_width, half_width]`.
    pub half_width: f64,
    /// Emit a [`ChurnEvent::Tick`] every this many events, counted from
    /// the start of the stream (`0` disables ticks — the pure event-path
    /// benchmarks use that). Cadence points inside the warmup prefix are
    /// suppressed in favor of the warmup joins, so choose
    /// `tick_every > initial` for a full cadence.
    pub tick_every: usize,
    /// Live-machine floor: leaves are suppressed at or below this count
    /// (the mechanism needs two machines to settle).
    pub min_live: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        Self {
            slots: 64,
            initial: 8,
            events: 1_000,
            half_width: 3.0,
            tick_every: 0,
            min_live: 2,
        }
    }
}

/// Seed-deterministic churn-stream iterator.
#[derive(Debug, Clone)]
pub struct ChurnGen {
    cfg: ChurnConfig,
    rng: Xoshiro256StarStar,
    /// Vacant slot pool (unordered; swap-remove picks are O(1)).
    vacant: Vec<usize>,
    /// Live slot pool (unordered), with `where_live[slot]` its position.
    live: Vec<usize>,
    where_live: Vec<usize>,
    emitted: usize,
}

const NOT_LIVE: usize = usize::MAX;

impl ChurnGen {
    /// Creates a generator. The first `initial` events are warmup joins of
    /// slots `0..initial`; churn follows.
    ///
    /// # Panics
    /// Panics unless `min_live ≤ initial ≤ slots` and `slots > 0`.
    #[must_use]
    pub fn new(cfg: ChurnConfig, seed: u64) -> Self {
        assert!(cfg.slots > 0, "churn: empty slot space");
        assert!(
            cfg.min_live <= cfg.initial && cfg.initial <= cfg.slots,
            "churn: need min_live <= initial <= slots"
        );
        Self {
            cfg,
            rng: Xoshiro256StarStar::seed_from_u64(seed),
            vacant: (cfg.initial..cfg.slots).rev().collect(),
            live: Vec::with_capacity(cfg.slots),
            where_live: vec![NOT_LIVE; cfg.slots],
            emitted: 0,
        }
    }

    fn draw_value(&mut self) -> f64 {
        let hw = self.cfg.half_width;
        10f64.powf(self.rng.next_range(-hw, hw))
    }

    fn mark_live(&mut self, slot: usize) {
        self.where_live[slot] = self.live.len();
        self.live.push(slot);
    }

    fn pick_live(&mut self) -> usize {
        #[allow(clippy::cast_possible_truncation)]
        let k = self.rng.next_below(self.live.len() as u64) as usize;
        self.live[k]
    }

    fn unmark_live(&mut self, slot: usize) {
        let k = self.where_live[slot];
        let last = self.live.len() - 1;
        self.live.swap(k, last);
        self.where_live[self.live[k]] = k;
        self.live.pop();
        self.where_live[slot] = NOT_LIVE;
    }
}

impl Iterator for ChurnGen {
    type Item = ChurnEvent;

    fn next(&mut self) -> Option<ChurnEvent> {
        if self.emitted >= self.cfg.events {
            return None;
        }
        self.emitted += 1;

        // Warmup: deterministic joins of slots 0..initial.
        if self.emitted <= self.cfg.initial {
            let slot = self.emitted - 1;
            let value = self.draw_value();
            self.mark_live(slot);
            return Some(ChurnEvent::Join { slot, value });
        }

        // Deterministic tick cadence: every tick_every-th event position,
        // counted from the start of the stream. Warmup takes priority, so a
        // cadence point landing inside the first `initial` events emits the
        // warmup join, not a tick (only possible when tick_every <= initial).
        if self.cfg.tick_every > 0 && self.emitted % self.cfg.tick_every == 0 {
            return Some(ChurnEvent::Tick);
        }

        // Churn: join / leave / rate-change, constrained to stay valid.
        let can_join = !self.vacant.is_empty();
        let can_leave = self.live.len() > self.cfg.min_live;
        let can_rebid = !self.live.is_empty();
        let roll = self.rng.next_f64();
        if can_join && (roll < 0.35 || !can_rebid) {
            let slot = self.vacant.pop().unwrap_or_default();
            let value = self.draw_value();
            self.mark_live(slot);
            Some(ChurnEvent::Join { slot, value })
        } else if can_leave && roll < 0.65 {
            let slot = self.pick_live();
            self.unmark_live(slot);
            self.vacant.push(slot);
            Some(ChurnEvent::Leave { slot })
        } else if can_rebid {
            let slot = self.pick_live();
            let value = self.draw_value();
            Some(ChurnEvent::RateChange { slot, value })
        } else {
            // Degenerate config (no live machines, no vacancies) cannot
            // occur under the constructor's invariants; emit a tick so the
            // stream length stays exact regardless.
            Some(ChurnEvent::Tick)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replay(cfg: ChurnConfig, seed: u64) -> Vec<ChurnEvent> {
        ChurnGen::new(cfg, seed).collect()
    }

    #[test]
    fn streams_are_seed_deterministic_and_exact_length() {
        let cfg = ChurnConfig {
            events: 5_000,
            tick_every: 32,
            ..ChurnConfig::default()
        };
        let a = replay(cfg, 7);
        let b = replay(cfg, 7);
        assert_eq!(a.len(), 5_000);
        assert_eq!(a, b, "same seed, same stream");
        assert_ne!(a, replay(cfg, 8), "different seed, different stream");
    }

    #[test]
    fn streams_stay_valid_under_mirror_replay() {
        // Mirror the membership and check every event against it: joins
        // land on vacant slots, leaves/rebids on live ones, and the live
        // count never dips below the floor after warmup.
        let cfg = ChurnConfig {
            slots: 24,
            initial: 6,
            events: 20_000,
            tick_every: 17,
            min_live: 2,
            ..ChurnConfig::default()
        };
        let mut live = vec![false; cfg.slots];
        let mut count = 0usize;
        for (k, ev) in ChurnGen::new(cfg, 42).enumerate() {
            match ev {
                ChurnEvent::Join { slot, value } => {
                    assert!(!live[slot], "event {k}: join on a live slot");
                    assert!(value.is_finite() && value > 0.0);
                    live[slot] = true;
                    count += 1;
                }
                ChurnEvent::Leave { slot } => {
                    assert!(live[slot], "event {k}: leave on a vacant slot");
                    live[slot] = false;
                    count -= 1;
                    assert!(count >= cfg.min_live, "event {k}: under the floor");
                }
                ChurnEvent::RateChange { slot, value } => {
                    assert!(live[slot], "event {k}: rebid on a vacant slot");
                    assert!(value.is_finite() && value > 0.0);
                }
                ChurnEvent::Tick => {}
            }
        }
        assert!(count >= cfg.min_live);
    }

    #[test]
    fn tick_cadence_is_deterministic() {
        let cfg = ChurnConfig {
            events: 200,
            tick_every: 10,
            initial: 4,
            ..ChurnConfig::default()
        };
        let ticks = replay(cfg, 1)
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, ChurnEvent::Tick))
            .map(|(i, _)| i + 1)
            .collect::<Vec<_>>();
        // Every multiple of 10 past warmup is a tick.
        assert_eq!(ticks, (1..=20).map(|k| k * 10).collect::<Vec<_>>());
    }

    #[test]
    fn ticks_inside_warmup_yield_to_warmup_joins() {
        // tick_every <= initial: cadence points 3 and 6 land in the warmup
        // prefix and are suppressed; the cadence resumes at position 9.
        let cfg = ChurnConfig {
            events: 30,
            tick_every: 3,
            initial: 8,
            ..ChurnConfig::default()
        };
        let events = replay(cfg, 1);
        assert!(events[..8]
            .iter()
            .all(|e| matches!(e, ChurnEvent::Join { .. })));
        let ticks = events
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, ChurnEvent::Tick))
            .map(|(i, _)| i + 1)
            .collect::<Vec<_>>();
        assert_eq!(ticks, vec![9, 12, 15, 18, 21, 24, 27, 30]);
    }
}
