//! The verification sensor: estimating execution values from observations.
//!
//! The paper's protocol (end of Sec. 3): *"In this waiting period the
//! mechanism estimates the actual job processing rate at each computer and
//! uses it to determine the execution value t̃."* The paper does not give an
//! estimator; this module supplies the natural one. Under every service
//! model in [`crate::server`], the stationary mean response at machine `i`
//! is `t̃_i · x_i`, so
//!
//! ```text
//! t̃̂_i = (mean observed response) / x_i
//! ```
//!
//! is a consistent estimator (for the i.i.d. exponential model it is exactly
//! the maximum-likelihood estimator of the mean divided by a known
//! constant). A confidence interval follows from the response-time sample.
//!
//! [`EstimatorConfig`] adds two knobs used by the robustness ablation:
//! a cap on how many completions are observed (sampling) and multiplicative
//! observation noise.

use lb_stats::ci::{mean_confidence_interval, ConfidenceInterval};
use lb_stats::dist::{sample, LogNormal};
use lb_stats::online::OnlineStats;
use lb_stats::rng::Xoshiro256StarStar;
use serde::{Deserialize, Serialize};

/// Configuration of the execution-value estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimatorConfig {
    /// Observe at most this many completions per machine (`None` = all).
    pub max_samples: Option<usize>,
    /// Multiplicative log-normal observation noise with this coefficient of
    /// variation (0 = noiseless measurement).
    pub noise_cv: f64,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        Self {
            max_samples: None,
            noise_cv: 0.0,
        }
    }
}

/// Accumulates response-time observations for one machine and produces the
/// execution-value estimate.
#[derive(Debug, Clone)]
pub struct ExecValueEstimator {
    stats: OnlineStats,
    config: EstimatorConfig,
}

impl ExecValueEstimator {
    /// Creates an estimator with the given configuration.
    #[must_use]
    pub fn new(config: EstimatorConfig) -> Self {
        Self {
            stats: OnlineStats::new(),
            config,
        }
    }

    /// Records one observed response time, applying configured noise and
    /// sample caps. `rng` drives the noise; it is unused when `noise_cv == 0`.
    pub fn observe(&mut self, response_time: f64, rng: &mut Xoshiro256StarStar) {
        if let Some(cap) = self.config.max_samples {
            if self.stats.count() as usize >= cap {
                return;
            }
        }
        let observed = if self.config.noise_cv > 0.0 {
            let noise = LogNormal::with_mean_cv(1.0, self.config.noise_cv);
            response_time * sample(&noise, rng)
        } else {
            response_time
        };
        self.stats.push(observed);
    }

    /// Number of observations used.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.stats.count()
    }

    /// Point estimate of the execution value given the known assigned rate.
    ///
    /// Returns `None` when the machine produced no observations (idle
    /// machines cannot be verified — the driver substitutes the *bid*, the
    /// only information available, which is also what a real implementation
    /// would have to do).
    #[must_use]
    pub fn estimate(&self, assigned_rate: f64) -> Option<f64> {
        if self.stats.is_empty() || assigned_rate <= 0.0 {
            None
        } else {
            Some(self.stats.mean() / assigned_rate)
        }
    }

    /// Confidence interval for the execution value (requires ≥ 2 samples).
    #[must_use]
    pub fn estimate_ci(&self, assigned_rate: f64, confidence: f64) -> Option<ConfidenceInterval> {
        if self.stats.count() < 2 || assigned_rate <= 0.0 {
            return None;
        }
        let ci = mean_confidence_interval(&self.stats, confidence);
        Some(ConfidenceInterval {
            mean: ci.mean / assigned_rate,
            half_width: ci.half_width / assigned_rate,
            confidence: ci.confidence,
            count: ci.count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServiceModel;
    use crate::workload::PoissonProcess;

    #[test]
    fn noiseless_deterministic_recovery_is_exact() {
        let mut est = ExecValueEstimator::new(EstimatorConfig::default());
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        // Machine with t̃ = 2.5 at rate 4: every response is 10.0.
        for _ in 0..100 {
            est.observe(10.0, &mut rng);
        }
        let t = est.estimate(4.0).unwrap();
        assert!((t - 2.5).abs() < 1e-12);
    }

    #[test]
    fn exponential_model_recovery_converges() {
        let exec = 3.0;
        let rate = 2.0;
        let arrivals = PoissonProcess::new(rate, Xoshiro256StarStar::seed_from_u64(2))
            .arrivals_until(20_000.0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let responses =
            ServiceModel::StationaryExponential.responses(&arrivals, exec, rate, &mut rng);
        let mut est = ExecValueEstimator::new(EstimatorConfig::default());
        for &r in &responses {
            est.observe(r, &mut rng);
        }
        let t = est.estimate(rate).unwrap();
        assert!((t - exec).abs() / exec < 0.03, "estimate {t}");
        let ci = est.estimate_ci(rate, 0.99).unwrap();
        assert!(
            ci.contains(exec),
            "CI [{}, {}] misses {exec}",
            ci.lo(),
            ci.hi()
        );
    }

    #[test]
    fn idle_machine_yields_none() {
        let est = ExecValueEstimator::new(EstimatorConfig::default());
        assert_eq!(est.estimate(1.0), None);
        assert_eq!(est.estimate_ci(1.0, 0.95), None);
        let mut est2 = ExecValueEstimator::new(EstimatorConfig::default());
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        est2.observe(1.0, &mut rng);
        assert_eq!(est2.estimate(0.0), None);
    }

    #[test]
    fn sample_cap_is_respected() {
        let mut est = ExecValueEstimator::new(EstimatorConfig {
            max_samples: Some(10),
            noise_cv: 0.0,
        });
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        for i in 0..100 {
            est.observe(i as f64, &mut rng);
        }
        assert_eq!(est.samples(), 10);
        // Only the first 10 observations (0..9, mean 4.5) were used.
        assert!((est.estimate(1.0).unwrap() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn noise_is_unbiased_but_widens_spread() {
        let mut clean = ExecValueEstimator::new(EstimatorConfig::default());
        let mut noisy = ExecValueEstimator::new(EstimatorConfig {
            max_samples: None,
            noise_cv: 0.3,
        });
        let mut rng1 = Xoshiro256StarStar::seed_from_u64(6);
        let mut rng2 = Xoshiro256StarStar::seed_from_u64(7);
        for _ in 0..50_000 {
            clean.observe(5.0, &mut rng1);
            noisy.observe(5.0, &mut rng2);
        }
        let c = clean.estimate(1.0).unwrap();
        let n = noisy.estimate(1.0).unwrap();
        assert!((c - 5.0).abs() < 1e-12);
        assert!((n - 5.0).abs() < 0.05, "noisy estimate {n} biased");
        let ci_c = clean.estimate_ci(1.0, 0.95).unwrap();
        let ci_n = noisy.estimate_ci(1.0, 0.95).unwrap();
        assert!(ci_n.half_width > ci_c.half_width);
    }
}
