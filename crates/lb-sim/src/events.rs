//! Deterministic discrete-event queue.
//!
//! The classic DES core: a priority queue of `(time, sequence, event)` where
//! the monotone sequence number breaks time ties in insertion order, making
//! the whole simulation deterministic for a given seed regardless of event
//! payloads.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry in the queue.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list ordered by `(time, insertion order)`.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time — the time of the last popped event.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is before the current simulation time (causality).
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "EventQueue: scheduling into the past ({time} < {})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Schedules `event` after a non-negative delay from *now*.
    ///
    /// # Panics
    /// Panics if `delay` is negative or NaN.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Advances the clock to `time` without popping an event.
    ///
    /// Used by drivers that interleave this queue with another time source
    /// (e.g. the protocol chaos runtime firing a retransmission timer while
    /// the network queue is quiet): the clock moves forward so subsequent
    /// relative scheduling is anchored at the caller's notion of *now*.
    ///
    /// # Panics
    /// Panics if `time` is before the current clock, or if an event earlier
    /// than `time` is still pending (popping it later would move time
    /// backwards).
    pub fn advance_to(&mut self, time: SimTime) {
        assert!(
            time >= self.now,
            "EventQueue: advancing into the past ({time} < {})",
            self.now
        );
        if let Some(next) = self.peek_time() {
            assert!(
                time <= next,
                "EventQueue: advancing past a pending event at {next}"
            );
        }
        self.now = time;
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| {
            self.now = s.time;
            (s.time, s.event)
        })
    }

    /// The timestamp of the next event without popping it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(3.0), "c");
        q.schedule(SimTime::new(1.0), "a");
        q.schedule(SimTime::new(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::new(1.0);
        q.schedule(t, 1);
        q.schedule(t, 2);
        q.schedule(t, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(5.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peek_time(), Some(SimTime::new(5.0)));
        q.pop();
        assert_eq!(q.now(), SimTime::new(5.0));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(2.0), "first");
        q.pop();
        q.schedule_in(1.5, "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::new(3.5));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn causality_is_enforced() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(2.0), ());
        q.pop();
        q.schedule(SimTime::new(1.0), ());
    }

    #[test]
    fn advance_to_moves_the_clock_between_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(5.0), ());
        q.advance_to(SimTime::new(3.0));
        assert_eq!(q.now(), SimTime::new(3.0));
        q.schedule_in(1.0, ());
        let (t, ()) = q.pop().unwrap();
        assert_eq!(t, SimTime::new(4.0));
    }

    #[test]
    #[should_panic(expected = "advancing past a pending event")]
    fn advance_past_pending_event_is_rejected() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(1.0), ());
        q.advance_to(SimTime::new(2.0));
    }

    #[test]
    #[should_panic(expected = "advancing into the past")]
    fn advance_backwards_is_rejected() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::new(2.0));
        q.advance_to(SimTime::new(1.0));
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::new(1.0), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}
