//! Whole-system dispatch simulation.
//!
//! The per-machine pipeline in [`crate::driver`] *assumes* the classic
//! Poisson-splitting theorem: routing one system-wide Poisson stream of rate
//! `R` to machine `i` with probability `x_i/R` yields independent Poisson
//! streams of rates `x_i`. This module implements the *literal* system — one
//! arrival stream, per-job probabilistic dispatch — so the assumption can be
//! validated empirically (KS tests on the thinned streams, agreement of the
//! resulting execution-value estimates).

use crate::driver::SimulationConfig;
use crate::estimator::ExecValueEstimator;
use crate::workload::PoissonProcess;
use lb_core::{pr_allocate, Allocation, CoreError};
use lb_stats::dist::Categorical;
use lb_stats::rng::Xoshiro256StarStar;

/// Result of a dispatch-level simulation.
#[derive(Debug, Clone)]
pub struct DispatchReport {
    /// The PR allocation the dispatcher sampled from.
    pub allocation: Allocation,
    /// Arrival times routed to each machine.
    pub arrivals: Vec<Vec<f64>>,
    /// Estimated execution values (bid fallback for idle machines).
    pub estimated_exec_values: Vec<f64>,
}

/// Simulates one round at the dispatch level: a single system-wide Poisson
/// stream of rate `R`, each job routed independently with probabilities
/// `x_i/R`, executed under `config.model` and observed by the estimator.
///
/// # Errors
/// Propagates allocation/validation errors.
pub fn simulate_system_dispatch(
    bids: &[f64],
    actual_exec_values: &[f64],
    total_rate: f64,
    config: &SimulationConfig,
) -> Result<DispatchReport, CoreError> {
    if actual_exec_values.len() != bids.len() {
        return Err(CoreError::LengthMismatch {
            expected: bids.len(),
            actual: actual_exec_values.len(),
        });
    }
    if !(config.horizon.is_finite() && config.horizon > 0.0) {
        return Err(CoreError::InvalidRate(config.horizon));
    }
    let allocation = pr_allocate(bids, total_rate)?;
    let n = bids.len();

    // One system-wide stream; per-job categorical routing.
    let base = Xoshiro256StarStar::seed_from_u64(config.seed ^ 0xd15_a7c4);
    let mut arrival_rng = base.stream(0);
    let mut route_rng = base.stream(1);
    let router = Categorical::new(allocation.rates());
    let mut stream = PoissonProcess::new(total_rate, arrival_rng.clone());
    let _ = &mut arrival_rng;

    let mut arrivals: Vec<Vec<f64>> = vec![Vec::new(); n];
    for t in stream.arrivals_until(config.horizon) {
        let mut next = || route_rng.next_u64();
        let machine = router.sample_index(&mut next);
        arrivals[machine].push(t);
    }

    // Execute and estimate per machine, exactly as the driver does.
    let mut estimated = Vec::with_capacity(n);
    for i in 0..n {
        let mut rng = base.stream(2 + i as u64);
        let responses = config.model.responses(
            &arrivals[i],
            actual_exec_values[i],
            allocation.rate(i),
            &mut rng,
        );
        let mut estimator = ExecValueEstimator::new(config.estimator);
        for (&a, &r) in arrivals[i].iter().zip(&responses) {
            if a >= config.warmup {
                estimator.observe(r, &mut rng);
            }
        }
        estimated.push(estimator.estimate(allocation.rate(i)).unwrap_or(bids[i]));
    }

    Ok(DispatchReport {
        allocation,
        arrivals,
        estimated_exec_values: estimated,
    })
}

// `Rng` trait needed for `route_rng.next_u64()` above.
use lb_stats::rng::Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServiceModel;
    use lb_core::scenario::{paper_true_values, PAPER_ARRIVAL_RATE};
    use lb_stats::ks::{exponential_cdf, ks_test};

    fn config(horizon: f64, model: ServiceModel) -> SimulationConfig {
        SimulationConfig {
            horizon,
            seed: 77,
            model,
            ..SimulationConfig::default()
        }
    }

    #[test]
    fn routed_load_matches_the_allocation() {
        let trues = paper_true_values();
        let report = simulate_system_dispatch(
            &trues,
            &trues,
            PAPER_ARRIVAL_RATE,
            &config(5_000.0, ServiceModel::StationaryDeterministic),
        )
        .unwrap();
        for (i, arr) in report.arrivals.iter().enumerate() {
            let empirical = arr.len() as f64 / 5_000.0;
            let target = report.allocation.rate(i);
            assert!(
                (empirical - target).abs() / target < 0.06,
                "machine {i}: {empirical} vs {target}"
            );
        }
    }

    #[test]
    fn thinned_streams_are_poisson() {
        // Poisson splitting: the per-machine interarrivals must pass a KS
        // test against Exp(x_i).
        let trues = paper_true_values();
        let report = simulate_system_dispatch(
            &trues,
            &trues,
            PAPER_ARRIVAL_RATE,
            &config(20_000.0, ServiceModel::StationaryDeterministic),
        )
        .unwrap();
        for i in [0usize, 5, 12] {
            let arr = &report.arrivals[i];
            let mut gaps = Vec::with_capacity(arr.len());
            let mut prev = 0.0;
            for &t in arr {
                gaps.push(t - prev);
                prev = t;
            }
            let test = ks_test(&gaps, exponential_cdf(report.allocation.rate(i)));
            assert!(
                !test.rejects_at(0.01),
                "machine {i}: KS p = {}",
                test.p_value
            );
        }
    }

    #[test]
    fn dispatch_estimates_agree_with_per_machine_pipeline() {
        // Both realisations recover the execution values; their estimates
        // agree within sampling tolerance.
        let trues = paper_true_values();
        let mut exec = trues.clone();
        exec[0] = 2.0; // a lazy machine must be detected by both
        let cfg = config(20_000.0, ServiceModel::StationaryExponential);
        let dispatch = simulate_system_dispatch(&trues, &exec, PAPER_ARRIVAL_RATE, &cfg).unwrap();
        let per_machine =
            crate::driver::simulate_round(&trues, &exec, PAPER_ARRIVAL_RATE, &cfg).unwrap();
        for i in 0..trues.len() {
            let a = dispatch.estimated_exec_values[i];
            let b = per_machine.estimated_exec_values[i];
            assert!((a - b).abs() / b < 0.12, "machine {i}: {a} vs {b}");
            assert!(
                (a - exec[i]).abs() / exec[i] < 0.1,
                "machine {i} truth: {a} vs {}",
                exec[i]
            );
        }
        assert!((dispatch.estimated_exec_values[0] - 2.0).abs() < 0.2);
    }

    #[test]
    fn invalid_inputs_error() {
        let trues = paper_true_values();
        assert!(simulate_system_dispatch(
            &trues,
            &trues[..3],
            PAPER_ARRIVAL_RATE,
            &config(100.0, ServiceModel::StationaryDeterministic)
        )
        .is_err());
        let mut cfg = config(100.0, ServiceModel::StationaryDeterministic);
        cfg.horizon = -1.0;
        assert!(simulate_system_dispatch(&trues, &trues, PAPER_ARRIVAL_RATE, &cfg).is_err());
    }
}
