//! Job arrival workloads.
//!
//! The paper assumes jobs arrive at the system with total rate `R` and that
//! the PR allocation splits this stream so machine `i` receives rate `x_i`.
//! Splitting a Poisson stream by independent routing yields independent
//! Poisson streams, so the simulator generates one [`PoissonProcess`] per
//! machine at its assigned rate.

use lb_stats::dist::{sample, Exponential};
use lb_stats::rng::Xoshiro256StarStar;
use serde::{Deserialize, Serialize};

/// A homogeneous Poisson arrival process with a private RNG stream.
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    interarrival: Exponential,
    rng: Xoshiro256StarStar,
    now: f64,
}

impl PoissonProcess {
    /// Creates a Poisson process with the given arrival rate (> 0) and a
    /// dedicated RNG stream.
    ///
    /// # Panics
    /// Panics unless `rate` is finite and strictly positive.
    #[must_use]
    pub fn new(rate: f64, rng: Xoshiro256StarStar) -> Self {
        Self {
            interarrival: Exponential::new(rate),
            rng,
            now: 0.0,
        }
    }

    /// The arrival rate λ.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.interarrival.rate()
    }

    /// Draws the next arrival time (strictly increasing).
    pub fn next_arrival(&mut self) -> f64 {
        self.now += sample(&self.interarrival, &mut self.rng);
        self.now
    }

    /// Generates all arrival times up to `horizon`.
    pub fn arrivals_until(&mut self, horizon: f64) -> Vec<f64> {
        let mut out = Vec::with_capacity((self.rate() * horizon).ceil().max(1.0) as usize);
        loop {
            let t = self.next_arrival();
            if t > horizon {
                // Leave `now` past the horizon; subsequent calls continue the
                // same process.
                break;
            }
            out.push(t);
        }
        out
    }
}

/// A two-state Markov-modulated Poisson process (MMPP-2): bursty arrivals.
///
/// The process alternates between a *calm* and a *burst* state with
/// exponentially distributed dwell times; within a state, arrivals are
/// Poisson at that state's rate. MMPPs are the standard parsimonious model
/// of bursty traffic, used here to stress the verification estimator beyond
/// the paper's stationary-Poisson assumption.
#[derive(Debug, Clone)]
pub struct MmppProcess {
    rates: [f64; 2],
    dwell_means: [f64; 2],
    state: usize,
    state_until: f64,
    now: f64,
    rng: Xoshiro256StarStar,
}

impl MmppProcess {
    /// Creates an MMPP-2 starting in state 0.
    ///
    /// # Panics
    /// Panics unless all rates and dwell means are finite and positive.
    #[must_use]
    pub fn new(rates: [f64; 2], dwell_means: [f64; 2], mut rng: Xoshiro256StarStar) -> Self {
        assert!(
            rates.iter().all(|r| r.is_finite() && *r > 0.0),
            "MmppProcess: rates must be finite and > 0"
        );
        assert!(
            dwell_means.iter().all(|d| d.is_finite() && *d > 0.0),
            "MmppProcess: dwell means must be finite and > 0"
        );
        let first_dwell = sample(&Exponential::with_mean(dwell_means[0]), &mut rng);
        Self {
            rates,
            dwell_means,
            state: 0,
            state_until: first_dwell,
            now: 0.0,
            rng,
        }
    }

    /// Long-run average arrival rate (dwell-weighted).
    #[must_use]
    pub fn mean_rate(&self) -> f64 {
        let w = self.dwell_means[0] + self.dwell_means[1];
        (self.rates[0] * self.dwell_means[0] + self.rates[1] * self.dwell_means[1]) / w
    }

    /// Draws the next arrival time (strictly increasing), switching states
    /// as dwell periods expire.
    pub fn next_arrival(&mut self) -> f64 {
        loop {
            let gap = sample(&Exponential::new(self.rates[self.state]), &mut self.rng);
            let candidate = self.now + gap;
            if candidate <= self.state_until {
                self.now = candidate;
                return self.now;
            }
            // The tentative arrival falls after the state switch: advance to
            // the switch and resample in the new state (memorylessness makes
            // this exact).
            self.now = self.state_until;
            self.state ^= 1;
            let dwell = sample(
                &Exponential::with_mean(self.dwell_means[self.state]),
                &mut self.rng,
            );
            self.state_until = self.now + dwell;
        }
    }

    /// Generates all arrival times up to `horizon`.
    pub fn arrivals_until(&mut self, horizon: f64) -> Vec<f64> {
        let mut out = Vec::new();
        loop {
            let t = self.next_arrival();
            if t > horizon {
                break;
            }
            out.push(t);
        }
        out
    }
}

/// A job flowing through the simulated system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Global job identifier.
    pub id: u64,
    /// Machine the job was routed to.
    pub machine: usize,
    /// Arrival time at the machine.
    pub arrival: f64,
}

/// How job arrivals are generated for each machine.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum WorkloadModel {
    /// Stationary Poisson arrivals at the assigned rate (the paper's model).
    #[default]
    Poisson,
    /// Bursty MMPP-2 arrivals whose *long-run mean* equals the assigned
    /// rate: the burst state runs at `burstiness ×` the calm state's rate.
    Bursty {
        /// Ratio of burst-state to calm-state arrival rate (> 1).
        burstiness: f64,
        /// Mean dwell time in each state (calm, burst), in seconds.
        dwell_means: [f64; 2],
    },
}

impl WorkloadModel {
    fn arrivals(self, rate: f64, horizon: f64, rng: Xoshiro256StarStar) -> Vec<f64> {
        match self {
            Self::Poisson => PoissonProcess::new(rate, rng).arrivals_until(horizon),
            Self::Bursty {
                burstiness,
                dwell_means,
            } => {
                assert!(
                    burstiness > 1.0,
                    "WorkloadModel::Bursty: burstiness must be > 1"
                );
                // Choose calm/burst rates so the dwell-weighted mean is `rate`:
                // r_calm·d0 + b·r_calm·d1 = rate·(d0+d1).
                let [d0, d1] = dwell_means;
                let r_calm = rate * (d0 + d1) / (d0 + burstiness * d1);
                MmppProcess::new([r_calm, burstiness * r_calm], dwell_means, rng)
                    .arrivals_until(horizon)
            }
        }
    }
}

/// Generates per-machine arrival traces for one round.
///
/// Machine `i` receives a stream at long-run rate `rates[i]` under `model`;
/// machines with zero (or epsilon) rate receive no jobs. Jobs are numbered
/// globally in per-machine generation order.
///
/// # Panics
/// Panics if `horizon` is not positive or any rate is negative/non-finite.
#[must_use]
pub fn per_machine_traces_with(
    rates: &[f64],
    horizon: f64,
    seed: u64,
    model: WorkloadModel,
) -> Vec<Vec<Job>> {
    per_machine_traces_offset(rates, horizon, seed, model, 0)
}

/// [`per_machine_traces_with`] for a *contiguous slice* of a larger system:
/// `rates[i]` describes global machine `offset + i`.
///
/// Machine `offset + i` draws from RNG stream `offset + i` of the same base
/// seed, so partitioning a round across shard coordinators and concatenating
/// the traces reproduces the single-coordinator traces arrival-for-arrival
/// (job *ids* are numbered per call, but nothing downstream consumes them —
/// observations and estimates depend only on arrival times).
///
/// # Panics
/// Panics if `horizon` is not positive or any rate is negative/non-finite.
#[must_use]
pub fn per_machine_traces_offset(
    rates: &[f64],
    horizon: f64,
    seed: u64,
    model: WorkloadModel,
    offset: u64,
) -> Vec<Vec<Job>> {
    assert!(
        horizon.is_finite() && horizon > 0.0,
        "per_machine_traces: invalid horizon"
    );
    let base = Xoshiro256StarStar::seed_from_u64(seed);
    // Incremental stream derivation: one jump per machine instead of
    // O(machine index) jumps, which is what keeps trace generation O(n)
    // at n = 10⁶ machines. Bit-identical to `base.stream(offset + i)`.
    let mut streams = base.streams(offset);
    let mut next_id = 0u64;
    rates
        .iter()
        .enumerate()
        .map(|(i, &rate)| {
            assert!(
                rate.is_finite() && rate >= 0.0,
                "per_machine_traces: invalid rate {rate}"
            );
            // Streams are positional: idle machines still consume theirs.
            let stream_rng = streams.next().expect("streams is infinite");
            if rate <= 1e-12 {
                return Vec::new();
            }
            let machine = usize::try_from(offset)
                .unwrap_or(usize::MAX)
                .saturating_add(i);
            model
                .arrivals(rate, horizon, stream_rng)
                .into_iter()
                .map(|arrival| {
                    let id = next_id;
                    next_id += 1;
                    Job {
                        id,
                        machine,
                        arrival,
                    }
                })
                .collect()
        })
        .collect()
}

/// Generates per-machine *Poisson* arrival traces (the paper's model).
///
/// # Panics
/// Panics if `horizon` is not positive or any rate is negative/non-finite.
#[must_use]
pub fn per_machine_traces(rates: &[f64], horizon: f64, seed: u64) -> Vec<Vec<Job>> {
    per_machine_traces_with(rates, horizon, seed, WorkloadModel::Poisson)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_stats::online::OnlineStats;

    #[test]
    fn arrivals_are_strictly_increasing() {
        let mut p = PoissonProcess::new(5.0, Xoshiro256StarStar::seed_from_u64(1));
        let mut prev = 0.0;
        for _ in 0..1000 {
            let t = p.next_arrival();
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn empirical_rate_matches() {
        let mut p = PoissonProcess::new(4.0, Xoshiro256StarStar::seed_from_u64(2));
        let arrivals = p.arrivals_until(10_000.0);
        let rate = arrivals.len() as f64 / 10_000.0;
        assert!((rate - 4.0).abs() < 0.1, "rate = {rate}");
    }

    #[test]
    fn interarrival_times_are_exponential() {
        let mut p = PoissonProcess::new(2.0, Xoshiro256StarStar::seed_from_u64(3));
        let arrivals = p.arrivals_until(50_000.0);
        let mut stats = OnlineStats::new();
        let mut prev = 0.0;
        for &t in &arrivals {
            stats.push(t - prev);
            prev = t;
        }
        // Mean 0.5, std 0.5 for Exp(2).
        assert!((stats.mean() - 0.5).abs() < 0.01, "mean {}", stats.mean());
        assert!(
            (stats.std_dev() - 0.5).abs() < 0.02,
            "std {}",
            stats.std_dev()
        );
    }

    #[test]
    fn interarrivals_pass_a_ks_test_against_the_exponential_cdf() {
        // Stronger than the moment checks: the full interarrival law is
        // exponential (Kolmogorov-Smirnov at 1%).
        let rate = 3.0;
        let mut p = PoissonProcess::new(rate, Xoshiro256StarStar::seed_from_u64(20));
        let arrivals = p.arrivals_until(5_000.0);
        let mut gaps = Vec::with_capacity(arrivals.len());
        let mut prev = 0.0;
        for &t in &arrivals {
            gaps.push(t - prev);
            prev = t;
        }
        let test = lb_stats::ks::ks_test(&gaps, lb_stats::ks::exponential_cdf(rate));
        assert!(!test.rejects_at(0.01), "KS p-value {}", test.p_value);
    }

    #[test]
    fn mmpp_interarrivals_fail_the_single_exponential_ks_test() {
        // The same test separates the bursty process from a plain Poisson
        // stream of equal mean rate.
        let mut p = MmppProcess::new(
            [0.5, 10.0],
            [40.0, 10.0],
            Xoshiro256StarStar::seed_from_u64(21),
        );
        let arrivals = p.arrivals_until(5_000.0);
        let mut gaps = Vec::with_capacity(arrivals.len());
        let mut prev = 0.0;
        for &t in &arrivals {
            gaps.push(t - prev);
            prev = t;
        }
        let test = lb_stats::ks::ks_test(&gaps, lb_stats::ks::exponential_cdf(p.mean_rate()));
        assert!(test.rejects_at(0.001), "KS p-value {}", test.p_value);
    }

    #[test]
    fn continuation_past_horizon_is_seamless() {
        let mut p = PoissonProcess::new(1.0, Xoshiro256StarStar::seed_from_u64(4));
        let first = p.arrivals_until(100.0);
        let second = p.arrivals_until(200.0);
        assert!(second.first().copied().unwrap_or(f64::INFINITY) > 100.0);
        assert!(!first.is_empty());
    }

    #[test]
    fn traces_cover_machines_proportionally() {
        let rates = [4.0, 2.0, 0.0];
        let traces = per_machine_traces(&rates, 5_000.0, 7);
        assert_eq!(traces.len(), 3);
        assert!(traces[2].is_empty());
        let ratio = traces[0].len() as f64 / traces[1].len() as f64;
        assert!((ratio - 2.0).abs() < 0.15, "ratio = {ratio}");
        // Job ids are globally unique.
        let mut ids: Vec<u64> = traces.iter().flatten().map(|j| j.id).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn mmpp_mean_rate_matches_empirical() {
        let mut p = MmppProcess::new(
            [1.0, 20.0],
            [50.0, 5.0],
            Xoshiro256StarStar::seed_from_u64(11),
        );
        let horizon = 50_000.0;
        let arrivals = p.arrivals_until(horizon);
        let empirical = arrivals.len() as f64 / horizon;
        let analytic = p.mean_rate(); // (1*50 + 20*5)/55 = 150/55
        assert!((analytic - 150.0 / 55.0).abs() < 1e-12);
        assert!(
            (empirical - analytic).abs() / analytic < 0.05,
            "empirical {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Index of dispersion of counts over windows: Poisson = 1, MMPP > 1.
        let window = 10.0;
        let horizon = 20_000.0;
        let count_variance = |arrivals: &[f64]| -> (f64, f64) {
            let bins = (horizon / window) as usize;
            let mut counts = vec![0u32; bins];
            for &a in arrivals {
                let b = ((a / window) as usize).min(bins - 1);
                counts[b] += 1;
            }
            let s =
                OnlineStats::from_slice(&counts.iter().map(|&c| f64::from(c)).collect::<Vec<_>>());
            (s.mean(), s.variance())
        };
        let mut mmpp = MmppProcess::new(
            [0.5, 10.0],
            [40.0, 10.0],
            Xoshiro256StarStar::seed_from_u64(12),
        );
        let (m_mean, m_var) = count_variance(&mmpp.arrivals_until(horizon));
        let mut poisson =
            PoissonProcess::new(mmpp.mean_rate(), Xoshiro256StarStar::seed_from_u64(13));
        let (p_mean, p_var) = count_variance(&poisson.arrivals_until(horizon));
        let mmpp_iod = m_var / m_mean;
        let poisson_iod = p_var / p_mean;
        assert!(
            mmpp_iod > 2.0 * poisson_iod,
            "IoD mmpp {mmpp_iod} vs poisson {poisson_iod}"
        );
    }

    #[test]
    fn mmpp_arrivals_strictly_increase() {
        let mut p = MmppProcess::new(
            [2.0, 8.0],
            [5.0, 5.0],
            Xoshiro256StarStar::seed_from_u64(14),
        );
        let mut prev = 0.0;
        for _ in 0..5_000 {
            let t = p.next_arrival();
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn offset_traces_stitch_into_the_full_round() {
        // Sharding a round: generating each contiguous chunk of machines with
        // its global stream offset reproduces the single-call traces
        // arrival-for-arrival (ids are per-call; nothing downstream reads them).
        let rates = [1.0, 2.0, 0.5, 3.0, 0.0, 1.5, 2.5];
        let horizon = 200.0;
        let seed = 42;
        let full = per_machine_traces(&rates, horizon, seed);
        for k in [1usize, 2, 3, 7] {
            let chunk = rates.len().div_ceil(k);
            let mut stitched: Vec<Vec<Job>> = Vec::new();
            for (s, part) in rates.chunks(chunk).enumerate() {
                stitched.extend(per_machine_traces_offset(
                    part,
                    horizon,
                    seed,
                    WorkloadModel::Poisson,
                    (s * chunk) as u64,
                ));
            }
            assert_eq!(stitched.len(), full.len(), "k = {k}");
            for (m, (a, b)) in stitched.iter().zip(&full).enumerate() {
                assert_eq!(a.len(), b.len(), "k = {k}, machine {m}");
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.machine, y.machine);
                    assert_eq!(x.arrival.to_bits(), y.arrival.to_bits());
                }
            }
        }
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let a = per_machine_traces(&[1.0, 2.0], 100.0, 42);
        let b = per_machine_traces(&[1.0, 2.0], 100.0, 42);
        assert_eq!(a, b);
        let c = per_machine_traces(&[1.0, 2.0], 100.0, 43);
        assert_ne!(a, c);
    }
}
