//! Discrete-event simulation substrate for the load balancing mechanism.
//!
//! The paper evaluates its mechanism "by simulation" on a 16-computer
//! system; its protocol description also requires the mechanism to *estimate
//! the actual job processing rate at each computer* while the allocated jobs
//! execute — that estimate is the verification signal `t̃`. This crate
//! provides everything needed to realise that pipeline from first
//! principles:
//!
//! * [`time`] — a totally ordered simulation clock.
//! * [`events`] — a deterministic discrete-event queue (time, FIFO tiebreak).
//! * [`workload`] — Poisson job streams (the paper's arrival model) and
//!   trace generators.
//! * [`queue`] — FCFS single-server queue simulation plus M/M/1 analytic
//!   formulas used to validate it (Little's law, stationary response times).
//! * [`server`] — per-machine service models that realise the paper's
//!   latency abstraction `l_i(x_i) = t̃_i x_i` as an actual stochastic
//!   process (stationary-response sampling or a literal M/M/1 queue whose
//!   operating point matches the target mean response).
//! * [`estimator`] — the verification sensor: estimates `t̃_i` from observed
//!   job completions, with optional noise injection for robustness studies.
//! * [`driver`] — one full simulated round: allocate → execute → observe →
//!   estimate, and the end-to-end pipeline that feeds the estimates into a
//!   [`lb_mechanism::VerifiedMechanism`] for payments.
//! * [`metrics`] — per-machine observation records and sanity checks.
//! * [`replication`] — deterministic parallel replication runner.

pub mod churn;
pub mod driver;
pub mod estimator;
pub mod events;
pub mod metrics;
pub mod queue;
pub mod replication;
pub mod server;
pub mod system;
pub mod time;
pub mod workload;

pub use churn::{ChurnConfig, ChurnEvent, ChurnGen};
pub use driver::{
    simulate_partition, simulate_partition_observed, simulate_partition_timed, simulate_round,
    simulate_round_observed, verified_round, PartitionReport, RoundReport, SimulationConfig,
    VerifiedRound,
};
pub use estimator::{EstimatorConfig, ExecValueEstimator};
pub use events::EventQueue;
pub use server::ServiceModel;
pub use system::{simulate_system_dispatch, DispatchReport};
pub use time::SimTime;
pub use workload::PoissonProcess;
