//! Per-machine observation records for one simulated round.

use lb_stats::online::OnlineStats;

/// What the coordinator observed about one machine during a round.
#[derive(Debug, Clone)]
pub struct MachineObservation {
    /// Machine index.
    pub machine: usize,
    /// Rate the PR allocation assigned.
    pub assigned_rate: f64,
    /// Number of jobs that arrived during the horizon.
    pub jobs_arrived: u64,
    /// Response-time statistics over the observed completions.
    pub response: OnlineStats,
    /// Estimated execution value (`None` for idle machines).
    pub estimated_exec: Option<f64>,
}

impl MachineObservation {
    /// Estimated contribution of this machine to the total latency,
    /// `x_i · mean_response_i ≈ t̃_i x_i²`.
    #[must_use]
    pub fn latency_contribution(&self) -> f64 {
        if self.response.is_empty() {
            0.0
        } else {
            self.assigned_rate * self.response.mean()
        }
    }

    /// Empirical throughput over the horizon (jobs per unit time).
    #[must_use]
    pub fn throughput(&self, horizon: f64) -> f64 {
        assert!(horizon > 0.0, "throughput: horizon must be positive");
        self.jobs_arrived as f64 / horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(rate: f64, responses: &[f64]) -> MachineObservation {
        MachineObservation {
            machine: 0,
            assigned_rate: rate,
            jobs_arrived: responses.len() as u64,
            response: OnlineStats::from_slice(responses),
            estimated_exec: None,
        }
    }

    #[test]
    fn latency_contribution_is_rate_times_mean() {
        let o = obs(2.0, &[3.0, 5.0]);
        assert!((o.latency_contribution() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn idle_machine_contributes_nothing() {
        let o = obs(0.0, &[]);
        assert_eq!(o.latency_contribution(), 0.0);
    }

    #[test]
    fn throughput_is_count_over_horizon() {
        let o = obs(1.0, &[1.0, 1.0, 1.0, 1.0]);
        assert!((o.throughput(2.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn throughput_rejects_zero_horizon() {
        let _ = obs(1.0, &[1.0]).throughput(0.0);
    }
}
