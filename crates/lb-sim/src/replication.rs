//! Deterministic parallel replication of simulation rounds.
//!
//! Simulation results in the experiment harness are reported as mean ±
//! confidence interval over independent replications; this module fans the
//! replications out over threads ([`lb_stats::parallel::par_map`]) while
//! keeping the result bit-identical to a sequential run (seeds are derived
//! from the replication index, never from thread identity).

use crate::driver::{simulate_round, RoundReport, SimulationConfig};
use lb_core::CoreError;
use lb_stats::ci::{mean_confidence_interval, ConfidenceInterval};
use lb_stats::online::OnlineStats;
use lb_stats::parallel::par_map;

/// Aggregated replication results for one experiment point.
#[derive(Debug, Clone)]
pub struct ReplicationSummary {
    /// Per-replication estimated total latency.
    pub latencies: Vec<f64>,
    /// Confidence interval over the replications.
    pub latency_ci: ConfidenceInterval,
    /// Per-machine mean estimated execution value across replications.
    pub mean_estimated_exec: Vec<f64>,
}

/// Runs `replications` independent copies of `simulate_round` in parallel
/// and aggregates them.
///
/// Replication `k` uses seed `config.seed + k`, so the ensemble is
/// reproducible and grows incrementally (adding replications never changes
/// earlier ones).
///
/// # Errors
/// Propagates the first simulation error encountered.
///
/// # Panics
/// Panics if `replications < 2` (no confidence interval exists).
pub fn replicate(
    bids: &[f64],
    exec_values: &[f64],
    total_rate: f64,
    config: &SimulationConfig,
    replications: usize,
    threads: usize,
) -> Result<ReplicationSummary, CoreError> {
    assert!(replications >= 2, "replicate: need at least 2 replications");
    let results: Vec<Result<RoundReport, CoreError>> = par_map(replications, threads, |k| {
        let mut cfg = *config;
        cfg.seed = config.seed.wrapping_add(k as u64);
        simulate_round(bids, exec_values, total_rate, &cfg)
    });

    let mut latencies = Vec::with_capacity(replications);
    let mut per_machine: Vec<OnlineStats> = vec![OnlineStats::new(); bids.len()];
    for r in results {
        let report = r?;
        latencies.push(report.estimated_total_latency);
        for (i, &e) in report.estimated_exec_values.iter().enumerate() {
            per_machine[i].push(e);
        }
    }
    let stats = OnlineStats::from_slice(&latencies);
    let latency_ci = mean_confidence_interval(&stats, 0.95);
    let mean_estimated_exec = per_machine.iter().map(OnlineStats::mean).collect();
    Ok(ReplicationSummary {
        latencies,
        latency_ci,
        mean_estimated_exec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServiceModel;
    use lb_core::scenario::{paper_true_values, PAPER_ARRIVAL_RATE};

    fn config() -> SimulationConfig {
        SimulationConfig {
            horizon: 800.0,
            seed: 100,
            model: ServiceModel::StationaryExponential,
            workload: Default::default(),
            warmup: 0.0,
            estimator: crate::estimator::EstimatorConfig::default(),
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let trues = paper_true_values();
        let a = replicate(&trues, &trues, PAPER_ARRIVAL_RATE, &config(), 8, 1).unwrap();
        let b = replicate(&trues, &trues, PAPER_ARRIVAL_RATE, &config(), 8, 4).unwrap();
        assert_eq!(a.latencies, b.latencies);
        assert_eq!(a.mean_estimated_exec, b.mean_estimated_exec);
    }

    #[test]
    fn ci_covers_analytic_latency() {
        let trues = paper_true_values();
        let summary = replicate(&trues, &trues, PAPER_ARRIVAL_RATE, &config(), 16, 4).unwrap();
        let analytic = 400.0 / 5.1;
        // Generous tolerance: CI half-width plus 5% modelling slack.
        assert!(
            (summary.latency_ci.mean - analytic).abs()
                < summary.latency_ci.half_width + 0.05 * analytic,
            "CI mean {} vs analytic {analytic}",
            summary.latency_ci.mean
        );
    }

    #[test]
    fn replications_are_incremental() {
        let trues = paper_true_values();
        let small = replicate(&trues, &trues, PAPER_ARRIVAL_RATE, &config(), 4, 2).unwrap();
        let large = replicate(&trues, &trues, PAPER_ARRIVAL_RATE, &config(), 8, 2).unwrap();
        assert_eq!(&large.latencies[..4], &small.latencies[..]);
    }

    #[test]
    #[should_panic(expected = "at least 2 replications")]
    fn single_replication_panics() {
        let trues = paper_true_values();
        let _ = replicate(&trues, &trues, PAPER_ARRIVAL_RATE, &config(), 1, 1);
    }
}
