//! Round drivers: the full allocate → execute → observe → estimate → pay
//! pipeline of the paper's protocol, realised over the discrete-event
//! substrate.

use crate::estimator::{EstimatorConfig, ExecValueEstimator};
use crate::metrics::MachineObservation;
use crate::server::ServiceModel;
use lb_core::{pr_allocate, Allocation, CoreError};
use lb_mechanism::{run_mechanism, MechanismError, MechanismOutcome, Profile, VerifiedMechanism};
use lb_stats::rng::Xoshiro256StarStar;
use lb_telemetry::{Collector, Field, NoopCollector, SpanId, Subsystem};
use serde::{Deserialize, Serialize};

/// Configuration of one simulated round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Simulated horizon (seconds of job arrivals).
    pub horizon: f64,
    /// Root RNG seed; every machine derives an independent stream from it.
    pub seed: u64,
    /// How machines realise the latency abstraction.
    pub model: ServiceModel,
    /// How job arrivals are generated (Poisson or bursty MMPP).
    pub workload: crate::workload::WorkloadModel,
    /// Warm-up period: completions of jobs arriving before this time are
    /// executed but not used for estimation (discards queueing transients).
    pub warmup: f64,
    /// Verification sensor configuration.
    pub estimator: EstimatorConfig,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            horizon: 2_000.0,
            seed: 0x5eed,
            model: ServiceModel::StationaryExponential,
            workload: crate::workload::WorkloadModel::Poisson,
            warmup: 0.0,
            estimator: EstimatorConfig::default(),
        }
    }
}

/// What the coordinator learns from one simulated execution round.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// The PR allocation computed from the bids.
    pub allocation: Allocation,
    /// Per-machine observations.
    pub observations: Vec<MachineObservation>,
    /// Estimated execution values (falls back to the machine's bid when a
    /// machine stayed idle and produced no evidence).
    pub estimated_exec_values: Vec<f64>,
    /// Estimated total latency `Σ x_i · mean_response_i`.
    pub estimated_total_latency: f64,
}

/// Simulates one execution round: PR-allocate the bids, drive per-machine
/// Poisson arrivals through the service model at the machines' *actual*
/// execution values, observe completions, and estimate the execution values.
///
/// # Errors
/// Propagates validation errors from allocation (invalid bids/rate) or
/// mismatched vector lengths.
pub fn simulate_round(
    bids: &[f64],
    actual_exec_values: &[f64],
    total_rate: f64,
    config: &SimulationConfig,
) -> Result<RoundReport, CoreError> {
    simulate_round_observed(bids, actual_exec_values, total_rate, config, &NoopCollector)
}

/// [`simulate_round`] with a telemetry collector attached.
///
/// The simulation runs on its own clock from `0` to `config.horizon`, so the
/// recording carries a `sim.round` span over the whole horizon with one
/// nested `sim.machine` span per machine (fields `machine` and `rate` at
/// start; `jobs` and `estimate` attached at the end, once known). Protocol
/// drivers deliberately do *not* nest these under their round spans — the
/// verification simulation's clock is not the protocol clock — and summarise
/// it as a `verify` instant instead; this entry point is for observing the
/// simulator standalone.
///
/// # Errors
/// Propagates validation errors, exactly as [`simulate_round`].
pub fn simulate_round_observed(
    bids: &[f64],
    actual_exec_values: &[f64],
    total_rate: f64,
    config: &SimulationConfig,
    collector: &dyn Collector,
) -> Result<RoundReport, CoreError> {
    if actual_exec_values.len() != bids.len() {
        return Err(CoreError::LengthMismatch {
            expected: bids.len(),
            actual: actual_exec_values.len(),
        });
    }
    if !(config.horizon.is_finite() && config.horizon > 0.0) {
        return Err(CoreError::InvalidRate(config.horizon));
    }
    let allocation = pr_allocate(bids, total_rate)?;

    let round_span = collector.span_start(
        0.0,
        "sim.round",
        Subsystem::Sim,
        vec![
            Field::u64("machines", bids.len() as u64),
            Field::f64("horizon", config.horizon),
        ],
    );
    let part = simulate_machines(
        bids,
        actual_exec_values,
        allocation.rates(),
        config,
        0,
        collector,
        round_span,
        None,
    );
    collector.span_end(config.horizon, round_span);
    Ok(RoundReport {
        allocation,
        observations: part.observations,
        estimated_exec_values: part.estimated_exec_values,
        estimated_total_latency: part.estimated_total_latency,
    })
}

/// What one contiguous partition of machines observed during execution — a
/// [`RoundReport`] without the allocation (the sharded coordinator computes
/// the allocation once at the root and hands each shard its rate slice).
#[derive(Debug, Clone)]
pub struct PartitionReport {
    /// Per-machine observations; `machine` indices are *global*
    /// (`stream_offset + local index`).
    pub observations: Vec<MachineObservation>,
    /// Estimated execution values for this partition's machines, in local
    /// order (bid fallback for idle machines, exactly as [`RoundReport`]).
    pub estimated_exec_values: Vec<f64>,
    /// This partition's contribution to the estimated total latency.
    pub estimated_total_latency: f64,
}

/// Simulates the execution phase for a *contiguous partition* of a larger
/// round: `bids[i]`, `actual_exec_values[i]` and `rates[i]` all describe
/// global machine `stream_offset + i`.
///
/// Every machine draws from the same per-machine RNG streams it would use in
/// the single-coordinator [`simulate_round`] (trace stream and response
/// stream both keyed by the global index), so concatenating the partition
/// reports of a sharded round reproduces the unsharded round observation for
/// observation, bit for bit. The caller supplies the rates — this function
/// never re-runs the allocation.
///
/// # Errors
/// Returns [`CoreError::LengthMismatch`] on arity mismatches and
/// [`CoreError::InvalidRate`] for a non-positive horizon.
pub fn simulate_partition(
    bids: &[f64],
    actual_exec_values: &[f64],
    rates: &[f64],
    config: &SimulationConfig,
    stream_offset: u64,
) -> Result<PartitionReport, CoreError> {
    simulate_partition_observed(
        bids,
        actual_exec_values,
        rates,
        config,
        stream_offset,
        &NoopCollector,
        SpanId::NULL,
    )
}

/// [`simulate_partition`] with a telemetry collector attached: one
/// `sim.machine` span per machine, parented on `parent_span` when it is not
/// null (the shard runtime passes its `shard.execute` span).
///
/// # Errors
/// Propagates validation errors, exactly as [`simulate_partition`].
pub fn simulate_partition_observed(
    bids: &[f64],
    actual_exec_values: &[f64],
    rates: &[f64],
    config: &SimulationConfig,
    stream_offset: u64,
    collector: &dyn Collector,
    parent_span: SpanId,
) -> Result<PartitionReport, CoreError> {
    if actual_exec_values.len() != bids.len() {
        return Err(CoreError::LengthMismatch {
            expected: bids.len(),
            actual: actual_exec_values.len(),
        });
    }
    if rates.len() != bids.len() {
        return Err(CoreError::LengthMismatch {
            expected: bids.len(),
            actual: rates.len(),
        });
    }
    if !(config.horizon.is_finite() && config.horizon > 0.0) {
        return Err(CoreError::InvalidRate(config.horizon));
    }
    Ok(simulate_machines(
        bids,
        actual_exec_values,
        rates,
        config,
        stream_offset,
        collector,
        parent_span,
        None,
    ))
}

/// [`simulate_partition_observed`] with a per-machine wall-clock probe:
/// `on_machine(global_index, wall_seconds)` fires after each machine's
/// kernel with the *host* time it took (`std::time::Instant`), which the
/// simulation clock cannot express — `sim.machine` spans run on simulated
/// time `0 → horizon` regardless of how long the host spent computing
/// them. The probe is how profilers attribute verification wall-time to
/// machines; it observes the loop without participating in it, so results
/// are bit-identical with and without it.
///
/// # Errors
/// Propagates validation errors, exactly as [`simulate_partition`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_partition_timed(
    bids: &[f64],
    actual_exec_values: &[f64],
    rates: &[f64],
    config: &SimulationConfig,
    stream_offset: u64,
    collector: &dyn Collector,
    parent_span: SpanId,
    on_machine: &mut dyn FnMut(u64, f64),
) -> Result<PartitionReport, CoreError> {
    if actual_exec_values.len() != bids.len() {
        return Err(CoreError::LengthMismatch {
            expected: bids.len(),
            actual: actual_exec_values.len(),
        });
    }
    if rates.len() != bids.len() {
        return Err(CoreError::LengthMismatch {
            expected: bids.len(),
            actual: rates.len(),
        });
    }
    if !(config.horizon.is_finite() && config.horizon > 0.0) {
        return Err(CoreError::InvalidRate(config.horizon));
    }
    Ok(simulate_machines(
        bids,
        actual_exec_values,
        rates,
        config,
        stream_offset,
        collector,
        parent_span,
        Some(on_machine),
    ))
}

/// The shared per-machine execution kernel: generate arrivals, drive the
/// service model, estimate execution values. Lengths and horizon are
/// validated by the callers.
#[allow(clippy::too_many_arguments)]
fn simulate_machines(
    bids: &[f64],
    actual_exec_values: &[f64],
    rates: &[f64],
    config: &SimulationConfig,
    stream_offset: u64,
    collector: &dyn Collector,
    parent_span: SpanId,
    mut on_machine: Option<&mut dyn FnMut(u64, f64)>,
) -> PartitionReport {
    let traces = crate::workload::per_machine_traces_offset(
        rates,
        config.horizon,
        config.seed,
        config.workload,
        stream_offset,
    );

    let base = Xoshiro256StarStar::seed_from_u64(config.seed ^ 0x9e37_79b9_7f4a_7c15);
    // One jump per machine (bit-identical to `base.stream(stream)`): indexed
    // derivation costs O(machine index) jumps and turns the verification
    // phase quadratic at datacenter scale.
    let mut streams = base.streams(stream_offset);
    let mut observations = Vec::with_capacity(bids.len());
    let mut estimated = Vec::with_capacity(bids.len());
    let mut total_latency = 0.0;

    for (i, trace) in traces.iter().enumerate() {
        let started = on_machine.as_ref().map(|_| std::time::Instant::now());
        let stream = stream_offset + i as u64;
        let machine = usize::try_from(stream).unwrap_or(usize::MAX);
        let rate = rates[i];
        let machine_span = collector.span_start_in(
            0.0,
            "sim.machine",
            Subsystem::Sim,
            parent_span,
            vec![Field::u64("machine", stream), Field::f64("rate", rate)],
        );
        let mut rng = streams.next().expect("streams is infinite");
        let arrivals: Vec<f64> = trace.iter().map(|j| j.arrival).collect();
        let responses = config
            .model
            .responses(&arrivals, actual_exec_values[i], rate, &mut rng);

        let mut estimator = ExecValueEstimator::new(config.estimator);
        let mut stats = lb_stats::online::OnlineStats::new();
        for (&arrival, &r) in arrivals.iter().zip(&responses) {
            if arrival < config.warmup {
                continue;
            }
            estimator.observe(r, &mut rng);
            stats.push(r);
        }
        let estimate = estimator.estimate(rate);
        let obs = MachineObservation {
            machine,
            assigned_rate: rate,
            jobs_arrived: arrivals.len() as u64,
            response: stats,
            estimated_exec: estimate,
        };
        total_latency += obs.latency_contribution();
        // Idle machines produce no verification evidence: fall back to the bid.
        let settled = estimate.unwrap_or(bids[i]);
        collector.span_end_with(
            config.horizon,
            machine_span,
            vec![
                Field::u64("jobs", arrivals.len() as u64),
                Field::f64("estimate", settled),
            ],
        );
        estimated.push(settled);
        observations.push(obs);
        if let (Some(probe), Some(t0)) = (on_machine.as_deref_mut(), started) {
            probe(stream, t0.elapsed().as_secs_f64());
        }
    }

    PartitionReport {
        observations,
        estimated_exec_values: estimated,
        estimated_total_latency: total_latency,
    }
}

/// Outcome of a *verified* round: simulation-backed estimates feeding the
/// mechanism's payment computation.
#[derive(Debug, Clone)]
pub struct VerifiedRound {
    /// The simulation evidence.
    pub report: RoundReport,
    /// Mechanism accounting computed from the *estimated* execution values —
    /// what the coordinator would actually pay.
    pub outcome: MechanismOutcome,
    /// Mechanism accounting computed from the *true* execution values — the
    /// oracle used to quantify estimation error.
    pub oracle_outcome: MechanismOutcome,
}

impl VerifiedRound {
    /// Maximum absolute payment error introduced by estimation, across agents.
    #[must_use]
    pub fn max_payment_error(&self) -> f64 {
        self.outcome
            .payments
            .iter()
            .zip(&self.oracle_outcome.payments)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// Runs the paper's full protocol loop for one round, end to end:
///
/// 1. allocate jobs with PR on the bids,
/// 2. execute them in the discrete-event simulator at the true execution
///    values,
/// 3. estimate `t̃` from observed completions (verification),
/// 4. compute payments from the bids and *estimated* execution values.
///
/// The returned [`VerifiedRound`] also carries the oracle outcome (payments
/// under the exact execution values) so callers can quantify the estimator's
/// effect — the `ablation` bench sweeps noise and sample budgets through
/// this function.
///
/// # Errors
/// Propagates simulation and mechanism errors.
pub fn verified_round<M: VerifiedMechanism + ?Sized>(
    mechanism: &M,
    profile: &Profile,
    config: &SimulationConfig,
) -> Result<VerifiedRound, MechanismError> {
    let report = simulate_round(
        profile.bids(),
        profile.exec_values(),
        profile.total_rate(),
        config,
    )?;

    // The estimate may come out slightly below an agent's true value due to
    // sampling noise; clamp into validity (the mechanism interface requires
    // positive values, not truth-consistency — the coordinator does not know
    // the truth).
    let estimated: Vec<f64> = report
        .estimated_exec_values
        .iter()
        .map(|&e| e.max(1e-12))
        .collect();

    let allocation = mechanism.allocate(profile.bids(), profile.total_rate())?;
    let payments = mechanism.payments(
        profile.bids(),
        &allocation,
        &estimated,
        profile.total_rate(),
    )?;
    // Agents' real utilities are driven by their *actual* costs.
    let valuations: Vec<f64> = allocation
        .rates()
        .iter()
        .zip(profile.exec_values())
        .map(|(&x, &e)| mechanism.valuation(x, e))
        .collect();
    let utilities: Vec<f64> = payments
        .iter()
        .zip(&valuations)
        .map(|(p, v)| p + v)
        .collect();
    let total_latency = mechanism.realised_latency(&allocation, &estimated)?;
    let outcome = MechanismOutcome {
        allocation,
        payments,
        valuations,
        utilities,
        total_latency,
    };

    let oracle_outcome = run_mechanism(mechanism, profile)?;
    Ok(VerifiedRound {
        report,
        outcome,
        oracle_outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_core::scenario::{paper_system, paper_true_values, PAPER_ARRIVAL_RATE};
    use lb_mechanism::CompensationBonusMechanism;

    fn deterministic_config() -> SimulationConfig {
        SimulationConfig {
            horizon: 500.0,
            seed: 1,
            model: ServiceModel::StationaryDeterministic,
            workload: Default::default(),
            warmup: 0.0,
            estimator: EstimatorConfig::default(),
        }
    }

    #[test]
    fn deterministic_round_recovers_exec_values_exactly() {
        let trues = paper_true_values();
        let report =
            simulate_round(&trues, &trues, PAPER_ARRIVAL_RATE, &deterministic_config()).unwrap();
        for (i, (&est, &t)) in report.estimated_exec_values.iter().zip(&trues).enumerate() {
            assert!((est - t).abs() < 1e-9, "machine {i}: {est} vs {t}");
        }
        // Estimated total latency matches the closed form.
        assert!(
            (report.estimated_total_latency - 400.0 / 5.1).abs() < 1e-6,
            "L = {}",
            report.estimated_total_latency
        );
    }

    #[test]
    fn lazy_machine_is_detected() {
        let trues = paper_true_values();
        let mut exec = trues.clone();
        exec[0] = 2.0; // C1 runs twice as slow.
        let report =
            simulate_round(&trues, &exec, PAPER_ARRIVAL_RATE, &deterministic_config()).unwrap();
        assert!((report.estimated_exec_values[0] - 2.0).abs() < 1e-9);
        assert!((report.estimated_exec_values[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn observed_round_records_one_span_per_machine() {
        use lb_telemetry::{replay_spans, FieldValue, RingCollector};
        let trues = paper_true_values();
        let ring = RingCollector::new(256);
        let report = simulate_round_observed(
            &trues,
            &trues,
            PAPER_ARRIVAL_RATE,
            &deterministic_config(),
            &ring,
        )
        .unwrap();

        let spans = replay_spans(&ring.snapshot()).unwrap();
        let round: Vec<_> = spans.iter().filter(|s| s.name == "sim.round").collect();
        assert_eq!(round.len(), 1);
        assert!((round[0].duration() - 500.0).abs() < 1e-12);
        let machines: Vec<_> = spans.iter().filter(|s| s.name == "sim.machine").collect();
        assert_eq!(machines.len(), trues.len());
        for span in machines {
            assert_eq!(span.depth, 1);
            assert_eq!(span.parent, Some(round[0].id));
            let Some(&FieldValue::U64(m)) = span.field("machine") else {
                panic!("sim.machine span lacks a machine field")
            };
            let Some(&FieldValue::F64(est)) = span.field("estimate") else {
                panic!("sim.machine span lacks an estimate field")
            };
            assert!((est - report.estimated_exec_values[m as usize]).abs() < 1e-12);
        }

        // The collector is observational only: the noop path settles on the
        // exact same estimates.
        let plain =
            simulate_round(&trues, &trues, PAPER_ARRIVAL_RATE, &deterministic_config()).unwrap();
        assert_eq!(plain.estimated_exec_values, report.estimated_exec_values);
    }

    #[test]
    fn partitioned_simulation_is_bit_identical_to_the_full_round() {
        // The sharded coordinator splits the execution phase across shard
        // workers via simulate_partition. Stitching the partition reports
        // back together must reproduce the single-coordinator round bit for
        // bit — the stochastic model makes this a real test of the global
        // RNG stream alignment.
        let trues = paper_true_values();
        let config = SimulationConfig {
            horizon: 500.0,
            seed: 9,
            model: ServiceModel::StationaryExponential,
            workload: Default::default(),
            warmup: 0.0,
            estimator: EstimatorConfig::default(),
        };
        let full = simulate_round(&trues, &trues, PAPER_ARRIVAL_RATE, &config).unwrap();
        for k in [1usize, 3, 5, 16] {
            let chunk = trues.len().div_ceil(k);
            let mut estimates = Vec::new();
            let mut observations = Vec::new();
            let mut latency_parts = Vec::new();
            for (s, part) in trues.chunks(chunk).enumerate() {
                let off = s * chunk;
                let rates = &full.allocation.rates()[off..off + part.len()];
                let p = simulate_partition(part, part, rates, &config, off as u64).unwrap();
                estimates.extend(p.estimated_exec_values);
                observations.extend(p.observations);
                latency_parts.push(p.estimated_total_latency);
            }
            assert_eq!(estimates.len(), trues.len(), "k = {k}");
            for i in 0..trues.len() {
                assert_eq!(
                    estimates[i].to_bits(),
                    full.estimated_exec_values[i].to_bits(),
                    "k = {k}, machine {i}: estimate diverged"
                );
                assert_eq!(observations[i].machine, full.observations[i].machine);
                assert_eq!(
                    observations[i].jobs_arrived,
                    full.observations[i].jobs_arrived
                );
                assert_eq!(
                    observations[i].assigned_rate.to_bits(),
                    full.observations[i].assigned_rate.to_bits()
                );
            }
            // The latency total is a diagnostic, not a protocol output; the
            // partition grouping may regroup the fold, so compare relatively.
            let stitched: f64 = latency_parts.iter().sum();
            assert!(
                (stitched - full.estimated_total_latency).abs()
                    <= 1e-12 * full.estimated_total_latency.abs(),
                "k = {k}: latency {stitched} vs {}",
                full.estimated_total_latency
            );
        }
    }

    #[test]
    fn partition_arity_mismatches_are_rejected() {
        let cfg = deterministic_config();
        assert!(simulate_partition(&[1.0, 2.0], &[1.0], &[0.5, 0.5], &cfg, 0).is_err());
        assert!(simulate_partition(&[1.0, 2.0], &[1.0, 2.0], &[0.5], &cfg, 0).is_err());
        let mut bad = cfg;
        bad.horizon = -1.0;
        assert!(simulate_partition(&[1.0], &[1.0], &[0.5], &bad, 0).is_err());
    }

    #[test]
    fn timed_partition_probes_every_machine_without_changing_results() {
        let trues = paper_true_values();
        let config = SimulationConfig {
            horizon: 500.0,
            seed: 9,
            model: ServiceModel::StationaryExponential,
            workload: Default::default(),
            warmup: 0.0,
            estimator: EstimatorConfig::default(),
        };
        let full = simulate_round(&trues, &trues, PAPER_ARRIVAL_RATE, &config).unwrap();
        let rates = full.allocation.rates();
        let off = 3u64;
        let part = &trues[off as usize..];
        let sub_rates = &rates[off as usize..];
        let plain = simulate_partition(part, part, sub_rates, &config, off).unwrap();
        let mut probed = Vec::new();
        let timed = simulate_partition_timed(
            part,
            part,
            sub_rates,
            &config,
            off,
            &NoopCollector,
            SpanId::NULL,
            &mut |machine, wall| probed.push((machine, wall)),
        )
        .unwrap();
        // The probe observes; it must not perturb.
        for (a, b) in timed
            .estimated_exec_values
            .iter()
            .zip(&plain.estimated_exec_values)
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // One probe per machine, global indices, non-negative wall times.
        assert_eq!(probed.len(), part.len());
        for (i, &(machine, wall)) in probed.iter().enumerate() {
            assert_eq!(machine, off + i as u64);
            assert!(wall >= 0.0 && wall.is_finite());
        }
    }

    #[test]
    fn stochastic_round_estimates_within_tolerance() {
        let trues = paper_true_values();
        let config = SimulationConfig {
            horizon: 20_000.0,
            seed: 2,
            model: ServiceModel::StationaryExponential,
            workload: Default::default(),
            warmup: 0.0,
            estimator: EstimatorConfig::default(),
        };
        let report = simulate_round(&trues, &trues, PAPER_ARRIVAL_RATE, &config).unwrap();
        for (i, (&est, &t)) in report.estimated_exec_values.iter().zip(&trues).enumerate() {
            let rel = (est - t).abs() / t;
            assert!(rel < 0.1, "machine {i}: {est} vs {t}");
        }
    }

    #[test]
    fn verified_round_payments_match_oracle_in_deterministic_mode() {
        let sys = paper_system();
        let profile = Profile::truthful(&sys, PAPER_ARRIVAL_RATE).unwrap();
        let vr = verified_round(
            &CompensationBonusMechanism::paper(),
            &profile,
            &deterministic_config(),
        )
        .unwrap();
        assert!(
            vr.max_payment_error() < 1e-6,
            "error {}",
            vr.max_payment_error()
        );
    }

    #[test]
    fn verified_round_detects_and_penalizes_laziness() {
        let sys = paper_system();
        let honest = Profile::truthful(&sys, PAPER_ARRIVAL_RATE).unwrap();
        let lazy = Profile::with_deviation(&sys, PAPER_ARRIVAL_RATE, 0, 1.0, 2.0).unwrap();
        let mech = CompensationBonusMechanism::paper();
        let cfg = deterministic_config();
        let p_honest = verified_round(&mech, &honest, &cfg)
            .unwrap()
            .outcome
            .payments[0];
        let p_lazy = verified_round(&mech, &lazy, &cfg).unwrap().outcome.payments[0];
        assert!(
            p_lazy < p_honest - 1e-6,
            "lazy {p_lazy} !< honest {p_honest}"
        );
    }

    #[test]
    fn bursty_workload_keeps_the_estimator_unbiased_for_stationary_service() {
        // Under the stationary service models the response law does not
        // depend on the arrival pattern, so MMPP bursts change only the
        // sample count, not the estimate's target.
        let trues = paper_true_values();
        let config = SimulationConfig {
            horizon: 20_000.0,
            seed: 21,
            model: ServiceModel::StationaryExponential,
            workload: crate::workload::WorkloadModel::Bursty {
                burstiness: 8.0,
                dwell_means: [50.0, 10.0],
            },
            warmup: 0.0,
            estimator: EstimatorConfig::default(),
        };
        let report = simulate_round(&trues, &trues, PAPER_ARRIVAL_RATE, &config).unwrap();
        for (i, (&est, &t)) in report.estimated_exec_values.iter().zip(&trues).enumerate() {
            let rel = (est - t).abs() / t;
            assert!(rel < 0.1, "machine {i}: {est} vs {t}");
        }
    }

    #[test]
    fn bursty_workload_biases_queueing_latency_upward() {
        // With a *real* queue, bursts congest the server: the measured mean
        // response (and hence the estimated t~) exceeds the stationary
        // target. This quantifies where the paper's stationary assumption
        // matters.
        let trues = vec![1.0, 1.0];
        let rate = 2.0;
        let mk = |workload| SimulationConfig {
            horizon: 30_000.0,
            seed: 22,
            model: ServiceModel::Mm1Queue,
            workload,
            warmup: 500.0,
            estimator: EstimatorConfig::default(),
        };
        let calm = simulate_round(
            &trues,
            &trues,
            rate,
            &mk(crate::workload::WorkloadModel::Poisson),
        )
        .unwrap();
        let bursty = simulate_round(
            &trues,
            &trues,
            rate,
            &mk(crate::workload::WorkloadModel::Bursty {
                burstiness: 6.0,
                dwell_means: [40.0, 10.0],
            }),
        )
        .unwrap();
        assert!(
            bursty.estimated_exec_values[0] > 1.2 * calm.estimated_exec_values[0],
            "bursty {} vs calm {}",
            bursty.estimated_exec_values[0],
            calm.estimated_exec_values[0]
        );
    }

    #[test]
    fn mismatched_exec_length_is_rejected() {
        let trues = paper_true_values();
        let err = simulate_round(
            &trues,
            &trues[..3],
            PAPER_ARRIVAL_RATE,
            &deterministic_config(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::LengthMismatch { .. }));
    }

    #[test]
    fn invalid_horizon_is_rejected() {
        let trues = paper_true_values();
        let mut cfg = deterministic_config();
        cfg.horizon = 0.0;
        assert!(simulate_round(&trues, &trues, PAPER_ARRIVAL_RATE, &cfg).is_err());
    }
}
